//! Log-linear bucketed histograms for hot-path distributions.
//!
//! The paper's figures ask distribution questions a plain counter cannot
//! answer — fusion-ratio spreads, packet-utilization percentiles,
//! per-transfer latency tails. [`Histogram`] records into a fixed-size
//! bucket array (allocated once at construction, never resized), so a
//! `record` on the per-packet hot path is two array writes and a handful
//! of integer ops.
//!
//! Buckets are log-linear in the style of HdrHistogram: each power-of-two
//! range is split into 16 linear sub-buckets, bounding the relative
//! quantization error of any reported percentile to ≤ 1/16 (6.25%).
//! Values below 16 are exact.

/// Linear sub-buckets per power-of-two range (as a bit count).
const SUB_BITS: u32 = 4;
/// Sub-buckets per range.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: values 0..16 exactly, then 60 ranges × 16 subs.
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUBS;

/// Maps a value onto its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// Upper bound of the value range bucket `idx` covers (inclusive).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let msb = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (idx & (SUBS - 1)) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        (1u64 << msb) + sub * width + (width - 1)
    }
}

/// A fixed-size log-linear histogram over `u64` samples.
///
/// Recording is allocation-free; the bucket array is allocated once when
/// the histogram is created (typically at metrics registration). Exact
/// `count`/`sum`/`min`/`max` ride alongside the buckets, so means are
/// exact and only percentiles are quantized.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (one allocation, never grows).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0u64; N_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Records `n` identical samples in O(1) — for replaying an external
    /// pre-bucketed distribution (e.g. the REF block-length counts) into
    /// a histogram without a per-sample loop.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at percentile `p` (0.0..=100.0): the upper bound of the
    /// bucket holding the sample of that rank, clamped to the exact
    /// observed `max`. Values below 16 are exact; larger values are
    /// quantized to ≤ 6.25% relative error. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Iterates the non-empty buckets as `(range_upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_upper_round_trip() {
        // Every bucket's upper bound must map back into that bucket, and
        // indices must be monotone in the value.
        let mut last = 0usize;
        for idx in 0..N_BUCKETS {
            let upper = bucket_upper(idx);
            assert_eq!(bucket_index(upper), idx, "upper {upper} of bucket {idx}");
            assert!(idx == 0 || idx > last || idx == last);
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // p50 of 0..=15: rank 8 → value 7 exactly.
        assert_eq!(h.percentile(50.0), 7);
        assert_eq!(h.percentile(100.0), 15);
    }

    #[test]
    fn known_synthetic_percentiles() {
        // 1..=1000, uniform: p50 = 500, p99 = 990, within the 6.25%
        // log-linear quantization bound.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((469..=532).contains(&p50), "p50 {p50} outside 500 ± 6.25%");
        assert!((928..=1000).contains(&p99), "p99 {p99} outside 990 ± 6.25%");
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.sum(), 500_500);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 4096;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        // Bucket upper bound exceeds the sample; the report must not.
        assert_eq!(h.percentile(99.0), 1_000_000);
    }
}
