//! Performance counters, report tables and the trace toolkit.
//!
//! This crate implements the paper's §5 "tuning toolkit":
//!
//! - [`Counters`]: hardware- and software-side performance counters
//!   (transmission counts, data volume, fusion ratios, packet utilization),
//! - [`Metrics`]: the observability registry — counters plus log-bucketed
//!   [`Histogram`]s, gauges and per-[`Phase`] wall-time attribution,
//!   merged deterministically across sharded workers and exported as
//!   JSONL (`DIFFTEST_OBS=<path>`),
//! - [`FlightRecorder`]: a bounded free-running ring of structured
//!   pipeline records, snapshotted into failure reports for post-mortem
//!   debugging without re-running the DUT,
//! - [`Table`] and the `fmt_*` helpers: the plain-text renderer every
//!   benchmark harness uses to print paper-shaped tables,
//! - [`trace`]: DUT-trace dump/reload (streaming via
//!   [`trace::TraceReader`]) for DUT-decoupled iterative debugging of
//!   the verification logic,
//! - [`TraceQuery`]: typed filter/group/aggregate analysis over reloaded
//!   traces (the substitution for the paper's SQL backend — see
//!   `DESIGN.md` §1),
//! - [`span`] and [`chrometrace`]: causal span tracing — bounded
//!   per-thread span buffers over the injectable [`Clock`], exported as
//!   Chrome trace-event JSON (`DIFFTEST_TRACE=<path>`) that loads in
//!   Perfetto, with flow arrows linking a packet's pack→unpack→check
//!   spans by `seq` and an offline [`SpanQuery`] analysis pass
//!   (DESIGN.md §15).
//!
//! # Examples
//!
//! ```
//! use difftest_stats::Counters;
//!
//! let mut c = Counters::new();
//! c.add("hw.bytes_sent", 4096);
//! c.inc("hw.transfers");
//! assert_eq!(c.get("hw.bytes_sent"), 4096);
//! ```

#![warn(missing_docs)]

pub mod chrometrace;
mod counter;
mod histogram;
mod metrics;
mod query;
mod recorder;
pub mod span;
mod table;
pub mod trace;

pub use chrometrace::{parse_json, validate as validate_trace, Json, TraceSummary};
pub use counter::Counters;
pub use histogram::Histogram;
pub use metrics::{
    export_to_env, Clock, FakeClock, GaugeId, HistogramId, Metrics, MonotonicClock, Phase,
    PhaseTimer, PhaseTimes, OBS_ENV,
};
pub use query::{GroupStats, TraceQuery};
pub use recorder::{FlightKind, FlightRecord, FlightRecorder, FlightSnapshot};
pub use span::{
    wall_epoch_ns, CriticalStep, SpanBuf, SpanEvent, SpanGroup, SpanKind, SpanQuery, SpanSink,
    Tracer, PID_CONSUMER, PID_PRODUCER, TRACE_ENV,
};
pub use table::{fmt_hz, fmt_pct, fmt_ratio, Table};
