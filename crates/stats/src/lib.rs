//! Performance counters, report tables and the trace toolkit.
//!
//! This crate implements the paper's §5 "tuning toolkit":
//!
//! - [`Counters`]: hardware- and software-side performance counters
//!   (transmission counts, data volume, fusion ratios, packet utilization),
//! - [`Metrics`]: the observability registry — counters plus log-bucketed
//!   [`Histogram`]s, gauges and per-[`Phase`] wall-time attribution,
//!   merged deterministically across sharded workers and exported as
//!   JSONL (`DIFFTEST_OBS=<path>`),
//! - [`FlightRecorder`]: a bounded free-running ring of structured
//!   pipeline records, snapshotted into failure reports for post-mortem
//!   debugging without re-running the DUT,
//! - [`Table`] and the `fmt_*` helpers: the plain-text renderer every
//!   benchmark harness uses to print paper-shaped tables,
//! - [`trace`]: DUT-trace dump/reload (streaming via
//!   [`trace::TraceReader`]) for DUT-decoupled iterative debugging of
//!   the verification logic,
//! - [`TraceQuery`]: typed filter/group/aggregate analysis over reloaded
//!   traces (the substitution for the paper's SQL backend — see
//!   `DESIGN.md` §1).
//!
//! # Examples
//!
//! ```
//! use difftest_stats::Counters;
//!
//! let mut c = Counters::new();
//! c.add("hw.bytes_sent", 4096);
//! c.inc("hw.transfers");
//! assert_eq!(c.get("hw.bytes_sent"), 4096);
//! ```

#![warn(missing_docs)]

mod counter;
mod histogram;
mod metrics;
mod query;
mod recorder;
mod table;
pub mod trace;

pub use counter::Counters;
pub use histogram::Histogram;
pub use metrics::{
    export_to_env, Clock, FakeClock, GaugeId, HistogramId, Metrics, MonotonicClock, Phase,
    PhaseTimer, PhaseTimes, OBS_ENV,
};
pub use query::{GroupStats, TraceQuery};
pub use recorder::{FlightKind, FlightRecord, FlightRecorder, FlightSnapshot};
pub use table::{fmt_hz, fmt_pct, fmt_ratio, Table};
