//! Trace dump and reload (paper §5 "iterative debugging support").
//!
//! Re-running the whole DUT to debug the *verification logic* is wasteful,
//! so DiffTest-H can dump the monitored event stream (the "DUT trace") and
//! later drive the checking pipeline from the trace alone. The binary
//! format reuses the event catalog codec: each record is
//!
//! ```text
//! core:u8  cycle:u64  order:u64  token:u64  kind:u8  payload[kind-length]
//! ```

use std::io::{self, Read, Write};

use difftest_event::wire::{Reader, Writer};
use difftest_event::{CodecError, Event, EventKind, MonitoredEvent, OrderTag, Token};

/// Magic prefix of a trace file.
const MAGIC: &[u8; 8] = b"DTHTRC01";

/// Errors from trace reload.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with the trace magic.
    BadMagic,
    /// A record failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a DiffTest-H trace (bad magic)"),
            TraceError::Codec(e) => write!(f, "trace record corrupt: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Codec(e)
    }
}

/// Writes monitored events to a byte stream.
///
/// A `&mut W` also works wherever `W: Write` is required.
pub fn dump<W: Write>(mut w: W, events: &[MonitoredEvent]) -> Result<(), TraceError> {
    w.write_all(MAGIC)?;
    let mut buf = Vec::new();
    for ev in events {
        buf.clear();
        let mut wr = Writer::new(&mut buf);
        wr.u8(ev.core);
        wr.u64(ev.cycle);
        wr.u64(ev.order.0);
        wr.u64(ev.token.0);
        wr.u8(ev.event.kind() as u8);
        ev.event.encode_into(&mut buf);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Reads an entire trace back into memory.
pub fn reload<R: Read>(mut r: R) -> Result<Vec<MonitoredEvent>, TraceError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let mut out = Vec::new();
    let mut rd = Reader::new(&bytes[MAGIC.len()..]);
    while rd.remaining() > 0 {
        let core = rd.u8()?;
        let cycle = rd.u64()?;
        let order = rd.u64()?;
        let token = rd.u64()?;
        let kind = EventKind::from_u8(rd.u8()?)?;
        let payload = rd.bytes_dyn(kind.encoded_len())?;
        let event = Event::decode(kind, payload)?;
        out.push(MonitoredEvent {
            core,
            cycle,
            order: OrderTag(order),
            token: Token(token),
            event,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{InstrCommit, StoreEvent};

    fn sample() -> Vec<MonitoredEvent> {
        vec![
            MonitoredEvent {
                core: 0,
                cycle: 10,
                order: OrderTag(1),
                token: Token(0),
                event: InstrCommit {
                    pc: 0x8000_0000,
                    wen: 1,
                    wdest: 5,
                    wdata: 99,
                    ..Default::default()
                }
                .into(),
            },
            MonitoredEvent {
                core: 1,
                cycle: 11,
                order: OrderTag(2),
                token: Token(1),
                event: StoreEvent {
                    addr: 0x8000_1000,
                    data: 7,
                    mask: 0xff,
                }
                .into(),
            },
        ]
    }

    #[test]
    fn dump_reload_round_trip() {
        let events = sample();
        let mut buf = Vec::new();
        dump(&mut buf, &events).unwrap();
        let back = reload(&buf[..]).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = reload(&b"NOTATRACE"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut buf = Vec::new();
        dump(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(reload(&buf[..]), Err(TraceError::Codec(_))));
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        dump(&mut buf, &[]).unwrap();
        assert!(reload(&buf[..]).unwrap().is_empty());
    }
}
