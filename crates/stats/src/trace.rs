//! Trace dump and reload (paper §5 "iterative debugging support").
//!
//! Re-running the whole DUT to debug the *verification logic* is wasteful,
//! so DiffTest-H can dump the monitored event stream (the "DUT trace") and
//! later drive the checking pipeline from the trace alone. The binary
//! format reuses the event catalog codec: each record is
//!
//! ```text
//! core:u8  cycle:u64  order:u64  token:u64  kind:u8  payload[kind-length]
//! ```

use std::io::{self, Read, Write};

use difftest_event::wire::{Reader, Writer};
use difftest_event::{CodecError, Event, EventKind, MonitoredEvent, OrderTag, Token};

/// Magic prefix of a trace file.
const MAGIC: &[u8; 8] = b"DTHTRC01";

/// Errors from trace reload.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with the trace magic.
    BadMagic,
    /// A record failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a DiffTest-H trace (bad magic)"),
            TraceError::Codec(e) => write!(f, "trace record corrupt: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Codec(e)
    }
}

/// Writes monitored events to a byte stream.
///
/// A `&mut W` also works wherever `W: Write` is required.
pub fn dump<W: Write>(mut w: W, events: &[MonitoredEvent]) -> Result<(), TraceError> {
    w.write_all(MAGIC)?;
    let mut buf = Vec::new();
    for ev in events {
        buf.clear();
        let mut wr = Writer::new(&mut buf);
        wr.u8(ev.core);
        wr.u64(ev.cycle);
        wr.u64(ev.order.0);
        wr.u64(ev.token.0);
        wr.u8(ev.event.kind() as u8);
        ev.event.encode_into(&mut buf);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Bytes of the fixed record header: `core:u8 cycle:u64 order:u64
/// token:u64 kind:u8`.
const RECORD_HEADER: usize = 1 + 8 + 8 + 8 + 1;

/// Fills `buf` from `r`, tolerating short reads. Returns how many bytes
/// were read — less than `buf.len()` only at end of stream.
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// A streaming trace reader: decodes one [`MonitoredEvent`] at a time
/// from any [`Read`], holding only a single record in memory. Large
/// traces can be filtered or aggregated without ever materializing the
/// whole event vector ([`reload`] is now a thin `collect` over this).
pub struct TraceReader<R: Read> {
    r: R,
    payload: Vec<u8>,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace stream, consuming and checking the magic prefix.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] when the stream does not start with a
    /// complete trace magic; [`TraceError::Io`] on read failure.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; MAGIC.len()];
        let n = read_fully(&mut r, &mut magic)?;
        if n < magic.len() || &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        Ok(TraceReader {
            r,
            payload: Vec::new(),
            done: false,
        })
    }

    fn read_record(&mut self) -> Result<Option<MonitoredEvent>, TraceError> {
        let mut header = [0u8; RECORD_HEADER];
        let n = read_fully(&mut self.r, &mut header)?;
        if n == 0 {
            return Ok(None); // clean end of stream at a record boundary
        }
        if n < header.len() {
            return Err(CodecError::UnexpectedEnd {
                needed: header.len(),
                available: n,
            }
            .into());
        }
        let mut rd = Reader::new(&header);
        let core = rd.u8()?;
        let cycle = rd.u64()?;
        let order = rd.u64()?;
        let token = rd.u64()?;
        let kind = EventKind::from_u8(rd.u8()?)?;
        let len = kind.encoded_len();
        self.payload.resize(len, 0);
        let got = read_fully(&mut self.r, &mut self.payload)?;
        if got < len {
            return Err(CodecError::UnexpectedEnd {
                needed: len,
                available: got,
            }
            .into());
        }
        let event = Event::decode(kind, &self.payload)?;
        Ok(Some(MonitoredEvent {
            core,
            cycle,
            order: OrderTag(order),
            token: Token(token),
            event,
        }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<MonitoredEvent, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                // An error is terminal: the stream offset is unreliable.
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads an entire trace back into memory (a `collect` over
/// [`TraceReader`]; use the reader directly to stream large traces).
pub fn reload<R: Read>(r: R) -> Result<Vec<MonitoredEvent>, TraceError> {
    TraceReader::new(r)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{InstrCommit, StoreEvent};

    fn sample() -> Vec<MonitoredEvent> {
        vec![
            MonitoredEvent {
                core: 0,
                cycle: 10,
                order: OrderTag(1),
                token: Token(0),
                event: InstrCommit {
                    pc: 0x8000_0000,
                    wen: 1,
                    wdest: 5,
                    wdata: 99,
                    ..Default::default()
                }
                .into(),
            },
            MonitoredEvent {
                core: 1,
                cycle: 11,
                order: OrderTag(2),
                token: Token(1),
                event: StoreEvent {
                    addr: 0x8000_1000,
                    data: 7,
                    mask: 0xff,
                }
                .into(),
            },
        ]
    }

    #[test]
    fn dump_reload_round_trip() {
        let events = sample();
        let mut buf = Vec::new();
        dump(&mut buf, &events).unwrap();
        let back = reload(&buf[..]).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = reload(&b"NOTATRACE"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut buf = Vec::new();
        dump(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(reload(&buf[..]), Err(TraceError::Codec(_))));
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        dump(&mut buf, &[]).unwrap();
        assert!(reload(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn streaming_reader_matches_reload() {
        let events = sample();
        let mut buf = Vec::new();
        dump(&mut buf, &events).unwrap();
        let streamed: Vec<MonitoredEvent> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, events);
    }

    #[test]
    fn streaming_reader_stops_after_error() {
        let mut buf = Vec::new();
        dump(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let mut rd = TraceReader::new(&buf[..]).unwrap();
        // First record is intact, the second is truncated mid-payload.
        assert!(rd.next().unwrap().is_ok());
        assert!(matches!(rd.next(), Some(Err(TraceError::Codec(_)))));
        assert!(rd.next().is_none(), "errors are terminal");
    }

    #[test]
    fn streaming_reader_rejects_short_magic() {
        assert!(matches!(
            TraceReader::new(&b"DTH"[..]).err(),
            Some(TraceError::BadMagic)
        ));
    }
}
