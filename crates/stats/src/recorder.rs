//! The flight recorder: a bounded ring of structured pipeline records
//! for post-mortem debugging without re-running the DUT.
//!
//! A verdict alone (`Mismatch`, `LinkError`) says *what* failed, not what
//! the pipeline was doing around the failure. Every runner free-runs a
//! [`FlightRecorder`] — packet sent/received, squash fusion, ARQ
//! retransmit, link error, checker verdict, each stamped with
//! seq/core/cycle — and snapshots it into the failure path. The snapshot
//! dumps as JSONL (the same style as [`crate::trace`]'s binary dump, but
//! human-grep-able), so a failing CI run carries its own picture.
//!
//! Recording is a fixed-capacity ring push: no allocation in the steady
//! state, oldest records evicted first.

use std::collections::VecDeque;
use std::io::{self, Write};

/// What one flight record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A transfer left the producer for the link (`value` = bytes).
    PacketSent,
    /// A transfer arrived at a consumer (`value` = bytes).
    PacketReceived,
    /// Squash fused commits this window (`value` = fused records so far).
    Fusion,
    /// A retention-ring retransmission was issued (`value` = bytes).
    Retransmit,
    /// A typed link error was raised (`value` = error-kind index).
    LinkError,
    /// The checker flagged a DUT/REF divergence (`value` = instruction
    /// sequence number).
    Mismatch,
    /// The checker verified a halting trap (`value` = 1 good, 0 bad).
    Verdict,
}

impl FlightKind {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::PacketSent => "packet_sent",
            FlightKind::PacketReceived => "packet_received",
            FlightKind::Fusion => "fusion",
            FlightKind::Retransmit => "retransmit",
            FlightKind::LinkError => "link_error",
            FlightKind::Mismatch => "mismatch",
            FlightKind::Verdict => "verdict",
        }
    }

    /// Whether this record describes bytes moving across the link
    /// (sent/received/retransmitted) — the records a failure snapshot
    /// must contain *before* the failure itself to be diagnosable.
    pub fn is_transport(self) -> bool {
        matches!(
            self,
            FlightKind::PacketSent | FlightKind::PacketReceived | FlightKind::Retransmit
        )
    }
}

/// One structured record in the flight ring. Flat and `Copy` so a ring
/// push is a few word moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Record classification.
    pub kind: FlightKind,
    /// DUT core involved.
    pub core: u8,
    /// Packet sequence number (0 when not applicable).
    pub seq: u32,
    /// DUT cycle when known (0 on consumer threads without cycle view).
    pub cycle: u64,
    /// Kind-specific payload (bytes, fused count, error kind, …).
    pub value: u64,
}

/// A bounded free-running ring of [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    recorded: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring capacity: enough context around a failure without
    /// holding a whole run.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a recorder retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// Pushes one record, evicting the oldest at capacity.
    #[inline]
    pub fn record(&mut self, r: FlightRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(r);
        self.recorded += 1;
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever pushed (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Copies the retained records, oldest first, into a snapshot.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            records: self.ring.iter().copied().collect(),
            evicted: self.recorded - self.ring.len() as u64,
        }
    }
}

/// An immutable copy of the flight ring, attached to failure reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Retained records, oldest first.
    pub records: Vec<FlightRecord>,
    /// Records evicted from the ring before the snapshot (the window
    /// is bounded; old context may be gone).
    pub evicted: u64,
}

impl FlightSnapshot {
    /// Concatenates another snapshot's records after this one's
    /// (producer-side context first, then the failing consumer's view).
    pub fn append(&mut self, other: &FlightSnapshot) {
        self.records.extend_from_slice(&other.records);
        self.evicted += other.evicted;
    }

    /// Index of the first record matching `kind` and `seq`, if any.
    pub fn find(&self, kind: FlightKind, seq: u32) -> Option<usize> {
        self.records
            .iter()
            .position(|r| r.kind == kind && r.seq == seq)
    }

    /// Lifetime total the snapshot stands for: retained records plus
    /// the evicted ones. Derived (not stored), so [`append`](Self::append)
    /// keeps it consistent automatically.
    pub fn recorded(&self) -> u64 {
        self.records.len() as u64 + self.evicted
    }

    /// Writes the snapshot as JSONL, one record per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn to_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"flight_snapshot\",\"records\":{},\"evicted\":{},\"recorded\":{}}}",
            self.records.len(),
            self.evicted,
            self.recorded()
        )?;
        for r in &self.records {
            writeln!(
                w,
                "{{\"type\":\"flight\",\"kind\":\"{}\",\"core\":{},\"seq\":{},\
                 \"cycle\":{},\"value\":{}}}",
                r.kind.name(),
                r.core,
                r.seq,
                r.cycle,
                r.value
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: FlightKind, seq: u32) -> FlightRecord {
        FlightRecord {
            kind,
            core: 0,
            seq,
            cycle: seq as u64 * 10,
            value: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10u32 {
            fr.record(rec(FlightKind::PacketSent, i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.recorded(), 10);
        let snap = fr.snapshot();
        assert_eq!(snap.evicted, 6);
        let seqs: Vec<u32> = snap.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn find_and_transport_classification() {
        let mut fr = FlightRecorder::default();
        fr.record(rec(FlightKind::PacketSent, 1));
        fr.record(rec(FlightKind::PacketReceived, 1));
        fr.record(rec(FlightKind::LinkError, 2));
        let snap = fr.snapshot();
        let pos = snap.find(FlightKind::LinkError, 2).unwrap();
        assert_eq!(pos, 2);
        assert!(snap.records[..pos].iter().any(|r| r.kind.is_transport()));
        assert!(!FlightKind::Verdict.is_transport());
    }

    #[test]
    fn snapshot_appends_in_order() {
        let mut a = FlightRecorder::new(2);
        a.record(rec(FlightKind::PacketSent, 0));
        let mut b = FlightRecorder::new(2);
        b.record(rec(FlightKind::PacketReceived, 0));
        b.record(rec(FlightKind::LinkError, 1));
        let mut snap = a.snapshot();
        snap.append(&b.snapshot());
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.records[0].kind, FlightKind::PacketSent);
        assert_eq!(snap.records[2].kind, FlightKind::LinkError);
    }

    #[test]
    fn snapshot_recorded_total_survives_eviction_and_append() {
        let mut a = FlightRecorder::new(2);
        for i in 0..5u32 {
            a.record(rec(FlightKind::PacketSent, i));
        }
        let mut snap = a.snapshot();
        assert_eq!(snap.recorded(), a.recorded(), "snapshot matches the ring");
        assert_eq!(snap.recorded(), 5);
        assert_eq!(snap.evicted, 3);

        let mut b = FlightRecorder::new(2);
        for i in 0..3u32 {
            b.record(rec(FlightKind::PacketReceived, i));
        }
        snap.append(&b.snapshot());
        assert_eq!(snap.evicted, 3 + 1, "append sums evicted counts");
        assert_eq!(snap.recorded(), 5 + 3, "append keeps the total consistent");

        let mut out = Vec::new();
        snap.to_jsonl(&mut out).unwrap();
        let header = String::from_utf8(out)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        assert!(header.contains("\"records\":4"), "{header}");
        assert!(header.contains("\"evicted\":4"), "{header}");
        assert!(header.contains("\"recorded\":8"), "{header}");
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let mut fr = FlightRecorder::default();
        fr.record(rec(FlightKind::Mismatch, 3));
        let mut buf = Vec::new();
        fr.snapshot().to_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"kind\":\"mismatch\""));
    }
}
