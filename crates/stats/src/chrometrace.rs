//! Chrome trace-event export and validation for [`crate::span`].
//!
//! [`render`] serializes gathered [`SpanBuf`]s as the Chrome
//! trace-event JSON format (`{"traceEvents":[...]}`) that loads
//! directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`:
//!
//! - `"ph":"M"` metadata names each process/thread track,
//! - `"ph":"X"` complete duration events carry the spans (`ts`/`dur`
//!   in microseconds, fractional, so nanosecond spans survive),
//! - `"ph":"s"`/`"ph":"f"` flow arrows link a packet's pack span to
//!   its unpack/check spans by `seq` (only *matched* pairs are
//!   emitted: a dropped packet's dangling flow origin is already
//!   visible in the fault metrics and would render as a broken arrow),
//! - `"ph":"C"` counter events render gauge samples as counter tracks.
//!
//! [`validate`] re-parses an exported file with the in-crate JSON
//! parser ([`parse_json`]) and checks the structural invariants CI
//! relies on (`scripts/trace_check`): well-formed JSON, monotonic
//! timestamps per track, properly nested spans, and fully paired flow
//! arrows.

use crate::metrics::escape_json;
use crate::span::{SpanBuf, SpanEvent, SpanKind};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Formats nanoseconds as fractional microseconds ("12.345").
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_line(out: &mut String, first: &mut bool, line: &str) {
    if !std::mem::take(first) {
        out.push_str(",\n");
    }
    out.push_str(line);
}

/// Serializes buffers into Chrome trace-event JSON.
pub fn render(bufs: &[SpanBuf]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;

    // Track metadata: one process_name per pid, one thread_name per
    // (pid, tid). BTreeMap keeps the order deterministic.
    let mut processes: BTreeMap<u32, &str> = BTreeMap::new();
    let mut threads: BTreeMap<(u32, u32), &str> = BTreeMap::new();
    for b in bufs {
        processes.entry(b.pid).or_insert(&b.process);
        threads.entry((b.pid, b.tid)).or_insert(&b.track);
    }
    for (pid, name) in &processes {
        let line = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            escape_json(name)
        );
        push_line(&mut out, &mut first, &line);
    }
    for ((pid, tid), name) in &threads {
        let line = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            tid,
            escape_json(name)
        );
        push_line(&mut out, &mut first, &line);
    }

    // Flow pairing: match each (name, id) FlowOut to the earliest
    // FlowIn at or after it; only matched pairs render.
    // One rendered flow endpoint: (phase, name, ts_ns, flow id).
    type FlowEndpoint<'a> = (char, &'a str, u64, u64);
    let mut outs: BTreeMap<(&str, u64), (u32, u32, u64)> = BTreeMap::new();
    let mut ins: BTreeMap<(&str, u64), (u32, u32, u64)> = BTreeMap::new();
    for b in bufs {
        for e in &b.events {
            match e.kind {
                SpanKind::FlowOut => {
                    let entry = outs.entry((e.name.as_ref(), e.id));
                    let v = entry.or_insert((b.pid, b.tid, e.ts_ns));
                    if e.ts_ns < v.2 {
                        *v = (b.pid, b.tid, e.ts_ns);
                    }
                }
                SpanKind::FlowIn => {
                    let entry = ins.entry((e.name.as_ref(), e.id));
                    let v = entry.or_insert((b.pid, b.tid, e.ts_ns));
                    if e.ts_ns < v.2 {
                        *v = (b.pid, b.tid, e.ts_ns);
                    }
                }
                _ => {}
            }
        }
    }
    let mut flows: BTreeMap<(u32, u32), Vec<FlowEndpoint>> = BTreeMap::new();
    for (key, &(opid, otid, ots)) in &outs {
        if let Some(&(ipid, itid, its)) = ins.get(key) {
            if its >= ots {
                flows
                    .entry((opid, otid))
                    .or_default()
                    .push(('s', key.0, ots, key.1));
                flows
                    .entry((ipid, itid))
                    .or_default()
                    .push(('f', key.0, its, key.1));
            }
        }
    }

    // Per-track event lists, sorted by (ts, dur desc) so nested spans
    // follow their parents and timestamps are monotonic per track.
    for b in bufs {
        let mut evs: Vec<&SpanEvent> = b
            .events
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Span | SpanKind::Counter))
            .collect();
        evs.sort_by(|a, c| a.ts_ns.cmp(&c.ts_ns).then(c.dur_ns.cmp(&a.dur_ns)));
        let mut fl = flows.remove(&(b.pid, b.tid)).unwrap_or_default();
        fl.sort_by(|a, c| a.2.cmp(&c.2).then(a.3.cmp(&c.3)));
        // Merge spans/counters and flow endpoints by timestamp so the
        // whole track stays time-ordered.
        fn flow_line(pid: u32, tid: u32, (ph, name, ts, id): (char, &str, u64, u64)) -> String {
            let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
            format!(
                "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"{}\"{},\"pid\":{},\"tid\":{},\"ts\":{},\"id\":{}}}",
                escape_json(name),
                ph,
                bp,
                pid,
                tid,
                us(ts),
                id
            )
        }
        let mut fi = 0;
        for e in evs {
            while fi < fl.len() && fl[fi].2 < e.ts_ns {
                let line = flow_line(b.pid, b.tid, fl[fi]);
                push_line(&mut out, &mut first, &line);
                fi += 1;
            }
            let line = match e.kind {
                SpanKind::Span => format!(
                    "{{\"name\":\"{}\",\"cat\":\"difftest\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{}}}}}",
                    escape_json(&e.name),
                    b.pid,
                    b.tid,
                    us(e.ts_ns),
                    us(e.dur_ns),
                    e.id
                ),
                SpanKind::Counter => format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    escape_json(&e.name),
                    b.pid,
                    b.tid,
                    us(e.ts_ns),
                    e.id
                ),
                _ => unreachable!("filtered above"),
            };
            push_line(&mut out, &mut first, &line);
        }
        while fi < fl.len() {
            let line = flow_line(b.pid, b.tid, fl[fi]);
            push_line(&mut out, &mut first, &line);
            fi += 1;
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders and writes the trace to `path` (truncating).
pub fn write_trace(path: &Path, bufs: &[SpanBuf]) -> io::Result<()> {
    std::fs::write(path, render(bufs))
}

// ---------------------------------------------------------------------------
// A minimal JSON value parser: enough to validate our own output (and
// the JSONL metrics export) without a serde_json dependency.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("utf8"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in our output;
                            // map unpaired ones to U+FFFD.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("utf8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("utf8"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// What [`validate`] found in a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events (including metadata).
    pub events: usize,
    /// Complete (`X`) duration events.
    pub spans: usize,
    /// Matched flow pairs (`s` events, which equals `f` events).
    pub flows: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: usize,
}

fn field_num(ev: &Json, key: &str, i: usize) -> Result<f64, String> {
    ev.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event {i}: missing numeric \"{key}\""))
}

/// Checks an exported trace's structural invariants: well-formed JSON
/// with a `traceEvents` array, every event carrying `name`/`ph`/`pid`,
/// per-track monotonic timestamps, properly nested `X` spans, and
/// every `s` flow paired with an `f` (and vice versa).
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // (pid, tid) -> (last_ts, open-span end-time stack)
    let mut tracks: BTreeMap<(u64, u64), (f64, Vec<f64>)> = BTreeMap::new();
    let mut flow_s: BTreeMap<(String, u64), usize> = BTreeMap::new();
    let mut flow_f: BTreeMap<(String, u64), usize> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let pid = field_num(ev, "pid", i)? as u64;
        if ph == "M" {
            continue;
        }
        let tid = field_num(ev, "tid", i)? as u64;
        let ts = field_num(ev, "ts", i)?;
        let (last_ts, stack) = tracks.entry((pid, tid)).or_insert((f64::MIN, Vec::new()));
        if ts < *last_ts {
            return Err(format!(
                "event {i} ({name}): ts {ts} goes backwards on track ({pid},{tid})"
            ));
        }
        *last_ts = ts;
        match ph {
            "X" => {
                summary.spans += 1;
                let dur = field_num(ev, "dur", i)?;
                let end = ts + dur;
                while stack.last().is_some_and(|&top| top <= ts) {
                    stack.pop();
                }
                if let Some(&top) = stack.last() {
                    if end > top {
                        return Err(format!(
                            "event {i} ({name}): span [{ts},{end}) partially overlaps \
                             an open span ending at {top} on track ({pid},{tid})"
                        ));
                    }
                }
                stack.push(end);
            }
            "s" => {
                let id = field_num(ev, "id", i)? as u64;
                *flow_s.entry((name.to_string(), id)).or_default() += 1;
            }
            "f" => {
                let id = field_num(ev, "id", i)? as u64;
                if ev.get("bp").and_then(Json::as_str) != Some("e") {
                    return Err(format!("event {i} ({name}): flow \"f\" without bp:\"e\""));
                }
                *flow_f.entry((name.to_string(), id)).or_default() += 1;
            }
            "C" => {
                summary.counters += 1;
                if ev.get("args").and_then(|a| a.get("value")).is_none() {
                    return Err(format!("event {i} ({name}): counter without args.value"));
                }
            }
            other => return Err(format!("event {i} ({name}): unsupported ph \"{other}\"")),
        }
    }

    for (key, n) in &flow_s {
        if flow_f.get(key).copied().unwrap_or(0) != *n {
            return Err(format!(
                "flow \"{}\" id {} has {} origin(s) but {} target(s)",
                key.0,
                key.1,
                n,
                flow_f.get(key).copied().unwrap_or(0)
            ));
        }
        summary.flows += n;
    }
    for key in flow_f.keys() {
        if !flow_s.contains_key(key) {
            return Err(format!(
                "flow \"{}\" id {} has a target but no origin",
                key.0, key.1
            ));
        }
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanBuf, SpanEvent, SpanKind, PID_CONSUMER, PID_PRODUCER};
    use std::borrow::Cow;

    fn ev(kind: SpanKind, name: &'static str, ts: u64, dur: u64, id: u64) -> SpanEvent {
        SpanEvent {
            kind,
            name: Cow::Borrowed(name),
            ts_ns: ts,
            dur_ns: dur,
            id,
        }
    }

    fn sample_bufs() -> Vec<SpanBuf> {
        vec![
            SpanBuf {
                pid: PID_PRODUCER,
                tid: 0,
                process: "producer".into(),
                track: "dut".into(),
                events: vec![
                    ev(SpanKind::Span, "pack", 100, 300, 1),
                    ev(SpanKind::FlowOut, "pkt", 150, 0, 1),
                    ev(SpanKind::Span, "pack", 600, 200, 2),
                    ev(SpanKind::FlowOut, "pkt", 650, 0, 2),
                ],
                recorded: 4,
                dropped: 0,
            },
            SpanBuf {
                pid: PID_CONSUMER,
                tid: 0,
                process: "consumer".into(),
                track: "consumer".into(),
                events: vec![
                    // Recorded at end-time: nested spans appear before
                    // their parent; render must still sort correctly.
                    ev(SpanKind::FlowIn, "pkt", 500, 0, 1),
                    ev(SpanKind::Span, "unpack", 510, 40, 1),
                    ev(SpanKind::Span, "check", 560, 100, 1),
                    ev(SpanKind::Span, "ingest", 500, 200, 1),
                    ev(SpanKind::FlowIn, "pkt", 900, 0, 2),
                    ev(SpanKind::Span, "ingest", 900, 50, 2),
                    ev(SpanKind::Counter, "reorder.buffered", 950, 0, 3),
                ],
                recorded: 7,
                dropped: 0,
            },
        ]
    }

    #[test]
    fn render_round_trips_through_validate() {
        let text = render(&sample_bufs());
        let summary = validate(&text).expect("render output must validate");
        assert_eq!(summary.spans, 6);
        assert_eq!(summary.flows, 2, "both pkt flows matched");
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.tracks, 2);
    }

    #[test]
    fn unmatched_flow_origins_are_not_rendered() {
        let mut bufs = sample_bufs();
        // A dropped packet: origin with no consumer-side target.
        bufs[0]
            .events
            .push(ev(SpanKind::FlowOut, "pkt", 900, 0, 99));
        let text = render(&bufs);
        let summary = validate(&text).expect("dangling origin must be filtered");
        assert_eq!(summary.flows, 2);
        assert!(!text.contains("\"id\":99"));
    }

    #[test]
    fn fractional_microseconds_preserve_nanos() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(12_345), "12.345");
    }

    #[test]
    fn validate_rejects_backwards_time() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":10.0,"dur":1.0,"args":{"id":0}},
            {"name":"b","ph":"X","pid":1,"tid":0,"ts":5.0,"dur":1.0,"args":{"id":0}}
        ]}"#;
        let err = validate(text).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_partial_overlap() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":0.0,"dur":10.0,"args":{"id":0}},
            {"name":"b","ph":"X","pid":1,"tid":0,"ts":5.0,"dur":10.0,"args":{"id":0}}
        ]}"#;
        let err = validate(text).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn validate_rejects_unpaired_flows() {
        let text = r#"{"traceEvents":[
            {"name":"pkt","cat":"flow","ph":"s","pid":1,"tid":0,"ts":1.0,"id":7}
        ]}"#;
        let err = validate(text).unwrap_err();
        assert!(err.contains("origin"), "{err}");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a\"b":[1,-2.5,true,null,"xA\n"],"o":{}}"#).unwrap();
        let arr = v.get("a\"b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("xA\n"));
        assert_eq!(v.get("o"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("\"raw\u{0001}ctrl\"").is_err());
    }
}
