//! Causal span tracing: bounded per-thread span buffers over the
//! injectable [`Clock`], with an offline analysis pass.
//!
//! The metrics registry (DESIGN.md §10) answers *how much* time each
//! phase took in aggregate; spans answer *where a specific packet's
//! wall-time went* as it crossed producer → link → consumer. Each
//! runner hands out one [`SpanSink`] per thread of execution (producer
//! loop, consumer, per-core worker); a sink records complete spans
//! (name, start, duration), flow endpoints that link a packet's
//! pack→transport→unpack→check spans by `seq`, and counter samples.
//! Everything is keyed to a *track* — a `(pid, tid)` pair plus
//! human-readable names — so the Chrome-trace export
//! ([`crate::chrometrace`]) can lay the run out as one timeline per
//! worker.
//!
//! Tracing is off unless a [`Tracer`] is installed (normally from the
//! `DIFFTEST_TRACE` environment variable); a disabled sink is a single
//! branch on the hot path and records nothing.

use crate::metrics::Clock;
use std::borrow::Cow;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

/// Environment variable naming the Chrome-trace output path.
pub const TRACE_ENV: &str = "DIFFTEST_TRACE";

/// Trace process id for producer-side tracks (DUT loop, send path).
pub const PID_PRODUCER: u32 = 1;
/// Trace process id for consumer-side tracks. Only the socket runner
/// has a real second OS process, but every runner uses this pid for its
/// consume-side tracks so timelines read the same across runners.
pub const PID_CONSUMER: u32 = 2;

/// Default per-sink event capacity; past it, events are counted as
/// dropped rather than grown without bound.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// What a recorded [`SpanEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A complete duration span (`"ph":"X"`).
    Span,
    /// A flow origin (`"ph":"s"`): this side hands a causal id off.
    FlowOut,
    /// A flow target (`"ph":"f"`): this side picks a causal id up.
    FlowIn,
    /// A counter sample (`"ph":"C"`); `id` carries the value.
    Counter,
}

/// One recorded event on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event flavor.
    pub kind: SpanKind,
    /// Event name ("pack", "unpack", "check", ...).
    pub name: Cow<'static, str>,
    /// Start time in clock nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for flows and counters).
    pub dur_ns: u64,
    /// Causal tag: packet `seq` for spans and flows, the sampled value
    /// for counters, interval index for interval spans.
    pub id: u64,
}

/// A finished per-thread buffer of events plus its track identity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanBuf {
    /// Trace process id ([`PID_PRODUCER`] / [`PID_CONSUMER`]).
    pub pid: u32,
    /// Trace thread id, unique within the pid.
    pub tid: u32,
    /// Human-readable process name ("producer", "consumer").
    pub process: String,
    /// Human-readable track name ("dut", "worker-3", ...).
    pub track: String,
    /// The recorded events, in completion order (not start order).
    pub events: Vec<SpanEvent>,
    /// Events successfully recorded into `events`.
    pub recorded: u64,
    /// Events rejected because the buffer was at capacity.
    pub dropped: u64,
}

impl SpanBuf {
    /// Shifts every timestamp by `delta_ns` (saturating at zero). The
    /// socket runner uses this to move the child process's spans onto
    /// the producer's clock via the wall-clock epochs exchanged in the
    /// handshake.
    pub fn shift_ts(&mut self, delta_ns: i64) {
        for ev in &mut self.events {
            ev.ts_ns = if delta_ns >= 0 {
                ev.ts_ns.saturating_add(delta_ns as u64)
            } else {
                ev.ts_ns.saturating_sub(delta_ns.unsigned_abs())
            };
        }
    }

    /// True when nothing was recorded (disabled sink or idle track).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Folds `other` into this buffer: the identity (pid/tid/names) is
    /// taken from the first non-default buffer absorbed, events append
    /// in arrival order, and the recorded/dropped tallies sum. The
    /// interval runner collects the short-lived per-interval link sinks
    /// of one recording track into a single buffer this way.
    pub fn absorb(&mut self, other: SpanBuf) {
        if self.process.is_empty() && self.track.is_empty() {
            self.pid = other.pid;
            self.tid = other.tid;
            self.process = other.process;
            self.track = other.track;
        }
        self.events.extend(other.events);
        self.recorded += other.recorded;
        self.dropped += other.dropped;
    }
}

/// The zero clock backing disabled sinks; never read on the hot path
/// (the `enabled` check short-circuits first).
#[derive(Debug, Default)]
struct ZeroClock;

impl Clock for ZeroClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

/// A bounded, single-threaded span recorder. One per producer loop /
/// consumer / worker; never shared across threads (each thread owns
/// its sink and the buffers are gathered after joins).
pub struct SpanSink {
    enabled: bool,
    cap: usize,
    clock: Arc<dyn Clock + Send + Sync>,
    buf: SpanBuf,
}

impl fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanSink")
            .field("enabled", &self.enabled)
            .field("cap", &self.cap)
            .field("buf", &self.buf)
            .finish_non_exhaustive()
    }
}

impl Default for SpanSink {
    fn default() -> Self {
        SpanSink::disabled()
    }
}

impl SpanSink {
    /// A sink that records nothing; one branch per call site.
    pub fn disabled() -> SpanSink {
        SpanSink {
            enabled: false,
            cap: 0,
            clock: Arc::new(ZeroClock),
            buf: SpanBuf::default(),
        }
    }

    /// An enabled sink on the given track. Prefer [`Tracer::sink`].
    pub fn on_track(
        clock: Arc<dyn Clock + Send + Sync>,
        cap: usize,
        pid: u32,
        tid: u32,
        process: &str,
        track: &str,
    ) -> SpanSink {
        SpanSink {
            enabled: true,
            cap,
            clock,
            buf: SpanBuf {
                pid,
                tid,
                process: process.to_string(),
                track: track.to_string(),
                events: Vec::new(),
                recorded: 0,
                dropped: 0,
            },
        }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Reads the clock, or returns 0 when disabled. Pass the value to
    /// [`end`](Self::end); the split keeps borrows of the traced state
    /// out of the sink, mirroring [`crate::PhaseTimer`].
    #[inline]
    pub fn start(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.clock.now_ns()
    }

    /// Closes a span opened at `started_ns` under `name`, tagged `id`.
    #[inline]
    pub fn end(&mut self, name: &'static str, started_ns: u64, id: u64) {
        if !self.enabled {
            return;
        }
        let now = self.clock.now_ns();
        self.push(SpanEvent {
            kind: SpanKind::Span,
            name: Cow::Borrowed(name),
            ts_ns: started_ns,
            dur_ns: now.saturating_sub(started_ns),
            id,
        });
    }

    /// Records a flow origin (`id` is the causal tag, normally `seq`).
    #[inline]
    pub fn flow_out(&mut self, name: &'static str, id: u64) {
        if !self.enabled {
            return;
        }
        let now = self.clock.now_ns();
        self.push(SpanEvent {
            kind: SpanKind::FlowOut,
            name: Cow::Borrowed(name),
            ts_ns: now,
            dur_ns: 0,
            id,
        });
    }

    /// Records a flow target matching an earlier [`flow_out`](Self::flow_out).
    #[inline]
    pub fn flow_in(&mut self, name: &'static str, id: u64) {
        if !self.enabled {
            return;
        }
        let now = self.clock.now_ns();
        self.push(SpanEvent {
            kind: SpanKind::FlowIn,
            name: Cow::Borrowed(name),
            ts_ns: now,
            dur_ns: 0,
            id,
        });
    }

    /// Records a counter sample (renders as a counter track).
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let now = self.clock.now_ns();
        self.push(SpanEvent {
            kind: SpanKind::Counter,
            name: Cow::Borrowed(name),
            ts_ns: now,
            dur_ns: 0,
            id: value,
        });
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.buf.events.len() >= self.cap {
            self.buf.dropped += 1;
            return;
        }
        self.buf.recorded += 1;
        self.buf.events.push(ev);
    }

    /// Consumes the sink, returning its buffer (empty when disabled).
    pub fn into_buf(self) -> SpanBuf {
        self.buf
    }

    /// Takes the buffer out, leaving the sink disabled and empty.
    pub fn take_buf(&mut self) -> SpanBuf {
        self.enabled = false;
        std::mem::take(&mut self.buf)
    }
}

/// Shared trace configuration: where the trace goes, which clock spans
/// read, and the wall-clock epoch that anchors the clock's origin so a
/// second OS process can align its timeline with ours.
#[derive(Clone)]
pub struct Tracer {
    path: PathBuf,
    clock: Arc<dyn Clock + Send + Sync>,
    epoch_wall_ns: u64,
    capacity: usize,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("path", &self.path)
            .field("epoch_wall_ns", &self.epoch_wall_ns)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// Wall-clock nanoseconds since the UNIX epoch, right now.
pub fn wall_epoch_ns() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

impl Tracer {
    /// A tracer writing to `path` over a fresh real monotonic clock.
    /// The wall-clock epoch is captured at the same instant as the
    /// clock origin so cross-process traces can be aligned.
    pub fn to_path(path: impl Into<PathBuf>) -> Tracer {
        let clock = crate::metrics::MonotonicClock::default();
        let epoch_wall_ns = wall_epoch_ns();
        Tracer {
            path: path.into(),
            clock: Arc::new(clock),
            epoch_wall_ns,
            capacity: DEFAULT_SPAN_CAPACITY,
        }
    }

    /// Reads [`TRACE_ENV`]; `None` (tracing off) when unset or empty.
    pub fn from_env() -> Option<Tracer> {
        match std::env::var_os(TRACE_ENV) {
            Some(path) if !path.is_empty() => Some(Tracer::to_path(PathBuf::from(path))),
            _ => None,
        }
    }

    /// A tracer over an explicit clock and epoch; tests drive this with
    /// a [`crate::FakeClock`] for deterministic timestamps.
    pub fn with_clock(
        path: impl Into<PathBuf>,
        clock: Arc<dyn Clock + Send + Sync>,
        epoch_wall_ns: u64,
    ) -> Tracer {
        Tracer {
            path: path.into(),
            clock,
            epoch_wall_ns,
            capacity: DEFAULT_SPAN_CAPACITY,
        }
    }

    /// Overrides the per-sink event capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Tracer {
        self.capacity = capacity;
        self
    }

    /// The trace output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Wall-clock nanoseconds at this tracer's clock origin.
    pub fn epoch_wall_ns(&self) -> u64 {
        self.epoch_wall_ns
    }

    /// The tracer's clock (shared by every sink it hands out).
    pub fn clock(&self) -> Arc<dyn Clock + Send + Sync> {
        Arc::clone(&self.clock)
    }

    /// An enabled sink on the named track.
    pub fn sink(&self, pid: u32, tid: u32, process: &str, track: &str) -> SpanSink {
        SpanSink::on_track(
            Arc::clone(&self.clock),
            self.capacity,
            pid,
            tid,
            process,
            track,
        )
    }
}

// ---------------------------------------------------------------------------
// Offline analysis: group stats and per-seq critical paths.
// ---------------------------------------------------------------------------

/// Aggregate statistics for one span name across a set of buffers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanGroup {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall nanoseconds across those spans.
    pub total_ns: u64,
    /// Total minus time covered by spans nested inside them on the
    /// same track (the span's own work).
    pub self_ns: u64,
}

/// One hop of a packet's critical path: where it was, when, for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalStep {
    /// Track the span ran on ("dut", "consumer", "worker-2", ...).
    pub track: String,
    /// Span name ("pack", "unpack", "check", ...).
    pub name: String,
    /// Start time (aligned nanoseconds).
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A borrowed view over gathered [`SpanBuf`]s with typed filters,
/// patterned after [`crate::TraceQuery`]: narrow with the filter
/// methods, then aggregate.
#[derive(Debug, Clone)]
pub struct SpanQuery<'a> {
    rows: Vec<(&'a SpanBuf, &'a SpanEvent)>,
}

impl<'a> SpanQuery<'a> {
    /// A query over every event in every buffer.
    pub fn new(bufs: &'a [SpanBuf]) -> SpanQuery<'a> {
        let rows = bufs
            .iter()
            .flat_map(|b| b.events.iter().map(move |e| (b, e)))
            .collect();
        SpanQuery { rows }
    }

    /// Number of rows in the current selection.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Narrows with an arbitrary predicate.
    pub fn filter(self, mut pred: impl FnMut(&SpanBuf, &SpanEvent) -> bool) -> SpanQuery<'a> {
        SpanQuery {
            rows: self.rows.into_iter().filter(|(b, e)| pred(b, e)).collect(),
        }
    }

    /// Only events of `kind`.
    pub fn kind(self, kind: SpanKind) -> SpanQuery<'a> {
        self.filter(move |_, e| e.kind == kind)
    }

    /// Only complete spans.
    pub fn spans(self) -> SpanQuery<'a> {
        self.kind(SpanKind::Span)
    }

    /// Only events named `name`.
    pub fn named(self, name: &str) -> SpanQuery<'a> {
        let name = name.to_string();
        self.filter(move |_, e| e.name == name)
    }

    /// Only events on the named track.
    pub fn on_track(self, track: &str) -> SpanQuery<'a> {
        let track = track.to_string();
        self.filter(move |b, _| b.track == track)
    }

    /// Only events with causal tag `id` (packet seq, interval index).
    pub fn tagged(self, id: u64) -> SpanQuery<'a> {
        self.filter(move |_, e| e.id == id)
    }

    /// The selected rows as `(buf, event)` pairs.
    pub fn rows(&self) -> &[(&'a SpanBuf, &'a SpanEvent)] {
        &self.rows
    }

    /// Groups complete spans by name with count / total / self-time.
    /// Self-time subtracts child spans nested inside on the same track;
    /// results are sorted by descending total.
    pub fn group_stats(&self) -> Vec<SpanGroup> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<&str, SpanGroup> = BTreeMap::new();
        // Per-track nesting pass: sort spans by (ts, dur desc), walk a
        // stack of open spans, and charge each child's duration against
        // its innermost enclosing parent's self-time.
        let mut by_track: BTreeMap<(u32, u32), Vec<&SpanEvent>> = BTreeMap::new();
        for (b, e) in &self.rows {
            if e.kind == SpanKind::Span {
                by_track.entry((b.pid, b.tid)).or_default().push(e);
            }
        }
        for spans in by_track.values_mut() {
            spans.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(b.dur_ns.cmp(&a.dur_ns)));
            let mut stack: Vec<&SpanEvent> = Vec::new();
            for ev in spans.iter() {
                while let Some(top) = stack.last() {
                    if top.ts_ns.saturating_add(top.dur_ns) <= ev.ts_ns {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let g = groups.entry(ev.name.as_ref()).or_default();
                g.count += 1;
                g.total_ns += ev.dur_ns;
                g.self_ns += ev.dur_ns;
                if let Some(parent) = stack.last() {
                    let pg = groups.entry(parent.name.as_ref()).or_default();
                    pg.self_ns = pg.self_ns.saturating_sub(ev.dur_ns);
                }
                stack.push(ev);
            }
        }
        let mut out: Vec<SpanGroup> = groups
            .into_iter()
            .map(|(name, mut g)| {
                g.name = name.to_string();
                g
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        out
    }

    /// The critical path of causal tag `seq`: every complete span
    /// carrying that tag, ordered by start time — pack on the producer
    /// track, unpack/check on the consumer track.
    pub fn critical_path(&self, seq: u64) -> Vec<CriticalStep> {
        let mut steps: Vec<CriticalStep> = self
            .rows
            .iter()
            .filter(|(_, e)| e.kind == SpanKind::Span && e.id == seq)
            .map(|(b, e)| CriticalStep {
                track: b.track.clone(),
                name: e.name.to_string(),
                ts_ns: e.ts_ns,
                dur_ns: e.dur_ns,
            })
            .collect();
        steps.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(a.name.cmp(&b.name)));
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FakeClock;

    fn fake_tracer(clock: &Arc<FakeClock>) -> Tracer {
        let c: Arc<dyn Clock + Send + Sync> = Arc::clone(clock) as _;
        Tracer::with_clock("/tmp/unused.json", c, 1_000)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = SpanSink::disabled();
        assert!(!s.enabled());
        let t0 = s.start();
        assert_eq!(t0, 0);
        s.end("pack", t0, 7);
        s.flow_out("pkt", 7);
        s.counter("depth", 3);
        let buf = s.into_buf();
        assert!(buf.is_empty());
        assert_eq!(buf.recorded, 0);
        assert_eq!(buf.dropped, 0);
    }

    #[test]
    fn spans_carry_deterministic_timestamps() {
        let clock = Arc::new(FakeClock::new());
        let tracer = fake_tracer(&clock);
        let mut s = tracer.sink(PID_PRODUCER, 0, "producer", "dut");
        clock.advance(100);
        let t0 = s.start();
        clock.advance(250);
        s.end("pack", t0, 42);
        s.flow_out("pkt", 42);
        let buf = s.into_buf();
        assert_eq!(buf.recorded, 2);
        assert_eq!(
            buf.events[0],
            SpanEvent {
                kind: SpanKind::Span,
                name: Cow::Borrowed("pack"),
                ts_ns: 100,
                dur_ns: 250,
                id: 42,
            }
        );
        assert_eq!(buf.events[1].kind, SpanKind::FlowOut);
        assert_eq!(buf.events[1].ts_ns, 350);
        assert_eq!(buf.events[1].id, 42);
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let clock = Arc::new(FakeClock::new());
        let tracer = fake_tracer(&clock).with_capacity(3);
        let mut s = tracer.sink(PID_PRODUCER, 0, "p", "t");
        for i in 0..5 {
            let t0 = s.start();
            clock.advance(10);
            s.end("pack", t0, i);
        }
        let buf = s.into_buf();
        assert_eq!(buf.events.len(), 3);
        assert_eq!(buf.recorded, 3);
        assert_eq!(buf.dropped, 2);
    }

    #[test]
    fn shift_ts_aligns_cross_process_clocks() {
        let mut buf = SpanBuf {
            events: vec![SpanEvent {
                kind: SpanKind::Span,
                name: Cow::Borrowed("unpack"),
                ts_ns: 500,
                dur_ns: 10,
                id: 1,
            }],
            ..SpanBuf::default()
        };
        buf.shift_ts(250);
        assert_eq!(buf.events[0].ts_ns, 750);
        buf.shift_ts(-700);
        assert_eq!(buf.events[0].ts_ns, 50);
        buf.shift_ts(-100);
        assert_eq!(buf.events[0].ts_ns, 0, "saturates at zero");
    }

    #[test]
    fn absorb_folds_buffers_keeping_first_identity() {
        let clock = Arc::new(FakeClock::default());
        let mk = |name: &'static str| {
            let mut sink = SpanSink::on_track(clock.clone(), 8, 1, 2, "producer", "record");
            let t0 = sink.start();
            clock.advance(10);
            sink.end(name, t0, 1);
            sink.into_buf()
        };
        let mut acc = SpanBuf::default();
        acc.absorb(mk("pack"));
        acc.absorb(mk("pack"));
        assert_eq!((acc.pid, acc.tid), (1, 2));
        assert_eq!(acc.track, "record");
        assert_eq!(acc.events.len(), 2);
        assert_eq!(acc.recorded, 2);
    }

    fn span(name: &'static str, ts: u64, dur: u64, id: u64) -> SpanEvent {
        SpanEvent {
            kind: SpanKind::Span,
            name: Cow::Borrowed(name),
            ts_ns: ts,
            dur_ns: dur,
            id,
        }
    }

    #[test]
    fn group_stats_compute_self_time() {
        // Track 0: ingest [0,100) containing unpack [10,30) and
        // check [40,90); a second ingest [100,150) with nothing nested.
        let buf = SpanBuf {
            pid: PID_CONSUMER,
            tid: 0,
            process: "consumer".into(),
            track: "consumer".into(),
            events: vec![
                span("unpack", 10, 20, 1),
                span("check", 40, 50, 1),
                span("ingest", 0, 100, 1),
                span("ingest", 100, 50, 2),
            ],
            recorded: 4,
            dropped: 0,
        };
        let bufs = [buf];
        let q = SpanQuery::new(&bufs);
        let groups = q.group_stats();
        let get = |name: &str| groups.iter().find(|g| g.name == name).unwrap().clone();
        let ingest = get("ingest");
        assert_eq!(ingest.count, 2);
        assert_eq!(ingest.total_ns, 150);
        assert_eq!(ingest.self_ns, 150 - 20 - 50);
        let unpack = get("unpack");
        assert_eq!(unpack.total_ns, 20);
        assert_eq!(unpack.self_ns, 20);
        assert_eq!(groups[0].name, "ingest", "sorted by total desc");
    }

    #[test]
    fn critical_path_orders_by_start_across_tracks() {
        let producer = SpanBuf {
            pid: PID_PRODUCER,
            tid: 0,
            process: "producer".into(),
            track: "dut".into(),
            events: vec![span("pack", 0, 40, 7), span("pack", 200, 10, 8)],
            recorded: 2,
            dropped: 0,
        };
        let consumer = SpanBuf {
            pid: PID_CONSUMER,
            tid: 0,
            process: "consumer".into(),
            track: "consumer".into(),
            events: vec![span("unpack", 60, 20, 7), span("check", 85, 30, 7)],
            recorded: 2,
            dropped: 0,
        };
        let bufs = [producer, consumer];
        let path = SpanQuery::new(&bufs).critical_path(7);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["pack", "unpack", "check"]);
        assert_eq!(path[0].track, "dut");
        assert_eq!(path[1].track, "consumer");
        assert!(path.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn query_filters_narrow() {
        let bufs = [SpanBuf {
            pid: 1,
            tid: 0,
            process: "p".into(),
            track: "dut".into(),
            events: vec![
                span("pack", 0, 10, 1),
                span("pack", 20, 10, 2),
                SpanEvent {
                    kind: SpanKind::FlowOut,
                    name: Cow::Borrowed("pkt"),
                    ts_ns: 5,
                    dur_ns: 0,
                    id: 1,
                },
            ],
            recorded: 3,
            dropped: 0,
        }];
        let q = SpanQuery::new(&bufs);
        assert_eq!(q.len(), 3);
        assert_eq!(q.clone().spans().len(), 2);
        assert_eq!(q.clone().named("pkt").len(), 1);
        assert_eq!(q.clone().tagged(1).len(), 2);
        assert_eq!(q.clone().on_track("dut").len(), 3);
        assert!(q.on_track("nope").is_empty());
    }
}
