//! Named performance counters (paper §5 "performance evaluation support").
//!
//! Both the hardware side (fusion ratios, packet utilization) and the
//! software side (transfer counts, data volume) of DiffTest-H integrate
//! performance counters. [`Counters`] is the shared primitive: a small
//! ordered map from static names to `u64` values.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// An ordered collection of named `u64` counters.
///
/// Names are usually static strings; dynamically generated names (e.g.
/// per-worker counters of a sharded run) are accepted as owned strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<Cow<'static, str>, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    #[inline]
    pub fn add(&mut self, name: impl Into<Cow<'static, str>>, delta: u64) {
        *self.values.entry(name.into()).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn inc(&mut self, name: impl Into<Cow<'static, str>>) {
        self.add(name, 1);
    }

    /// Reads counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Sets counter `name` to `value`.
    pub fn set(&mut self, name: impl Into<Cow<'static, str>>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.values.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Merges another counter set into this one (summing). Hot in
    /// sharded aggregation, so keys are not re-allocated: an existing
    /// counter is bumped in place, and a new key clones the source
    /// `Cow` — a static borrow stays a static borrow.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.values {
            match self.values.get_mut(k) {
                Some(slot) => *slot += v,
                None => {
                    self.values.insert(k.clone(), *v);
                }
            }
        }
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no counter exists.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return write!(f, "(no counters)");
        }
        for (k, v) in &self.values {
            writeln!(f, "{k:40} {v:>16}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.inc("events");
        c.add("events", 2);
        c.add("bytes", 100);
        assert_eq!(c.get("events"), 3);
        assert_eq!(c.get("bytes"), 100);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn merge_preserves_borrowed_keys() {
        let mut a = Counters::new();
        a.add("static.key", 1);
        let mut b = Counters::new();
        b.add("static.key", 2);
        b.add("other.static", 3);
        b.add(format!("worker{}.items", 0), 4);
        a.merge(&b);
        assert_eq!(a.get("static.key"), 3);
        assert_eq!(a.get("other.static"), 3);
        assert_eq!(a.get("worker0.items"), 4);
        // Keys sourced from `&'static str` must stay borrowed through
        // the merge; only genuinely dynamic names own their storage.
        for key in a.values.keys() {
            match key {
                Cow::Borrowed(_) => assert_ne!(key.as_ref(), "worker0.items"),
                Cow::Owned(_) => assert_eq!(key.as_ref(), "worker0.items"),
            }
        }
    }

    #[test]
    fn display_not_empty() {
        let mut c = Counters::new();
        assert_eq!(c.to_string(), "(no counters)");
        c.inc("n");
        assert!(c.to_string().contains('n'));
    }
}
