//! The metrics registry: counters, gauges, histograms and phase timing
//! behind one merge-able, exportable surface.
//!
//! [`Metrics`] is what a runner carries through a run and attaches to its
//! report. Histograms are registered once up front and recorded by
//! integer [`HistogramId`] handle, so the per-packet hot path performs no
//! name lookup and no allocation. Phase wall-time is attributed through a
//! [`PhaseTimer`] over an injectable monotonic [`Clock`], so tests can
//! drive timing deterministically with a [`FakeClock`].
//!
//! Setting `DIFFTEST_OBS=<path>` makes every runner append its metrics
//! (and, on failure, its flight-recorder snapshot) to `<path>` as JSONL
//! via [`export_to_env`].

use std::borrow::Cow;
use std::io::{self, Write};
use std::path::Path;
use std::time::Instant;

use crate::histogram::Histogram;
use crate::recorder::FlightSnapshot;

/// Environment variable naming the JSONL observability export path.
pub const OBS_ENV: &str = "DIFFTEST_OBS";

/// One pipeline phase wall-time is attributed to (per runner, per
/// sharded worker). The taxonomy is fixed so exports from different
/// runners line up column-for-column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Advancing the DUT one cycle.
    Tick = 0,
    /// Capturing/retaining monitored events (replay ring, staging).
    Monitor = 1,
    /// Hardware-side fusion + tight packing.
    Pack = 2,
    /// Crossing the link: fault model, channel sends, routing.
    Transport = 3,
    /// Software-side CRC verify + meta-guided unpacking.
    Unpack = 4,
    /// Stepping the reference model and comparing.
    Check = 5,
    /// Loss recovery: retention-ring retransmits, replay localization.
    Arq = 6,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 7;

    /// Every phase, in attribution order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Tick,
        Phase::Monitor,
        Phase::Pack,
        Phase::Transport,
        Phase::Unpack,
        Phase::Check,
        Phase::Arq,
    ];

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Tick => "tick",
            Phase::Monitor => "monitor",
            Phase::Pack => "pack",
            Phase::Transport => "transport",
            Phase::Unpack => "unpack",
            Phase::Check => "check",
            Phase::Arq => "arq",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-time per [`Phase`] in nanoseconds — plain mergeable data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; Phase::COUNT],
}

impl PhaseTimes {
    /// Adds `nanos` to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase as usize] += nanos;
    }

    /// Nanoseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Sums another attribution into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += b;
        }
    }

    /// Total attributed nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Iterates `(phase, nanos)` in taxonomy order (all phases, even
    /// zero ones — exports must always carry the full taxonomy).
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.nanos[p as usize]))
    }
}

/// A monotonic nanosecond clock. Runners use [`MonotonicClock`]; tests
/// inject [`FakeClock`] to make phase attribution deterministic.
pub trait Clock {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock ([`Instant`]-based).
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for deterministic timing tests. Atomic (not
/// `Cell`) so one clock can be shared behind an `Arc` by every span sink
/// and phase timer in a multi-threaded deterministic run.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: std::sync::atomic::AtomicU64,
}

impl FakeClock {
    /// Starts at time zero.
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now
            .fetch_add(nanos, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Attributes wall-time spans to phases against an injectable clock.
#[derive(Debug)]
pub struct PhaseTimer<C: Clock = MonotonicClock> {
    clock: C,
    times: PhaseTimes,
}

impl PhaseTimer<MonotonicClock> {
    /// A timer over the real monotonic clock.
    pub fn monotonic() -> Self {
        PhaseTimer::with_clock(MonotonicClock::default())
    }
}

impl Default for PhaseTimer<MonotonicClock> {
    fn default() -> Self {
        PhaseTimer::monotonic()
    }
}

impl<C: Clock> PhaseTimer<C> {
    /// A timer over an explicit clock (tests use [`FakeClock`]).
    pub fn with_clock(clock: C) -> Self {
        PhaseTimer {
            clock,
            times: PhaseTimes::default(),
        }
    }

    /// Reads the clock; pass the value to [`stop`](Self::stop) to close
    /// the span. Split start/stop (rather than a closure) keeps borrows
    /// of the measured state out of the timer.
    #[inline]
    pub fn start(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Closes a span opened at `started_ns`, attributing it to `phase`.
    #[inline]
    pub fn stop(&mut self, phase: Phase, started_ns: u64) {
        self.times
            .add(phase, self.clock.now_ns().saturating_sub(started_ns));
    }

    /// Times a closure as one span of `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = self.start();
        let r = f();
        self.stop(phase, t0);
        r
    }

    /// The attribution so far.
    pub fn times(&self) -> PhaseTimes {
        self.times
    }
}

/// Stable handle to a registered histogram (index into the registry; no
/// name lookup on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Stable handle to a registered gauge. Like [`HistogramId`], updating
/// through the handle is an indexed store — no name comparison or map
/// probe per update, which matters for gauges refreshed inside runner
/// hot loops (queue depths, pool occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// The registry a runner carries: counters + gauges + histograms +
/// phase attribution, merged deterministically across sharded workers
/// and exported as JSONL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Monotonic named counters (the existing [`Counters`] primitive).
    ///
    /// [`Counters`]: crate::Counters
    pub counters: crate::Counters,
    /// Phase wall-time attribution.
    pub phases: PhaseTimes,
    gauge_names: Vec<Cow<'static, str>>,
    gauge_vals: Vec<u64>,
    hist_names: Vec<Cow<'static, str>>,
    hists: Vec<Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Registers (or finds) the histogram `name`, returning its handle.
    /// Registration allocates the fixed bucket array; recording never
    /// allocates.
    pub fn register_histogram(&mut self, name: impl Into<Cow<'static, str>>) -> HistogramId {
        let name = name.into();
        if let Some(i) = self.hist_names.iter().position(|n| *n == name) {
            return HistogramId(i);
        }
        self.hist_names.push(name);
        self.hists.push(Histogram::new());
        HistogramId(self.hists.len() - 1)
    }

    /// Records one sample into a registered histogram — O(1), no lookup.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.hists[id.0].record(value);
    }

    /// Records `n` identical samples into a registered histogram — O(1).
    /// Used to replay externally pre-bucketed distributions (e.g. the
    /// REF block-length counts) into the registry.
    #[inline]
    pub fn record_n(&mut self, id: HistogramId, value: u64, n: u64) {
        self.hists[id.0].record_n(value, n);
    }

    /// Looks a histogram up by name (export/analysis path).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hist_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.hists[i])
    }

    /// Iterates `(name, histogram)` in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.hist_names
            .iter()
            .map(Cow::as_ref)
            .zip(self.hists.iter())
    }

    /// Registers (or finds) the gauge `name`, returning its handle.
    /// A fresh gauge starts at zero.
    pub fn register_gauge(&mut self, name: impl Into<Cow<'static, str>>) -> GaugeId {
        let name = name.into();
        if let Some(i) = self.gauge_names.iter().position(|n| *n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name);
        self.gauge_vals.push(0);
        GaugeId(self.gauge_vals.len() - 1)
    }

    /// Sets a registered gauge to its latest value — O(1), no lookup.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: u64) {
        self.gauge_vals[id.0] = value;
    }

    /// Raises a registered gauge to `value` if it is larger (a running
    /// high-water mark) — O(1), no lookup.
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, value: u64) {
        let slot = &mut self.gauge_vals[id.0];
        *slot = (*slot).max(value);
    }

    /// Sets gauge `name` to its latest value, registering it first if
    /// needed. Convenience for cold paths; hot loops should hold a
    /// [`GaugeId`] and call [`set`](Self::set).
    pub fn set_gauge(&mut self, name: impl Into<Cow<'static, str>>, value: u64) {
        let id = self.register_gauge(name);
        self.set(id, value);
    }

    /// Reads gauge `name` (zero if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauge_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.gauge_vals[i])
            .unwrap_or(0)
    }

    /// Iterates `(name, value)` in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.gauge_names
            .iter()
            .map(Cow::as_ref)
            .zip(self.gauge_vals.iter().copied())
    }

    /// Merges another registry into this one. Deterministic regardless
    /// of worker scheduling: counters and histograms sum (histograms
    /// matched by name, unknown names appended in the other's
    /// registration order), gauges take the maximum, phases sum.
    pub fn merge(&mut self, other: &Metrics) {
        self.counters.merge(&other.counters);
        self.phases.merge(&other.phases);
        for (name, value) in other.gauge_names.iter().zip(other.gauge_vals.iter()) {
            match self.gauge_names.iter().position(|n| n == name) {
                Some(i) => self.gauge_vals[i] = self.gauge_vals[i].max(*value),
                None => {
                    self.gauge_names.push(name.clone());
                    self.gauge_vals.push(*value);
                }
            }
        }
        for (name, hist) in other.hist_names.iter().zip(other.hists.iter()) {
            match self.hist_names.iter().position(|n| n == name) {
                Some(i) => self.hists[i].merge(hist),
                None => {
                    self.hist_names.push(name.clone());
                    self.hists.push(hist.clone());
                }
            }
        }
    }

    /// Renders the registry as JSON Lines: one `run` header, then one
    /// line per counter, gauge, histogram summary, and phase (all seven
    /// phases always, even when zero).
    pub fn to_jsonl(&self, runner: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"run\",\"runner\":\"{}\"}}\n",
            escape_json(runner)
        ));
        for (name, value) in self.counters.iter() {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
                escape_json(name)
            ));
        }
        for (name, value) in self.gauges() {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}\n",
                escape_json(name)
            ));
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
            ));
        }
        for (phase, nanos) in self.phases.iter() {
            out.push_str(&format!(
                "{{\"type\":\"phase\",\"name\":\"{}\",\"nanos\":{nanos}}}\n",
                phase.name()
            ));
        }
        out
    }

    /// Appends this registry (and an optional flight-recorder snapshot)
    /// to the JSONL file at `path`, creating it if needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening or writing the file.
    pub fn export_jsonl(
        &self,
        path: &Path,
        runner: &str,
        flight: Option<&FlightSnapshot>,
    ) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(self.to_jsonl(runner).as_bytes())?;
        if let Some(snap) = flight {
            snap.to_jsonl(&mut f)?;
        }
        f.flush()
    }
}

/// Exports `metrics` (plus an optional flight snapshot) to the path
/// named by `DIFFTEST_OBS`, if set. Returns `Ok(true)` when an export
/// happened, `Ok(false)` when the variable is unset — the near-free
/// default.
///
/// # Errors
///
/// Propagates I/O failures from the export itself.
pub fn export_to_env(
    runner: &str,
    metrics: &Metrics,
    flight: Option<&FlightSnapshot>,
) -> io::Result<bool> {
    match std::env::var_os(OBS_ENV) {
        Some(path) if !path.is_empty() => {
            metrics.export_jsonl(Path::new(&path), runner, flight)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape_json(s: &str) -> Cow<'_, str> {
    if s.chars().all(|c| c != '"' && c != '\\' && c >= ' ') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c < ' ' => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_registration_is_idempotent() {
        let mut m = Metrics::new();
        let a = m.register_histogram("packet.bytes");
        let b = m.register_histogram("packet.bytes");
        assert_eq!(a, b);
        m.record(a, 100);
        m.record(b, 200);
        assert_eq!(m.histogram("packet.bytes").map(Histogram::count), Some(2));
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn gauge_registration_is_idempotent_and_handles_update() {
        let mut m = Metrics::new();
        let a = m.register_gauge("queue.depth");
        let b = m.register_gauge("queue.depth");
        assert_eq!(a, b);
        assert_eq!(m.gauge("queue.depth"), 0, "fresh gauges read zero");
        m.set(a, 7);
        m.set(b, 3);
        assert_eq!(m.gauge("queue.depth"), 3, "set is last-write-wins");
        m.set_max(a, 9);
        m.set_max(a, 5);
        assert_eq!(
            m.gauge("queue.depth"),
            9,
            "set_max keeps the high-water mark"
        );
        m.set_gauge("queue.depth", 1);
        assert_eq!(m.gauge("queue.depth"), 1, "name path aliases the handle");
        assert_eq!(m.gauge("missing"), 0);
        assert_eq!(m.gauges().count(), 1);
    }

    #[test]
    fn fake_clock_attributes_deterministically() {
        let mut t = PhaseTimer::with_clock(FakeClock::new());
        let t0 = t.start();
        t.clock.advance(500);
        t.stop(Phase::Tick, t0);
        let t1 = t.start();
        t.clock.advance(250);
        t.stop(Phase::Check, t1);
        let t2 = t.start();
        t.clock.advance(125);
        t.stop(Phase::Unpack, t2);
        let times = t.times();
        assert_eq!(times.get(Phase::Tick), 500);
        assert_eq!(times.get(Phase::Check), 250);
        assert_eq!(times.get(Phase::Unpack), 125);
        assert_eq!(times.get(Phase::Arq), 0);
        assert_eq!(times.total_ns(), 875);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut m = Metrics::new();
            let h = m.register_histogram("h");
            for &v in vals {
                m.record(h, v);
            }
            m.counters.add("n", vals.len() as u64);
            m.set_gauge("g", vals.iter().copied().max().unwrap_or(0));
            m.phases.add(Phase::Check, vals.iter().sum());
            m
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[10, 20]);
        let mut ab = Metrics::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Metrics::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters.get("n"), 5);
        assert_eq!(ab.gauge("g"), 20);
        assert_eq!(ab.phases.get(Phase::Check), 36);
        assert_eq!(ab.histogram("h").map(Histogram::count), Some(5));
    }

    #[test]
    fn jsonl_carries_all_seven_phases() {
        let mut m = Metrics::new();
        let h = m.register_histogram("x");
        m.record(h, 7);
        m.counters.inc("c");
        m.set_gauge("g", 3);
        let text = m.to_jsonl("test");
        for phase in Phase::ALL {
            assert!(
                text.contains(&format!("\"name\":\"{}\"", phase.name())),
                "missing phase {phase} in {text}"
            );
        }
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":"), "{line}");
        }
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"type\":\"gauge\""));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }

    #[test]
    fn export_to_env_is_noop_when_unset() {
        // The test runner must not have DIFFTEST_OBS set globally.
        if std::env::var_os(OBS_ENV).is_none() {
            let m = Metrics::new();
            assert!(!export_to_env("none", &m, None).unwrap());
        }
    }

    /// Every JSONL line must be a parseable JSON object even under
    /// hostile metric names — the exact edge cases `escape_json`
    /// handles (quotes, backslashes, control characters) plus names
    /// that need no escaping at all.
    #[test]
    fn jsonl_lines_parse_under_hostile_metric_names() {
        let hostile = [
            "plain.counter",
            "quote\"inside",
            "back\\slash",
            "tab\there",
            "new\nline",
            "carriage\rreturn",
            "nul\u{0}byte",
            "unicode.καμήλα",
            "all\"\\\n\tat once",
        ];
        let mut m = Metrics::new();
        for (i, name) in hostile.iter().enumerate() {
            m.counters.set(*name, i as u64 + 1);
            m.set_gauge(*name, 10 + i as u64);
            let h = m.register_histogram(*name);
            m.record(h, 100 + i as u64);
        }
        let text = m.to_jsonl("runner\"with\\specials\n");
        let mut names_seen = 0usize;
        for line in text.lines() {
            let v = crate::chrometrace::parse_json(line)
                .unwrap_or_else(|e| panic!("unparseable JSONL line ({e}): {line}"));
            let name = v.get("name").and_then(crate::chrometrace::Json::as_str);
            if let Some(name) = name {
                if hostile.contains(&name) {
                    // Escaping must round-trip: the parsed name is the
                    // original, byte for byte.
                    names_seen += 1;
                }
            }
        }
        assert_eq!(
            names_seen,
            hostile.len() * 3,
            "each hostile name must round-trip through counter, gauge and histogram lines"
        );
    }
}
