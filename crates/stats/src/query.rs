//! Offline trace analysis (paper §5 "SQL analysis support").
//!
//! The paper records transmissions in a SQL database for offline analysis
//! of event correlations. Shipping a SQL engine is out of scope for the
//! sanctioned dependency set, so this module provides the equivalent
//! analyses through a typed in-memory query API over a reloaded trace:
//! filtering, grouping and aggregation (see `DESIGN.md` §1).

use std::collections::BTreeMap;

use difftest_event::{Category, EventKind, MonitoredEvent};

/// Aggregates computed per group by [`TraceQuery::group_by_kind`] and
/// friends.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupStats {
    /// Number of events in the group.
    pub count: u64,
    /// Total encoded payload bytes.
    pub bytes: u64,
    /// First cycle observed.
    pub first_cycle: u64,
    /// Last cycle observed.
    pub last_cycle: u64,
}

impl GroupStats {
    fn absorb(&mut self, ev: &MonitoredEvent) {
        if self.count == 0 {
            self.first_cycle = ev.cycle;
        }
        self.count += 1;
        self.bytes += ev.encoded_len() as u64;
        self.last_cycle = self.last_cycle.max(ev.cycle);
    }

    /// Events per cycle over the group's observed span.
    pub fn rate_per_cycle(&self) -> f64 {
        let span = (self.last_cycle - self.first_cycle + 1) as f64;
        self.count as f64 / span
    }
}

/// A borrowed, filterable view over a trace.
#[derive(Debug, Clone)]
pub struct TraceQuery<'a> {
    rows: Vec<&'a MonitoredEvent>,
}

impl<'a> TraceQuery<'a> {
    /// Creates a query over the whole trace.
    pub fn new(trace: &'a [MonitoredEvent]) -> Self {
        TraceQuery {
            rows: trace.iter().collect(),
        }
    }

    /// Number of rows currently selected.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Keeps rows matching the predicate.
    pub fn filter(mut self, mut pred: impl FnMut(&MonitoredEvent) -> bool) -> Self {
        self.rows.retain(|e| pred(e));
        self
    }

    /// Keeps rows of one event kind.
    pub fn kind(self, kind: EventKind) -> Self {
        self.filter(move |e| e.event.kind() == kind)
    }

    /// Keeps rows of one category.
    pub fn category(self, cat: Category) -> Self {
        self.filter(move |e| e.event.kind().category() == cat)
    }

    /// Keeps rows from one core.
    pub fn core(self, core: u8) -> Self {
        self.filter(move |e| e.core == core)
    }

    /// Keeps rows with `cycle` in `[lo, hi)`.
    pub fn cycles(self, lo: u64, hi: u64) -> Self {
        self.filter(move |e| (lo..hi).contains(&e.cycle))
    }

    /// Keeps only non-deterministic events.
    pub fn nde(self) -> Self {
        self.filter(|e| e.is_nde())
    }

    /// Groups the selection by event kind.
    pub fn group_by_kind(&self) -> BTreeMap<EventKind, GroupStats> {
        let mut out = BTreeMap::new();
        for e in &self.rows {
            out.entry(e.event.kind())
                .or_insert_with(GroupStats::default)
                .absorb(e);
        }
        out
    }

    /// Groups the selection by category.
    pub fn group_by_category(&self) -> BTreeMap<Category, GroupStats> {
        let mut out = BTreeMap::new();
        for e in &self.rows {
            out.entry(e.event.kind().category())
                .or_insert_with(GroupStats::default)
                .absorb(e);
        }
        out
    }

    /// Total encoded bytes of the selection.
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().map(|e| e.encoded_len() as u64).sum()
    }

    /// The selected rows.
    pub fn rows(&self) -> &[&'a MonitoredEvent] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{ArchEvent, InstrCommit, OrderTag, StoreEvent, Token};

    fn ev(core: u8, cycle: u64, event: difftest_event::Event) -> MonitoredEvent {
        MonitoredEvent {
            core,
            cycle,
            order: OrderTag(cycle),
            token: Token(cycle),
            event,
        }
    }

    fn trace() -> Vec<MonitoredEvent> {
        vec![
            ev(0, 1, InstrCommit::default().into()),
            ev(0, 2, InstrCommit::default().into()),
            ev(1, 2, StoreEvent::default().into()),
            ev(
                0,
                3,
                ArchEvent {
                    is_interrupt: 1,
                    ..Default::default()
                }
                .into(),
            ),
        ]
    }

    #[test]
    fn filters_compose() {
        let t = trace();
        let q = TraceQuery::new(&t).core(0).cycles(2, 4);
        assert_eq!(q.len(), 2);
        assert_eq!(TraceQuery::new(&t).nde().len(), 1);
        assert!(TraceQuery::new(&t).kind(EventKind::RefillEvent).is_empty());
    }

    #[test]
    fn group_by_kind_counts() {
        let t = trace();
        let g = TraceQuery::new(&t).group_by_kind();
        assert_eq!(g[&EventKind::InstrCommit].count, 2);
        assert_eq!(g[&EventKind::StoreEvent].count, 1);
        assert_eq!(
            g[&EventKind::InstrCommit].bytes,
            2 * EventKind::InstrCommit.encoded_len() as u64
        );
    }

    #[test]
    fn group_by_category() {
        let t = trace();
        let g = TraceQuery::new(&t).group_by_category();
        assert_eq!(g[&Category::ControlFlow].count, 3);
        assert_eq!(g[&Category::MemoryAccess].count, 1);
    }

    #[test]
    fn rates() {
        let t = trace();
        let g = TraceQuery::new(&t)
            .kind(EventKind::InstrCommit)
            .group_by_kind();
        let s = g[&EventKind::InstrCommit];
        assert_eq!(s.first_cycle, 1);
        assert_eq!(s.last_cycle, 2);
        assert!((s.rate_per_cycle() - 1.0).abs() < 1e-12);
    }
}
