//! Plain-text table rendering for the benchmark harnesses.
//!
//! Every reproduced table/figure prints through [`Table`] so the output of
//! `cargo bench` lines up with the paper's rows.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| (*c).to_owned()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }

        if !self.title.is_empty() {
            writeln!(f, "== {} ==", self.title)?;
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            print_row(f, &self.headers)?;
            let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            writeln!(f, "{}", "-".repeat(rule))?;
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a frequency in engineering units (`KHz`/`MHz`) as the paper does.
pub fn fmt_hz(hz: f64) -> String {
    if hz >= 1e6 {
        format!("{:.2} MHz", hz / 1e6)
    } else if hz >= 1e3 {
        format!("{:.1} KHz", hz / 1e3)
    } else {
        format!("{hz:.1} Hz")
    }
}

/// Formats a ratio like the paper's speedup columns (`80×`).
pub fn fmt_ratio(r: f64) -> String {
    if r >= 10.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.1}x")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["name", "speed"]);
        t.row_str(&["baseline", "6 KHz"]);
        t.row_str(&["+Squash", "478 KHz"]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("baseline"));
        let lines: Vec<_> = s.lines().collect();
        // header, rule, two rows, plus title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn hz_formatting() {
        assert_eq!(fmt_hz(478_120.0), "478.1 KHz");
        assert_eq!(fmt_hz(7_800_000.0), "7.80 MHz");
        assert_eq!(fmt_hz(12.0), "12.0 Hz");
    }

    #[test]
    fn ratio_and_pct() {
        assert_eq!(fmt_ratio(80.4), "80x");
        assert_eq!(fmt_ratio(4.26), "4.3x");
        assert_eq!(fmt_pct(0.998), "99.8%");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("", &[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
