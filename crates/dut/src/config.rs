//! DUT configurations mirroring the paper's Table 3/4 setups.

use difftest_event::EventKind;
use serde::{Deserialize, Serialize};

/// How many hardware instances (ports/slots) of each event type exist per
/// cycle — the provisioning a fixed-offset packing scheme must reserve
/// space for.
///
/// Fixed-offset packing (the baseline DiffTest-H improves on) allocates
/// `slots × (1 + encoded_len)` bytes per kind per cycle regardless of how
/// many instances are actually valid, which is where the >60% packet
/// bubbles of paper §4.2 come from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTable {
    slots: Vec<u8>,
}

impl SlotTable {
    /// Builds a slot table from `(kind, count)` pairs; unlisted kinds get
    /// zero slots.
    pub fn from_pairs(pairs: &[(EventKind, u8)]) -> Self {
        let mut slots = vec![0u8; EventKind::COUNT];
        for (kind, count) in pairs {
            slots[*kind as usize] = *count;
        }
        SlotTable { slots }
    }

    /// Slots provisioned for `kind`.
    #[inline]
    pub fn slots(&self, kind: EventKind) -> u8 {
        self.slots[kind as usize]
    }

    /// Iterates `(kind, slots)` over kinds with at least one slot.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u8)> + '_ {
        EventKind::ALL
            .iter()
            .copied()
            .filter_map(move |k| match self.slots(k) {
                0 => None,
                n => Some((k, n)),
            })
    }

    /// Number of event types provisioned (the paper's "verification states"
    /// column).
    pub fn kind_count(&self) -> usize {
        self.slots.iter().filter(|&&s| s > 0).count()
    }

    /// Bytes of one fixed-offset cycle packet: every slot carries a
    /// one-byte valid flag plus its full payload.
    pub fn fixed_layout_bytes(&self) -> usize {
        self.iter()
            .map(|(k, n)| (1 + k.encoded_len()) * n as usize)
            .sum()
    }
}

/// Which events the monitor emits and how often (per DUT configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventPolicy {
    /// Emit the architectural state dumps (int/fp/CSR/vector register
    /// files) every N commit-cycles (1 = every commit cycle).
    pub state_dump_period: u32,
    /// Emit floating-point register state in dumps.
    pub fp_state: bool,
    /// Emit vector register state and vector CSR state in dumps.
    pub vec_state: bool,
    /// Emit hypervisor/debug/trigger CSR state in dumps.
    pub ext_csr_state: bool,
    /// Emit memory-hierarchy events (caches, TLBs, sbuffer, PTW).
    pub hierarchy: bool,
    /// Emit per-operation load/atomic/writeback events.
    pub port_events: bool,
}

/// A design-under-test configuration (paper Table 3/4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DutConfig {
    /// Display name.
    pub name: String,
    /// Instructions committed per cycle at most.
    pub commit_width: u32,
    /// Number of cores.
    pub cores: u32,
    /// Design size in gates (area/capacity models).
    pub gates: f64,
    /// Monitor probes per core (area model; paper §6.4 uses 128).
    pub probes_per_core: u32,
    /// Event emission policy.
    pub policy: EventPolicy,
    /// Per-cycle hardware slot provisioning.
    pub slots: SlotTable,
    /// Pipeline stall model parameters.
    pub pipeline: PipelineParams,
}

/// Parameters of the deterministic stall model shaping commit density.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineParams {
    /// Probability (×1e6) that a cycle commits nothing (front-end stall).
    pub frontend_stall_ppm: u32,
    /// Probability (×1e6) that a load misses the D-cache.
    pub dcache_miss_ppm: u32,
    /// Stall cycles charged on a D-cache miss.
    pub miss_penalty: u32,
    /// Probability (×1e6) that a fetch misses the I-cache.
    pub icache_miss_ppm: u32,
    /// Probability (×1e6) that the commit group ends after each commit
    /// (models dispatch/ROB fragmentation; shapes the mean group size).
    pub group_break_ppm: u32,
}

impl DutConfig {
    /// NutShell: scalar in-order core, 0.6 M gates, 6 event types
    /// (Table 4 row 1: ~93 B/instruction).
    pub fn nutshell() -> Self {
        use EventKind as K;
        DutConfig {
            name: "NutShell".to_owned(),
            commit_width: 1,
            cores: 1,
            gates: 0.6e6,
            probes_per_core: 32,
            policy: EventPolicy {
                state_dump_period: 8,
                fp_state: false,
                vec_state: false,
                ext_csr_state: false,
                hierarchy: false,
                port_events: false,
            },
            slots: SlotTable::from_pairs(&[
                (K::InstrCommit, 1),
                (K::TrapEvent, 1),
                (K::ArchEvent, 1),
                (K::ArchIntRegState, 1),
                (K::CsrState, 1),
                (K::StoreEvent, 1),
            ]),
            pipeline: PipelineParams {
                frontend_stall_ppm: 550_000,
                dcache_miss_ppm: 60_000,
                miss_penalty: 6,
                icache_miss_ppm: 15_000,
                group_break_ppm: 0,
            },
        }
    }

    /// XiangShan (Minimal): 2-wide out-of-order, 39.4 M gates, 32 event
    /// types (~692 B/instruction).
    pub fn xiangshan_minimal() -> Self {
        DutConfig {
            name: "XiangShan (Minimal)".to_owned(),
            commit_width: 2,
            cores: 1,
            gates: 39.4e6,
            probes_per_core: 128,
            policy: EventPolicy {
                state_dump_period: 2,
                fp_state: true,
                vec_state: true,
                ext_csr_state: true,
                hierarchy: true,
                port_events: true,
            },
            slots: Self::xiangshan_slots(2),
            pipeline: PipelineParams {
                frontend_stall_ppm: 300_000,
                dcache_miss_ppm: 50_000,
                miss_penalty: 8,
                icache_miss_ppm: 10_000,
                group_break_ppm: 800_000,
            },
        }
    }

    /// XiangShan (Default): 6-wide out-of-order, 57.6 M gates, 32 event
    /// types (~1437 B/instruction).
    pub fn xiangshan_default() -> Self {
        DutConfig {
            name: "XiangShan (Default)".to_owned(),
            commit_width: 6,
            cores: 1,
            gates: 57.6e6,
            probes_per_core: 128,
            policy: EventPolicy {
                state_dump_period: 1,
                fp_state: true,
                vec_state: true,
                ext_csr_state: true,
                hierarchy: true,
                port_events: true,
            },
            slots: Self::xiangshan_slots(6),
            pipeline: PipelineParams {
                frontend_stall_ppm: 150_000,
                dcache_miss_ppm: 45_000,
                miss_penalty: 8,
                icache_miss_ppm: 8_000,
                group_break_ppm: 850_000,
            },
        }
    }

    /// XiangShan (Default, dual-core): 111.8 M gates (~3025 B/instruction
    /// aggregated over both cores).
    pub fn xiangshan_dual() -> Self {
        let mut cfg = Self::xiangshan_default();
        cfg.name = "XiangShan (Default, 2C)".to_owned();
        cfg.cores = 2;
        cfg.gates = 111.8e6;
        cfg
    }

    fn xiangshan_slots(width: u8) -> SlotTable {
        use EventKind as K;
        SlotTable::from_pairs(&[
            // Control flow.
            (K::InstrCommit, width),
            (K::TrapEvent, 1),
            (K::ArchEvent, 1),
            (K::Redirect, width),
            (K::RunaheadEvent, width),
            // Register updates.
            (K::ArchIntRegState, 1),
            (K::ArchFpRegState, 1),
            (K::CsrState, 1),
            (K::IntWriteback, 2 * width),
            (K::FpWriteback, width),
            (K::DebugModeState, 1),
            (K::TriggerCsrState, 1),
            (K::HypervisorCsrState, 1),
            (K::VecCsrState, 1),
            // Memory access.
            (K::LoadEvent, width.max(3)),
            (K::StoreEvent, 4),
            (K::AtomicEvent, 1),
            // Memory hierarchy.
            (K::SbufferEvent, 2),
            (K::RefillEvent, 4),
            (K::L1TlbEvent, 4),
            (K::L2TlbEvent, 2),
            (K::LrScEvent, 1),
            (K::PtwEvent, 2),
            // Extensions.
            (K::ArchVecRegState, 1),
            (K::VecWriteback, width),
            (K::HCsrUpdate, 2),
            (K::VirtualInterrupt, 1),
            (K::GuestPageFault, 1),
            (K::VecLoad, 2),
            (K::VecStore, 2),
            (K::FpCsrUpdate, 1),
            (K::VecConfig, 1),
        ])
    }

    /// Number of verification event types this configuration covers.
    pub fn event_types(&self) -> usize {
        self.slots.kind_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nutshell_has_six_types() {
        assert_eq!(DutConfig::nutshell().event_types(), 6);
    }

    #[test]
    fn xiangshan_has_thirty_two_types() {
        assert_eq!(DutConfig::xiangshan_default().event_types(), 32);
        assert_eq!(DutConfig::xiangshan_minimal().event_types(), 32);
        assert_eq!(DutConfig::xiangshan_dual().event_types(), 32);
    }

    #[test]
    fn fixed_layout_is_kilobytes_for_xiangshan() {
        // Paper §2.2: the aggregated DPI-C interface size is ~11.5 KB for
        // the full 32-type coverage. Our per-core provisioning is several
        // KB; the dual-core aggregate approaches the paper's figure.
        let xs = DutConfig::xiangshan_default();
        let per_core = xs.slots.fixed_layout_bytes();
        assert!(per_core > 3_000, "per-core layout {per_core}");
        let dual = 2 * per_core;
        assert!((6_000..16_000).contains(&dual), "dual layout {dual}");
    }

    #[test]
    fn slot_table_iteration() {
        let t = SlotTable::from_pairs(&[(EventKind::InstrCommit, 6)]);
        assert_eq!(t.kind_count(), 1);
        assert_eq!(t.slots(EventKind::InstrCommit), 6);
        assert_eq!(t.slots(EventKind::TrapEvent), 0);
        let total: usize = t.iter().map(|(k, n)| n as usize * k.encoded_len()).sum();
        assert_eq!(total, 6 * EventKind::InstrCommit.encoded_len());
    }

    #[test]
    fn dual_core_doubles_cores_only() {
        let d = DutConfig::xiangshan_dual();
        let s = DutConfig::xiangshan_default();
        assert_eq!(d.cores, 2);
        assert_eq!(d.commit_width, s.commit_width);
        assert!(d.gates > s.gates);
    }
}
