//! MMIO devices: CLINT timer and UART.
//!
//! These are the sources of non-determinism in the DUT. The CLINT counts
//! *cycles*, so the instruction at which a timer interrupt fires depends on
//! microarchitectural timing the REF cannot reproduce; the UART receive
//! register returns a byte stream derived from device-local state. Both must
//! therefore be synchronized to the REF as non-deterministic events.

use serde::{Deserialize, Serialize};

pub use difftest_ref::map::{
    CLINT_BASE, CLINT_MSIP, CLINT_MTIME, CLINT_MTIMECMP, UART_BASE, UART_DATA, UART_STATUS,
};

/// Core-local interrupt controller with a cycle-granularity timer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Clint {
    mtime: u64,
    mtimecmp: u64,
    msip: bool,
}

impl Clint {
    /// Creates a CLINT with the timer disarmed.
    pub fn new() -> Self {
        Clint {
            mtime: 0,
            mtimecmp: u64::MAX,
            msip: false,
        }
    }

    /// Advances `mtime` by one cycle.
    pub fn tick(&mut self) {
        self.mtime += 1;
    }

    /// Returns `true` while the timer interrupt is pending.
    pub fn timer_pending(&self) -> bool {
        self.mtime >= self.mtimecmp
    }

    /// Returns `true` while the software interrupt is pending.
    pub fn software_pending(&self) -> bool {
        self.msip
    }

    /// MMIO read.
    pub fn read(&self, addr: u64) -> u64 {
        match addr {
            CLINT_MSIP => self.msip as u64,
            CLINT_MTIMECMP => self.mtimecmp,
            CLINT_MTIME => self.mtime,
            _ => 0,
        }
    }

    /// MMIO write.
    pub fn write(&mut self, addr: u64, value: u64) {
        match addr {
            CLINT_MSIP => self.msip = value & 1 != 0,
            CLINT_MTIMECMP => self.mtimecmp = value,
            CLINT_MTIME => self.mtime = value,
            _ => {}
        }
    }

    /// Current `mtime` (tests, stats).
    pub fn mtime(&self) -> u64 {
        self.mtime
    }
}

/// A UART whose receive stream depends on device-local state — the
/// archetypal MMIO non-determinism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Uart {
    rx_state: u64,
    tx: Vec<u8>,
}

impl Uart {
    /// Creates a UART with a seeded receive stream.
    pub fn new(seed: u64) -> Self {
        Uart {
            rx_state: seed | 1,
            tx: Vec::new(),
        }
    }

    /// MMIO read. Reading the data register consumes one receive byte whose
    /// value depends on the device state *and* the cycle of the access.
    pub fn read(&mut self, addr: u64, cycle: u64) -> u64 {
        match addr {
            UART_DATA => {
                // xorshift mixed with the access cycle: timing-dependent.
                self.rx_state ^= self.rx_state << 13;
                self.rx_state ^= self.rx_state >> 7;
                self.rx_state ^= self.rx_state << 17;
                let b = (self.rx_state ^ cycle).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56;
                0x20 + (b % 95) // printable ASCII
            }
            UART_STATUS => 0x60, // transmit idle + holding empty
            _ => 0,
        }
    }

    /// MMIO write. Writing the data register appends to the transcript.
    pub fn write(&mut self, addr: u64, value: u64) {
        if addr == UART_DATA {
            self.tx.push(value as u8);
        }
    }

    /// Bytes the program has printed.
    pub fn transcript(&self) -> &[u8] {
        &self.tx
    }
}

/// The per-core device complex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Devices {
    /// Timer/software interrupt controller.
    pub clint: Clint,
    /// Serial port.
    pub uart: Uart,
}

impl Devices {
    /// Creates the device complex with a UART receive-stream seed.
    pub fn new(uart_seed: u64) -> Self {
        Devices {
            clint: Clint::new(),
            uart: Uart::new(uart_seed),
        }
    }

    /// Advances cycle-driven device state.
    pub fn tick(&mut self) {
        self.clint.tick();
    }

    /// Routes an MMIO read.
    pub fn read(&mut self, addr: u64, cycle: u64) -> u64 {
        if (CLINT_BASE..CLINT_BASE + 0x1_0000).contains(&addr) {
            self.clint.read(addr)
        } else if (UART_BASE..UART_BASE + 0x100).contains(&addr) {
            self.uart.read(addr, cycle)
        } else {
            0
        }
    }

    /// Routes an MMIO write.
    pub fn write(&mut self, addr: u64, value: u64) {
        if (CLINT_BASE..CLINT_BASE + 0x1_0000).contains(&addr) {
            self.clint.write(addr, value);
        } else if (UART_BASE..UART_BASE + 0x100).contains(&addr) {
            self.uart.write(addr, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_after_compare() {
        let mut c = Clint::new();
        c.write(CLINT_MTIMECMP, 3);
        assert!(!c.timer_pending());
        c.tick();
        c.tick();
        assert!(!c.timer_pending());
        c.tick();
        assert!(c.timer_pending());
        assert_eq!(c.read(CLINT_MTIME), 3);
    }

    #[test]
    fn uart_rx_depends_on_cycle() {
        let mut a = Uart::new(42);
        let mut b = Uart::new(42);
        let va = a.read(UART_DATA, 100);
        let vb = b.read(UART_DATA, 101);
        assert_ne!(va, vb, "same device state, different cycle");
        // Values are printable ASCII.
        assert!((0x20..0x7f).contains(&va));
    }

    #[test]
    fn uart_transcript_collects_writes() {
        let mut u = Uart::new(1);
        u.write(UART_DATA, b'h' as u64);
        u.write(UART_DATA, b'i' as u64);
        assert_eq!(u.transcript(), b"hi");
    }

    #[test]
    fn device_routing() {
        let mut d = Devices::new(7);
        d.write(CLINT_MTIMECMP, 99);
        assert_eq!(d.read(CLINT_MTIMECMP, 0), 99);
        assert_eq!(d.read(UART_STATUS, 0), 0x60);
        assert_eq!(d.read(0x3000_0000, 0), 0);
    }

    #[test]
    fn software_interrupt_bit() {
        let mut c = Clint::new();
        assert!(!c.software_pending());
        c.write(CLINT_MSIP, 1);
        assert!(c.software_pending());
        c.write(CLINT_MSIP, 0);
        assert!(!c.software_pending());
    }
}
