//! Memory-hierarchy models: caches, TLBs and the store buffer.
//!
//! These models carry real tag state — hits and misses depend on the actual
//! access stream — and produce the memory-hierarchy verification events of
//! the catalog (refills, TLB fills, sbuffer flushes, page-table walks).

use difftest_ref::Memory;
use serde::{Deserialize, Serialize};

const LINE_BYTES: u64 = 64;

/// A direct-mapped cache tag array (64-byte lines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    tags: Vec<u64>,
    valid: Vec<bool>,
    index_mask: u64,
}

impl Cache {
    /// Creates a cache with `lines` lines (rounded up to a power of two).
    pub fn new(lines: usize) -> Self {
        let lines = lines.next_power_of_two().max(2);
        Cache {
            tags: vec![0; lines],
            valid: vec![false; lines],
            index_mask: lines as u64 - 1,
        }
    }

    /// Accesses `addr`; returns `true` on a hit. A miss installs the line.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let idx = (line & self.index_mask) as usize;
        let tag = line >> self.index_mask.trailing_ones();
        if self.valid[idx] && self.tags[idx] == tag {
            true
        } else {
            self.valid[idx] = true;
            self.tags[idx] = tag;
            false
        }
    }

    /// The line-aligned address of `addr`.
    pub fn line_addr(addr: u64) -> u64 {
        addr & !(LINE_BYTES - 1)
    }

    /// Reads a full line from memory as eight 64-bit beats (refill data).
    pub fn read_line(mem: &Memory, addr: u64) -> [u64; 8] {
        let base = Self::line_addr(addr);
        let mut beats = [0u64; 8];
        for (i, beat) in beats.iter_mut().enumerate() {
            *beat = mem.read(base + 8 * i as u64, 8);
        }
        beats
    }
}

/// A direct-mapped TLB over 4 KiB pages.
///
/// The project runs with `satp = 0` (bare translation), so fills map each
/// virtual page number to an identical physical page number — an invariant
/// the checker verifies on every TLB event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    vpns: Vec<u64>,
    valid: Vec<bool>,
    index_mask: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` entries (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        let entries = entries.next_power_of_two().max(2);
        Tlb {
            vpns: vec![0; entries],
            valid: vec![false; entries],
            index_mask: entries as u64 - 1,
            misses: 0,
        }
    }

    /// Looks up the page of `addr`; returns `Some(vpn)` on a miss (a fill
    /// event should be emitted), `None` on a hit.
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let vpn = addr >> 12;
        let idx = (vpn & self.index_mask) as usize;
        if self.valid[idx] && self.vpns[idx] == vpn {
            None
        } else {
            self.valid[idx] = true;
            self.vpns[idx] = vpn;
            self.misses += 1;
            Some(vpn)
        }
    }

    /// Total misses so far (drives second-level TLB / PTW event pacing).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// A flush record produced when the store buffer drains a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbufferFlush {
    /// Line-aligned address.
    pub addr: u64,
    /// The accumulated line image.
    pub data: [u8; 64],
    /// Byte-enable mask of the accumulated stores.
    pub mask: u64,
}

/// A single-line store buffer that coalesces stores and flushes on a line
/// change.
#[derive(Debug, Clone)]
pub struct Sbuffer {
    line_addr: Option<u64>,
    data: [u8; 64],
    mask: u64,
}

impl Default for Sbuffer {
    fn default() -> Self {
        Sbuffer {
            line_addr: None,
            data: [0; 64],
            mask: 0,
        }
    }
}

impl Sbuffer {
    /// Creates an empty store buffer.
    pub fn new() -> Self {
        Sbuffer::default()
    }

    /// Accepts a store; returns a flush record when the store targets a
    /// different line than the one being coalesced.
    pub fn store(&mut self, addr: u64, len: u8, value: u64) -> Option<SbufferFlush> {
        let line = Cache::line_addr(addr);
        let flushed = match self.line_addr {
            Some(cur) if cur != line => self.flush(),
            _ => None,
        };
        if self.line_addr != Some(line) {
            self.line_addr = Some(line);
            self.data = [0; 64];
            self.mask = 0;
        }
        let off = (addr - line) as usize;
        for i in 0..len as usize {
            if off + i < 64 {
                self.data[off + i] = (value >> (8 * i)) as u8;
                self.mask |= 1 << (off + i);
            }
        }
        flushed
    }

    /// Drains the buffered line, if any.
    pub fn flush(&mut self) -> Option<SbufferFlush> {
        let addr = self.line_addr.take()?;
        let f = SbufferFlush {
            addr,
            data: self.data,
            mask: self.mask,
        };
        self.data = [0; 64];
        self.mask = 0;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_miss_then_hit() {
        let mut c = Cache::new(64);
        assert!(!c.access(0x8000_0000));
        assert!(c.access(0x8000_0000));
        assert!(c.access(0x8000_0038)); // same line
        assert!(!c.access(0x8000_0040)); // next line
    }

    #[test]
    fn cache_conflict_eviction() {
        let mut c = Cache::new(2);
        assert!(!c.access(0x8000_0000));
        // Same index, different tag: evicts.
        assert!(!c.access(0x8000_0000 + 2 * 64));
        assert!(!c.access(0x8000_0000));
    }

    #[test]
    fn line_read() {
        let mut mem = Memory::new();
        mem.write(0x8000_0040, 8, 0xdead);
        let beats = Cache::read_line(&mem, 0x8000_0044);
        assert_eq!(beats[0], 0xdead);
        assert_eq!(beats[1], 0);
    }

    #[test]
    fn tlb_identity_fills() {
        let mut t = Tlb::new(16);
        assert_eq!(t.access(0x8000_1000), Some(0x80001));
        assert_eq!(t.access(0x8000_1fff), None);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn sbuffer_coalesces_and_flushes() {
        let mut s = Sbuffer::new();
        assert!(s.store(0x8000_0000, 8, 0x1122_3344_5566_7788).is_none());
        assert!(s.store(0x8000_0008, 4, 0xaabbccdd).is_none());
        // New line: flushes the old one.
        let f = s.store(0x8000_0040, 1, 0xff).unwrap();
        assert_eq!(f.addr, 0x8000_0000);
        assert_eq!(f.mask, 0x0fff);
        assert_eq!(f.data[0], 0x88);
        assert_eq!(f.data[8], 0xdd);
        // Explicit drain returns the new line.
        let f2 = s.flush().unwrap();
        assert_eq!(f2.addr, 0x8000_0040);
        assert_eq!(f2.mask, 1);
        assert!(s.flush().is_none());
    }
}
