//! The design under test: a cycle-level, multi-wide-commit processor model
//! with devices, memory hierarchy, monitor probes and bug injection.
//!
//! In the paper the DUT is the XiangShan RTL running on an emulator or
//! FPGA. The communication layer under study only observes the DUT through
//! its *verification event stream*, so this crate substitutes a cycle-level
//! Rust model that produces the same stream (see `DESIGN.md` §1): per-cycle
//! commit groups, register/CSR state dumps, memory and hierarchy events,
//! and — crucially — the two classes of non-determinism that make
//! co-simulation hard: cycle-timed CLINT interrupts and device-dependent
//! MMIO load values.
//!
//! - [`DutConfig`]: NutShell / XiangShan-minimal / -default / -dual presets
//!   (paper Tables 3/4),
//! - [`Dut`] / [`DutCore`]: the model itself,
//! - [`BugSpec`] / [`BugKind`] / [`bug_catalog`]: the 19-entry injectable
//!   fault catalog mirroring Table 6,
//! - [`device`] / [`cache`]: CLINT, UART, caches, TLBs, store buffer.
//!
//! # Examples
//!
//! ```
//! use difftest_dut::{Dut, DutConfig};
//! use difftest_isa::{encode, Reg};
//! use difftest_ref::Memory;
//!
//! let mut image = Memory::new();
//! image.load_words(Memory::RAM_BASE, &[
//!     encode::addi(Reg::A0, Reg::ZERO, 0),
//!     encode::ebreak(), // good trap
//! ]);
//! let mut dut = Dut::new(DutConfig::nutshell(), &image, Vec::new());
//! dut.run_to_halt(1_000);
//! assert!(dut.halted().expect("halts").good);
//! ```

#![warn(missing_docs)]

pub mod bugs;
pub mod cache;
mod config;
mod core;
pub mod device;
mod dut;
mod pipeline;

pub use bugs::{bug_catalog, BugInjector, BugKind, BugSpec, Hook};
pub use config::{DutConfig, EventPolicy, PipelineParams, SlotTable};
pub use core::DutCore;
pub use dut::{CycleOutput, CycleSummary, Dut, HaltInfo};
pub use pipeline::{mix, StallModel};
