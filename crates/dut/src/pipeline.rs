//! Deterministic pseudo-random stall model shaping commit density.
//!
//! Microarchitectural stalls that our commit-level model does not simulate
//! structurally (rename stalls, issue-queue conflicts, L2 misses, ...) are
//! approximated by deterministic hash-based draws, so two runs of the same
//! configuration and workload produce identical cycle-by-cycle behaviour.

use serde::{Deserialize, Serialize};

use crate::config::PipelineParams;

/// SplitMix64-style avalanche mix of two words.
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stall decisions derived from [`PipelineParams`] and a per-core seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StallModel {
    params: PipelineParams,
    seed: u64,
}

impl StallModel {
    /// Creates a stall model for one core.
    pub fn new(params: PipelineParams, seed: u64) -> Self {
        StallModel { params, seed }
    }

    #[inline]
    fn draw_ppm(&self, cycle: u64, salt: u64) -> u32 {
        (mix(self.seed ^ salt, cycle) % 1_000_000) as u32
    }

    /// The front end delivers nothing this cycle.
    #[inline]
    pub fn frontend_stall(&self, cycle: u64) -> bool {
        self.draw_ppm(cycle, 0x1) < self.params.frontend_stall_ppm
    }

    /// An additional long-latency miss (beyond the modelled L1) hits this
    /// load; returns the stall penalty if so.
    #[inline]
    pub fn l2_miss_penalty(&self, cycle: u64, addr: u64) -> Option<u32> {
        if self.draw_ppm(cycle, addr) < self.params.dcache_miss_ppm {
            Some(self.params.miss_penalty)
        } else {
            None
        }
    }

    /// Penalty charged for an L1 miss that the structural cache model found.
    #[inline]
    pub fn l1_miss_penalty(&self) -> u32 {
        self.params.miss_penalty / 2
    }

    /// The commit group ends after the `nth` commit of this cycle.
    #[inline]
    pub fn group_break(&self, cycle: u64, nth: u32) -> bool {
        self.draw_ppm(cycle.wrapping_mul(8).wrapping_add(nth as u64), 0x6b)
            < self.params.group_break_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PipelineParams {
        PipelineParams {
            frontend_stall_ppm: 250_000,
            dcache_miss_ppm: 50_000,
            miss_penalty: 8,
            icache_miss_ppm: 8_000,
            group_break_ppm: 0,
        }
    }

    #[test]
    fn deterministic() {
        let a = StallModel::new(params(), 7);
        let b = StallModel::new(params(), 7);
        for c in 0..1000 {
            assert_eq!(a.frontend_stall(c), b.frontend_stall(c));
            assert_eq!(
                a.l2_miss_penalty(c, 0x8000_0000),
                b.l2_miss_penalty(c, 0x8000_0000)
            );
        }
    }

    #[test]
    fn stall_rate_tracks_ppm() {
        let m = StallModel::new(params(), 42);
        let stalls = (0..100_000).filter(|c| m.frontend_stall(*c)).count();
        let rate = stalls as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = StallModel::new(params(), 1);
        let b = StallModel::new(params(), 2);
        let disagreements = (0..10_000)
            .filter(|c| a.frontend_stall(*c) != b.frontend_stall(*c))
            .count();
        assert!(disagreements > 1000);
    }
}
