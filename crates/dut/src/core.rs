//! The cycle-level model of one DUT core.
//!
//! Each core owns its own architectural state, memory image, devices and
//! memory-hierarchy models, and commits up to `commit_width` instructions
//! per cycle under a deterministic stall model. Instruction *semantics*
//! reuse the pure executor of `difftest-ref` (see `DESIGN.md` §1 — in the
//! paper the DUT is RTL; here the microarchitectural wrapper plus the
//! bug-injection framework provide the divergence that co-simulation must
//! detect), while every architectural side effect flows through the monitor
//! as verification events.

use difftest_event::{
    commit_flags, ArchEvent, ArchFpRegState, ArchIntRegState, ArchVecRegState, AtomicEvent,
    CsrState, DebugModeState, Event, EventKind, FpCsrUpdate, FpWriteback, HCsrUpdate,
    HypervisorCsrState, InstrCommit, IntWriteback, L1TlbEvent, L2TlbEvent, LoadEvent, LrScEvent,
    OrderTag, PtwEvent, Redirect, RefillEvent, RunaheadEvent, StoreEvent, TrapEvent,
    TriggerCsrState, VecConfig, VecCsrState,
};
use difftest_isa::csr::{mi, mstatus, CsrIndex, CSR_COUNT};
use difftest_isa::trap::{Interrupt, Trap};
use difftest_isa::{decode, Insn, Op};
use difftest_ref::exec::{execute, Effect};
use difftest_ref::{ArchState, Memory};

use crate::bugs::BugInjector;
use crate::cache::{Cache, Sbuffer, Tlb};
use crate::config::DutConfig;
use crate::device::Devices;
use crate::pipeline::StallModel;

/// Extends a raw MMIO device value the way the load instruction would.
fn mmio_extend(op: Op, raw: u64) -> u64 {
    match op {
        Op::Lb => raw as u8 as i8 as i64 as u64,
        Op::Lh => raw as u16 as i16 as i64 as u64,
        Op::Lw => raw as u32 as i32 as i64 as u64,
        Op::Lbu => raw as u8 as u64,
        Op::Lhu => raw as u16 as u64,
        Op::Lwu => raw as u32 as u64,
        _ => raw,
    }
}

/// Per-cycle event-slot budget: hardware provisions a fixed number of
/// instances per event type per cycle, and the commit group must end when a
/// required slot would overflow.
#[derive(Debug)]
struct CycleBudget {
    used: [u8; EventKind::COUNT],
}

impl CycleBudget {
    fn new() -> Self {
        CycleBudget {
            used: [0; EventKind::COUNT],
        }
    }

    fn available(&self, cfg: &DutConfig, kind: EventKind) -> bool {
        self.used[kind as usize] < cfg.slots.slots(kind)
    }

    fn take(&mut self, kind: EventKind) {
        self.used[kind as usize] += 1;
    }
}

/// One core of the design under test.
#[derive(Debug, Clone)]
pub struct DutCore {
    id: u8,
    cfg: DutConfig,
    state: ArchState,
    mem: Memory,
    dev: Devices,
    icache: Cache,
    dcache: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    sbuffer: Sbuffer,
    stalls: StallModel,
    injector: BugInjector,
    /// Commit sequence number of the next instruction to commit.
    seq: u64,
    stall: u32,
    halt: Option<TrapEvent>,
    commit_cycles: u64,
    fp_dirty: bool,
    vec_dirty: bool,
}

impl DutCore {
    /// Creates a core over a private copy of the program image.
    pub fn new(id: u8, cfg: DutConfig, mem: Memory, injector: BugInjector) -> Self {
        let stalls = StallModel::new(cfg.pipeline, 0xd1f7_0000 + id as u64);
        DutCore {
            id,
            cfg,
            state: ArchState::new(Memory::RAM_BASE),
            mem,
            dev: Devices::new(0xc0ffee ^ id as u64),
            icache: Cache::new(512),
            dcache: Cache::new(512),
            itlb: Tlb::new(32),
            dtlb: Tlb::new(32),
            sbuffer: Sbuffer::new(),
            stalls,
            injector,
            seq: 0,
            stall: 0,
            halt: None,
            commit_cycles: 0,
            fp_dirty: false,
            vec_dirty: false,
        }
    }

    /// The core's identifier.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// The core's architectural state (tests, debugging reports).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The core's memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The device complex (UART transcript inspection).
    pub fn devices(&self) -> &Devices {
        &self.dev
    }

    /// The terminating trap, once the core has halted.
    pub fn halt(&self) -> Option<&TrapEvent> {
        self.halt.as_ref()
    }

    /// Commit sequence number of the next instruction.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Returns `true` once any injected bug has fired.
    pub fn bugs_fired(&self) -> bool {
        self.injector.any_fired()
    }

    /// Runs one cycle, appending `(order, event)` pairs to `out`.
    /// Returns the number of instructions committed.
    pub fn tick(&mut self, cycle: u64, out: &mut Vec<(OrderTag, Event)>) -> u32 {
        self.dev.tick();
        if self.halt.is_some() {
            return 0;
        }
        if self.stall > 0 {
            self.stall -= 1;
            return 0;
        }

        let mut budget = CycleBudget::new();

        // Asynchronous interrupts are sampled at cycle boundaries. They are
        // DUT-timing-specific (the CLINT counts cycles), hence NDEs the
        // checker must replay into the REF before instruction `seq`.
        if let Some(intr) = self.pending_interrupt() {
            self.emit(
                out,
                &mut budget,
                self.seq,
                ArchEvent {
                    pc: self.state.pc(),
                    cause: intr.cause(),
                    tval: 0,
                    is_interrupt: 1,
                }
                .into(),
            );
            self.trap_entry(Trap::Interrupt(intr));
            self.stall = 3; // redirect penalty
            return 0;
        }

        if self.stalls.frontend_stall(cycle) {
            return 0;
        }

        let mut committed = 0u32;
        while committed < self.cfg.commit_width {
            if !budget.available(&self.cfg, EventKind::InstrCommit) {
                break;
            }
            let pc = self.state.pc();

            // Front-end: i-TLB and i-cache.
            let fetch_miss = self.fetch_access(pc, cycle, out, &mut budget);
            let insn = decode(self.mem.fetch(pc));

            if insn.op == Op::Ebreak {
                // Simulation-terminating trap: good when a0 == 0.
                let code = (self.state.xreg(difftest_isa::Reg::A0) != 0) as u8;
                let trap = TrapEvent {
                    pc,
                    code,
                    has_trap: 1,
                    cycle,
                };
                self.emit(out, &mut budget, self.seq, trap.clone().into());
                self.halt = Some(trap);
                return committed;
            }

            // Pre-check slot budget for the event classes this instruction
            // must emit (hardware backpressure ends the commit group).
            if !self.budget_allows(&budget, &insn) {
                break;
            }

            let mut effect = execute(&self.state, &self.mem, &insn);

            if let Some(trap) = effect.trap {
                // Synchronous exception: the instruction does not commit.
                self.emit(
                    out,
                    &mut budget,
                    self.seq,
                    ArchEvent {
                        pc,
                        cause: trap.mcause(),
                        tval: trap.mtval(),
                        is_interrupt: 0,
                    }
                    .into(),
                );
                self.trap_entry(trap);
                self.stall = 2;
                return committed;
            }

            // MMIO resolution: device reads/writes happen here, making the
            // value timing-dependent (NDE).
            let mmio = effect.mmio;
            if mmio {
                self.resolve_mmio(&insn, &mut effect, cycle);
            }

            self.injector
                .perturb_effect(self.seq, &mut effect, &self.mem);

            let group_end = self.apply_and_emit(&insn, &effect, mmio, cycle, out, &mut budget);
            committed += 1;
            self.seq += 1;

            if group_end || fetch_miss || self.stalls.group_break(cycle, committed) {
                break;
            }
        }

        if committed > 0 {
            self.commit_cycles += 1;
            self.injector.perturb_state(self.seq, &mut self.state);
            if self
                .commit_cycles
                .is_multiple_of(self.cfg.policy.state_dump_period as u64)
            {
                self.emit_state_dumps(out, &mut budget);
            }
        }
        committed
    }

    fn pending_interrupt(&self) -> Option<Interrupt> {
        let status = self.state.csr(CsrIndex::Mstatus);
        if status & mstatus::MIE == 0 {
            return None;
        }
        let mie = self.state.csr(CsrIndex::Mie);
        if self.dev.clint.timer_pending() && mie & mi::MTI != 0 {
            Some(Interrupt::MachineTimer)
        } else if self.dev.clint.software_pending() && mie & mi::MSI != 0 {
            Some(Interrupt::MachineSoftware)
        } else {
            None
        }
    }

    /// Resolves an MMIO load against the devices: the observed value is
    /// timing-dependent, which is exactly why it must be forwarded to the
    /// checker as a non-deterministic event.
    fn resolve_mmio(&mut self, insn: &Insn, effect: &mut Effect, cycle: u64) {
        if let Some(m) = effect.memr {
            let raw = self.dev.read(m.addr, cycle);
            let v = mmio_extend(insn.op, raw);
            if insn.op.writes_fp_rd() {
                effect.fw = Some((insn.frd(), v));
            } else if insn.op.writes_int_rd() {
                effect.xw = Some((insn.rd, v));
            }
        }
        // MMIO stores are routed to the devices at apply time.
    }

    /// Performs machine-mode trap entry on the DUT state, with bug hooks.
    fn trap_entry(&mut self, trap: Trap) {
        let mut mepc = self.state.pc();
        let mut mcause = trap.mcause();
        let mut mtval = trap.mtval();
        let status = self.state.csr(CsrIndex::Mstatus);
        let mut new_status = status;
        if status & mstatus::MIE != 0 {
            new_status |= mstatus::MPIE;
        } else {
            new_status &= !mstatus::MPIE;
        }
        new_status &= !mstatus::MIE;
        new_status = (new_status & !mstatus::MPP_MASK) | (0b11 << mstatus::MPP_SHIFT);

        let extra_off = self.injector.perturb_trap_entry(
            self.seq,
            &mut mepc,
            &mut mcause,
            &mut mtval,
            &mut new_status,
        );

        self.state.set_csr(CsrIndex::Mepc, mepc);
        self.state.set_csr(CsrIndex::Mcause, mcause);
        self.state.set_csr(CsrIndex::Mtval, mtval);
        self.state.set_csr(CsrIndex::Mstatus, new_status);
        let target = (self.state.csr(CsrIndex::Mtvec) & !0b11).wrapping_add(extra_off);
        self.state.set_pc(target);
    }

    /// Front-end access: returns `true` when the fetch missed the i-cache
    /// (ends the commit group with a penalty).
    fn fetch_access(
        &mut self,
        pc: u64,
        _cycle: u64,
        out: &mut Vec<(OrderTag, Event)>,
        budget: &mut CycleBudget,
    ) -> bool {
        if self.cfg.policy.hierarchy {
            if let Some(vpn) = self.itlb.access(pc) {
                self.emit_hierarchy_fill(out, budget, vpn, 2);
            }
        }
        if !self.icache.access(pc) {
            if self.cfg.policy.hierarchy && budget.available(&self.cfg, EventKind::RefillEvent) {
                let mut ev: Event = RefillEvent {
                    addr: Cache::line_addr(pc),
                    data: Cache::read_line(&self.mem, pc),
                    refill_type: 1,
                }
                .into();
                self.injector.perturb_event(self.seq, &mut ev);
                budget.take(EventKind::RefillEvent);
                out.push((OrderTag(self.seq), ev));
            }
            self.stall = self.stall.max(1);
            return true;
        }
        false
    }

    /// Emits L1 TLB fill plus (paced) L2 TLB / PTW events.
    fn emit_hierarchy_fill(
        &mut self,
        out: &mut Vec<(OrderTag, Event)>,
        budget: &mut CycleBudget,
        vpn: u64,
        source: u8,
    ) {
        let satp = self.state.csr(CsrIndex::Satp);
        self.emit(
            out,
            budget,
            self.seq,
            L1TlbEvent {
                satp,
                vpn,
                ppn: vpn, // bare translation: identity mapping
                valid: 1,
            }
            .into(),
        );
        // Every fourth miss escalates to the L2 TLB and a page walk.
        let misses = self.itlb.misses() + self.dtlb.misses();
        if misses.is_multiple_of(4) {
            self.emit(
                out,
                budget,
                self.seq,
                L2TlbEvent {
                    valid: 1,
                    vpn,
                    pte_idx: (vpn % 6) as u8,
                    ppns: [vpn, vpn + 1, vpn + 2, vpn + 3, vpn + 4, vpn + 5],
                    perm: 0xf,
                }
                .into(),
            );
            self.emit(
                out,
                budget,
                self.seq,
                PtwEvent {
                    vpn,
                    levels: [vpn >> 27, vpn >> 18, vpn >> 9, vpn],
                    pf: 0,
                    source,
                }
                .into(),
            );
        }
    }

    /// Conservative pre-check that the slots this instruction's mandatory
    /// events need are still free this cycle.
    fn budget_allows(&self, budget: &CycleBudget, insn: &Insn) -> bool {
        let cfg = &self.cfg;
        if insn.op.is_load()
            && cfg.policy.port_events
            && !budget.available(cfg, EventKind::LoadEvent)
        {
            return false;
        }
        if insn.op.is_store()
            && cfg.slots.slots(EventKind::StoreEvent) > 0
            && !budget.available(cfg, EventKind::StoreEvent)
        {
            return false;
        }
        if insn.op.is_atomic()
            && cfg.policy.port_events
            && !budget.available(cfg, EventKind::AtomicEvent)
        {
            return false;
        }
        true
    }

    /// Applies the (possibly perturbed) effect and emits this commit's
    /// events. Returns `true` when the commit group must end (taken
    /// control flow, serialization, MMIO, d-cache miss).
    fn apply_and_emit(
        &mut self,
        insn: &Insn,
        effect: &Effect,
        mmio: bool,
        cycle: u64,
        out: &mut Vec<(OrderTag, Event)>,
        budget: &mut CycleBudget,
    ) -> bool {
        let cfg_port = self.cfg.policy.port_events;
        let pc = self.state.pc();
        let seq = self.seq;
        let mut group_end = false;
        // Source operands as read at execute time (the effect application
        // below may overwrite rs1/rs2 when rd aliases them).
        let src_rs1 = self.state.xreg(insn.rs1);
        let src_rs2 = self.state.xreg(insn.rs2);

        // ---- apply architectural effect --------------------------------
        if let Some((r, v)) = effect.xw {
            self.state.set_xreg(r, v);
        }
        if let Some((r, v)) = effect.fw {
            self.state.set_freg(r, v);
            self.fp_dirty = true;
        }
        for (c, v) in effect.csrw.iter().flatten() {
            self.state.set_csr(*c, *v);
            match c {
                CsrIndex::Fcsr => self.fp_dirty = true,
                CsrIndex::Vstart
                | CsrIndex::Vxsat
                | CsrIndex::Vxrm
                | CsrIndex::Vcsr
                | CsrIndex::Vl
                | CsrIndex::Vtype => self.vec_dirty = true,
                _ => {}
            }
        }
        if let Some(new) = effect.set_reservation {
            self.state.set_reservation(new);
        }
        if let Some(w) = effect.memw {
            if Memory::is_mmio(w.addr) {
                self.dev.write(w.addr, w.value);
            } else {
                self.mem.write(w.addr, w.len as usize, w.value);
            }
        }
        self.state.set_pc(effect.next_pc);
        let instret = self.state.instret() + 1;
        self.state.set_instret(instret);

        // ---- commit event ----------------------------------------------
        let mut flags = 0u8;
        if mmio {
            flags |= commit_flags::SKIP;
        }
        if insn.op.is_load() {
            flags |= commit_flags::LOAD;
        }
        if insn.op.is_store() {
            flags |= commit_flags::STORE;
        }
        if effect.branch_taken {
            flags |= commit_flags::BRANCH_TAKEN;
        }
        // Non-deterministic MMIO loads are emitted *before* their commit:
        // the hardware schedules NDEs ahead (paper §4.3), which also
        // guarantees the checker sees the observed value before any fusion
        // window containing the commit can close.
        if mmio && insn.op.is_load() && !insn.op.is_atomic() {
            let value = effect.xw.map(|(_, v)| v).or(effect.fw.map(|(_, v)| v));
            self.emit(
                out,
                budget,
                seq,
                LoadEvent {
                    pc,
                    addr: effect.memr.map_or(0, |m| m.addr),
                    data: value.unwrap_or(0),
                    len: effect.memr.map_or(0, |m| m.len),
                    is_mmio: 1,
                    fu_type: 0,
                    op_type: 0,
                }
                .into(),
            );
            group_end = true; // MMIO serializes
        }

        let (wen, wdest, wdata) = match (effect.xw, effect.fw) {
            (Some((r, v)), _) => (1u8, r.index() as u8, v),
            (None, Some((r, v))) => {
                flags |= commit_flags::FP_WEN;
                (1u8, r.index() as u8, v)
            }
            (None, None) => (0u8, 0u8, 0u64),
        };
        self.emit(
            out,
            budget,
            seq,
            InstrCommit {
                pc,
                instr: insn.raw,
                wen,
                wdest,
                wdata,
                flags,
                rob_idx: (seq % 192) as u16,
            }
            .into(),
        );

        // ---- port-level events ------------------------------------------
        if cfg_port {
            if let Some((r, v)) = effect.xw {
                self.emit(
                    out,
                    budget,
                    seq,
                    IntWriteback {
                        idx: r.index() as u8,
                        data: v,
                    }
                    .into(),
                );
            }
            if let Some((r, v)) = effect.fw {
                self.emit(
                    out,
                    budget,
                    seq,
                    FpWriteback {
                        idx: r.index() as u8,
                        data: v,
                    }
                    .into(),
                );
            }
        }

        // ---- memory events ----------------------------------------------
        if insn.op.is_load() && !insn.op.is_atomic() {
            if mmio {
                // Emitted ahead of the commit above.
            } else if cfg_port {
                if let Some(m) = effect.memr {
                    let value = effect.xw.map(|(_, v)| v).or(effect.fw.map(|(_, v)| v));
                    self.emit(
                        out,
                        budget,
                        seq,
                        LoadEvent {
                            pc,
                            addr: m.addr,
                            data: value.unwrap_or(0),
                            len: m.len,
                            is_mmio: 0,
                            fu_type: 0,
                            op_type: 1,
                        }
                        .into(),
                    );
                }
            }
        }

        if let Some(w) = effect.memw {
            if Memory::is_mmio(w.addr) {
                group_end = true; // MMIO store serializes
            } else if insn.op.is_atomic() {
                if cfg_port {
                    let out_v = effect.xw.map_or(0, |(_, v)| v);
                    self.emit(
                        out,
                        budget,
                        seq,
                        AtomicEvent {
                            addr: w.addr,
                            data: w.value,
                            mask: ((1u16 << w.len) - 1) as u8,
                            out: out_v,
                            fu_op: insn.op as u8,
                        }
                        .into(),
                    );
                }
            } else {
                let base = w.addr & !7;
                let off = (w.addr - base) as u32;
                let mask = (((1u16 << w.len) - 1) as u8) << off;
                self.emit(
                    out,
                    budget,
                    seq,
                    StoreEvent {
                        addr: base,
                        data: w.value << (8 * off),
                        mask,
                    }
                    .into(),
                );
                if self.cfg.slots.slots(EventKind::SbufferEvent) > 0 {
                    if let Some(f) = self.sbuffer.store(w.addr, w.len, w.value) {
                        self.emit(
                            out,
                            budget,
                            seq,
                            difftest_event::SbufferEvent {
                                addr: f.addr,
                                data: f.data,
                                mask: f.mask,
                            }
                            .into(),
                        );
                    }
                }
            }
        }

        // SC completion (success or failure) reports the reservation check.
        if matches!(insn.op, Op::ScW | Op::ScD) && cfg_port {
            let success = effect.xw.map_or(0, |(_, v)| (v == 0) as u8);
            self.emit(
                out,
                budget,
                seq,
                LrScEvent {
                    valid: 1,
                    success,
                    addr: src_rs1,
                    data: src_rs2,
                }
                .into(),
            );
        }

        // ---- d-side hierarchy -------------------------------------------
        if let Some(m) = effect
            .memr
            .or(effect.memw.map(|w| difftest_ref::exec::MemRead {
                addr: w.addr,
                len: w.len,
            }))
        {
            if !Memory::is_mmio(m.addr) {
                if self.cfg.policy.hierarchy {
                    if let Some(vpn) = self.dtlb.access(m.addr) {
                        self.emit_hierarchy_fill(out, budget, vpn, insn.op.is_store() as u8);
                    }
                }
                if !self.dcache.access(m.addr) {
                    if self.cfg.policy.hierarchy
                        && budget.available(&self.cfg, EventKind::RefillEvent)
                    {
                        let mut ev: Event = RefillEvent {
                            addr: Cache::line_addr(m.addr),
                            data: Cache::read_line(&self.mem, m.addr),
                            refill_type: 0,
                        }
                        .into();
                        self.injector.perturb_event(seq, &mut ev);
                        budget.take(EventKind::RefillEvent);
                        out.push((OrderTag(seq), ev));
                    }
                    self.stall = self.stall.max(self.stalls.l1_miss_penalty());
                    group_end = true;
                } else if insn.op.is_load() {
                    if let Some(penalty) = self.stalls.l2_miss_penalty(cycle, m.addr) {
                        self.stall = self.stall.max(penalty);
                        group_end = true;
                    }
                }
            }
        }

        // ---- control flow -----------------------------------------------
        if effect.branch_taken || matches!(insn.op, Op::Jal | Op::Jalr | Op::Mret) {
            self.emit(
                out,
                budget,
                seq,
                Redirect {
                    pc,
                    target: effect.next_pc,
                    taken: effect.branch_taken as u8,
                    branch_type: if insn.op.is_branch() { 0 } else { 1 },
                }
                .into(),
            );
            self.emit(
                out,
                budget,
                seq,
                RunaheadEvent {
                    valid: 1,
                    checkpoint_id: (seq & 0xffff) as u16,
                }
                .into(),
            );
            group_end = true;
        }

        // ---- CSR-derived extension events -------------------------------
        if insn.op.is_csr() {
            group_end = true; // CSR ops serialize the pipeline
            if let Some((c, v)) = effect.csrw[0] {
                match c {
                    CsrIndex::Fcsr => {
                        self.emit(
                            out,
                            budget,
                            seq,
                            FpCsrUpdate {
                                fflags: (v & 0x1f) as u8,
                                frm: ((v >> 5) & 0x7) as u8,
                                data: v,
                            }
                            .into(),
                        );
                    }
                    CsrIndex::Hstatus | CsrIndex::Hedeleg => {
                        self.emit(
                            out,
                            budget,
                            seq,
                            HCsrUpdate {
                                addr: c.address(),
                                data: v,
                                virt: 0,
                            }
                            .into(),
                        );
                    }
                    CsrIndex::Vl | CsrIndex::Vtype => {
                        self.emit(
                            out,
                            budget,
                            seq,
                            VecConfig {
                                vl: self.state.csr(CsrIndex::Vl),
                                vtype: self.state.csr(CsrIndex::Vtype),
                                set_by: 0,
                            }
                            .into(),
                        );
                    }
                    _ => {}
                }
            }
        }
        if insn.op == Op::Mret {
            group_end = true;
        }

        group_end
    }

    /// Emits the periodic architectural state dumps.
    fn emit_state_dumps(&mut self, out: &mut Vec<(OrderTag, Event)>, budget: &mut CycleBudget) {
        let seq = self.seq;
        self.emit(
            out,
            budget,
            seq,
            ArchIntRegState {
                regs: *self.state.xregs(),
            }
            .into(),
        );
        let mut csrs = [0u64; CSR_COUNT];
        csrs.copy_from_slice(self.state.csrs());
        self.emit(out, budget, seq, CsrState { csrs }.into());
        let p = self.cfg.policy;
        if p.fp_state {
            self.emit(
                out,
                budget,
                seq,
                ArchFpRegState {
                    regs: *self.state.fregs(),
                }
                .into(),
            );
        }
        if p.vec_state {
            self.emit(out, budget, seq, ArchVecRegState { regs: [0; 64] }.into());
            self.emit(
                out,
                budget,
                seq,
                VecCsrState {
                    vstart: self.state.csr(CsrIndex::Vstart),
                    vl: self.state.csr(CsrIndex::Vl),
                    vtype: self.state.csr(CsrIndex::Vtype),
                    vcsr: self.state.csr(CsrIndex::Vcsr),
                    vlenb: 16,
                    vill: 0,
                }
                .into(),
            );
        }
        if p.ext_csr_state {
            self.emit(
                out,
                budget,
                seq,
                HypervisorCsrState {
                    csrs: {
                        let mut h = [0u64; 11];
                        h[0] = self.state.csr(CsrIndex::Hstatus);
                        h[1] = self.state.csr(CsrIndex::Hedeleg);
                        h
                    },
                    virt_mode: 0,
                }
                .into(),
            );
            self.emit(out, budget, seq, TriggerCsrState::default().into());
            self.emit(out, budget, seq, DebugModeState::default().into());
        }
    }

    /// Pushes an event if the configuration provisions slots for its kind
    /// and the cycle budget allows, applying event-hook bug perturbation.
    fn emit(
        &mut self,
        out: &mut Vec<(OrderTag, Event)>,
        budget: &mut CycleBudget,
        seq: u64,
        mut event: Event,
    ) {
        let kind = event.kind();
        if self.cfg.slots.slots(kind) == 0 || !budget.available(&self.cfg, kind) {
            return;
        }
        self.injector.perturb_event(seq, &mut event);
        budget.take(kind);
        out.push((OrderTag(seq), event));
    }
}
