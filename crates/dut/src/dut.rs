//! The multi-core design under test with its monitor wrapper.

use difftest_event::{Event, MonitoredEvent, OrderTag, Token, TrapEvent};
use difftest_ref::Memory;

use crate::bugs::{BugInjector, BugSpec};
use crate::config::DutConfig;
use crate::core::DutCore;

/// Why the simulation stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaltInfo {
    /// The core that executed the terminating trap.
    pub core: u8,
    /// `true` for a good trap (`ebreak` with `a0 == 0`).
    pub good: bool,
    /// PC of the trap.
    pub pc: u64,
    /// Cycle at which the trap fired.
    pub cycle: u64,
}

/// Everything one DUT cycle produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleOutput {
    /// The cycle index.
    pub cycle: u64,
    /// Monitored events in capture (token) order.
    pub events: Vec<MonitoredEvent>,
    /// Instructions committed across all cores.
    pub commits: u32,
}

/// The scalar part of one DUT cycle (events are appended to a caller
/// buffer by [`Dut::tick_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSummary {
    /// The cycle index.
    pub cycle: u64,
    /// Instructions committed across all cores.
    pub commits: u32,
}

/// The design under test: one or more [`DutCore`]s plus the monitor that
/// stamps captured events with cycle, order tag and replay token.
/// Cloning captures a full snapshot (the prior-work debugging strategy the
/// paper's Replay replaces — see `difftest_core::snapshot`).
#[derive(Debug, Clone)]
pub struct Dut {
    cfg: DutConfig,
    cores: Vec<DutCore>,
    cycle: u64,
    next_token: u64,
    halted: Option<HaltInfo>,
    total_commits: u64,
    scratch: Vec<(OrderTag, Event)>,
}

impl Dut {
    /// Creates a DUT over copies of the program image, injecting `bugs`
    /// into core 0.
    pub fn new(cfg: DutConfig, image: &Memory, bugs: Vec<BugSpec>) -> Self {
        let cores = (0..cfg.cores)
            .map(|i| {
                let injector = if i == 0 {
                    BugInjector::new(bugs.clone())
                } else {
                    BugInjector::none()
                };
                DutCore::new(i as u8, cfg.clone(), image.clone(), injector)
            })
            .collect();
        Dut {
            cfg,
            cores,
            cycle: 0,
            next_token: 0,
            halted: None,
            total_commits: 0,
            scratch: Vec::new(),
        }
    }

    /// The configuration this DUT was built with.
    pub fn config(&self) -> &DutConfig {
        &self.cfg
    }

    /// The current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed so far across all cores.
    pub fn total_commits(&self) -> u64 {
        self.total_commits
    }

    /// Set once a core executed the terminating trap.
    pub fn halted(&self) -> Option<&HaltInfo> {
        self.halted.as_ref()
    }

    /// Access to the cores (tests, debugging reports).
    pub fn cores(&self) -> &[DutCore] {
        &self.cores
    }

    /// Runs one cycle of every core and returns the monitored events.
    ///
    /// Convenience wrapper over [`Dut::tick_into`]; hot loops should pass
    /// a reused buffer to `tick_into` instead.
    pub fn tick(&mut self) -> CycleOutput {
        let mut events = Vec::new();
        let summary = self.tick_into(&mut events);
        CycleOutput {
            cycle: summary.cycle,
            events,
            commits: summary.commits,
        }
    }

    /// Runs one cycle of every core, appending monitored events to `out`
    /// (which the caller clears and reuses to avoid per-cycle allocation).
    pub fn tick_into(&mut self, out: &mut Vec<MonitoredEvent>) -> CycleSummary {
        let cycle = self.cycle;
        self.cycle += 1;
        let mut commits = 0u32;

        for core in &mut self.cores {
            self.scratch.clear();
            commits += core.tick(cycle, &mut self.scratch);
            let core_id = core.id();
            for (order, event) in self.scratch.drain(..) {
                let token = Token(self.next_token);
                self.next_token += 1;
                out.push(MonitoredEvent {
                    core: core_id,
                    cycle,
                    order,
                    token,
                    event,
                });
            }
            if self.halted.is_none() {
                if let Some(trap) = core.halt() {
                    self.halted = Some(HaltInfo {
                        core: core_id,
                        good: trap.code == 0,
                        pc: trap.pc,
                        cycle,
                    });
                }
            }
        }

        self.total_commits += commits as u64;
        CycleSummary { cycle, commits }
    }

    /// Runs until halted or `max_cycles`, discarding events (useful for
    /// workload smoke tests and IPC calibration).
    pub fn run_to_halt(&mut self, max_cycles: u64) -> u64 {
        while self.halted.is_none() && self.cycle < max_cycles {
            self.tick();
        }
        self.cycle
    }

    /// Approximate in-memory footprint of a full snapshot of this DUT, in
    /// bytes (resident memory pages plus architectural and cache state).
    pub fn snapshot_footprint(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| {
                let mem = c.mem().resident_pages() as u64 * 4096;
                let arch = (32 + 32 + 24) as u64 * 8;
                let caches = 2 * 512 * 9 + 2 * 32 * 9; // tags + valid bits
                mem + arch + caches
            })
            .sum()
    }

    /// Average committed instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.total_commits as f64 / (self.cycle as f64 * self.cores.len() as f64)
        }
    }
}

/// Convenience: the terminating trap of core `core`, if halted.
impl Dut {
    /// The trap event of the given core, once halted.
    pub fn trap_of(&self, core: usize) -> Option<&TrapEvent> {
        self.cores.get(core).and_then(|c| c.halt())
    }
}
