//! Bug injection: the fault catalog that exercises mismatch detection.
//!
//! The paper's §6.5 reports 151 bugs across 19 pull requests in three
//! categories (Table 6). Our DUT is a model rather than RTL, so bugs are
//! *injected*: one-shot perturbations of the DUT's architectural effects,
//! trap entries, CSR state or monitor events. Each catalog entry mirrors one
//! pull request, including the cycle count at which the paper-scale bug
//! manifests (used by the Figure 14 detection-time study).

use difftest_event::{Event, EventKind};
use difftest_isa::csr::CsrIndex;
use difftest_ref::exec::Effect;
use difftest_ref::{ArchState, Memory};

/// Where in the commit path a bug perturbs the DUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hook {
    /// Perturbs the architectural [`Effect`] of a committing instruction.
    Effect,
    /// Perturbs the CSR values written during trap entry.
    TrapEntry,
    /// Perturbs architectural state at an instruction boundary.
    StateBoundary,
    /// Perturbs a monitor event payload of the given kind.
    Event(EventKind),
}

/// The 19 injectable bug kinds, mirroring the paper's Table 6 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    // --- Exception and interrupt handling errors -----------------------
    /// Trap entry records a corrupted `mepc`.
    CorruptMepc,
    /// Trap entry records a corrupted `mcause`.
    WrongTrapCause,
    /// Trap entry records a corrupted `mtval` (wrong virtual address).
    WrongTval,
    /// Trap entry redirects past the real `mtvec`.
    WrongTrapVector,
    /// Trap entry fails to clear `mstatus.MIE`.
    MstatusMieLeak,
    /// Trap entry corrupts the saved privilege (`mstatus.MPP`).
    WrongMpp,
    // --- Memory hierarchy and coherence issues --------------------------
    /// A store commits with a flipped data bit.
    StoreValueCorruption,
    /// A store is silently dropped (classic latent coherence bug).
    LostStore,
    /// A load writes back a flipped bit.
    LoadValueCorruption,
    /// The store-queue reports a wrong store address.
    StoreQueueAddrError,
    /// An sbuffer flush reports an inconsistent byte mask.
    SbufferMaskError,
    /// An i-cache refill returns a corrupted beat.
    RefillCorruption,
    // --- Vector and control logic errors --------------------------------
    /// `vstart` is corrupted at an instruction boundary.
    WrongVstart,
    /// `mstatus.VS` dirty bits are not updated.
    VsDirtyNotSet,
    /// An integer register write is corrupted.
    RegWriteCorruption,
    /// A taken branch redirects to a wrong target.
    WrongBranchTarget,
    /// A redirect event reports a wrong target.
    RedirectCorruption,
    /// A floating-point CSR update event reports stale flags.
    FpCsrStale,
    /// A vector configuration event reports a wrong `vl`.
    VecConfigError,
}

impl BugKind {
    /// The hook at which this bug perturbs the DUT.
    pub fn hook(self) -> Hook {
        use BugKind::*;
        match self {
            CorruptMepc | WrongTrapCause | WrongTval | WrongTrapVector | MstatusMieLeak
            | WrongMpp => Hook::TrapEntry,
            StoreValueCorruption | LostStore | LoadValueCorruption | RegWriteCorruption
            | WrongBranchTarget => Hook::Effect,
            WrongVstart | VsDirtyNotSet => Hook::StateBoundary,
            StoreQueueAddrError => Hook::Event(EventKind::StoreEvent),
            SbufferMaskError => Hook::Event(EventKind::SbufferEvent),
            RefillCorruption => Hook::Event(EventKind::RefillEvent),
            RedirectCorruption => Hook::Event(EventKind::Redirect),
            FpCsrStale => Hook::Event(EventKind::FpCsrUpdate),
            VecConfigError => Hook::Event(EventKind::VecConfig),
        }
    }

    /// The Table 6 category of this bug.
    pub fn category(self) -> &'static str {
        use BugKind::*;
        match self {
            CorruptMepc | WrongTrapCause | WrongTval | WrongTrapVector | MstatusMieLeak
            | WrongMpp => "Exception and interrupt handling errors",
            StoreValueCorruption | LostStore | LoadValueCorruption | StoreQueueAddrError
            | SbufferMaskError | RefillCorruption => "Memory hierarchy and coherence issues",
            _ => "Vector and control logic errors",
        }
    }
}

/// One injectable bug instance.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// The kind of perturbation.
    pub kind: BugKind,
    /// The bug fires at the first commit with sequence `>= trigger_instret`.
    pub trigger_instret: u64,
    /// Pull-request label from the paper's Table 6 (catalog entries) or a
    /// test-local label.
    pub label: String,
    /// Cycles the paper-scale bug needs to manifest (Figure 14 study).
    pub manifest_cycles: u64,
}

impl BugSpec {
    /// Creates a bug firing at `trigger_instret` with a test-local label.
    pub fn new(kind: BugKind, trigger_instret: u64) -> Self {
        BugSpec {
            kind,
            trigger_instret,
            label: format!("{kind:?}"),
            manifest_cycles: trigger_instret * 2,
        }
    }
}

/// The catalog of 19 paper-scale bugs (one per Table 6 pull request),
/// with manifestation cycle counts spanning millions to billions of cycles
/// as in Figure 14.
pub fn bug_catalog() -> Vec<BugSpec> {
    use BugKind::*;
    let entries: [(&str, BugKind, u64); 19] = [
        // Exception and interrupt handling errors.
        ("#3639", WrongTval, 2_400_000_000),
        ("#4239", CorruptMepc, 820_000_000),
        ("#4263", WrongTrapCause, 1_350_000_000),
        ("#3991", WrongTrapVector, 310_000_000),
        ("#3778", MstatusMieLeak, 5_600_000_000),
        ("#4157", WrongMpp, 960_000_000),
        // Memory hierarchy and coherence issues.
        ("#3964", LostStore, 12_000_000_000),
        ("#3685", StoreValueCorruption, 430_000_000),
        ("#3621", LoadValueCorruption, 95_000_000),
        ("#4037", StoreQueueAddrError, 2_100_000_000),
        ("#3719", SbufferMaskError, 670_000_000),
        ("#4442", RefillCorruption, 18_900_000_000),
        // Vector and control logic errors.
        ("#3876", WrongVstart, 240_000_000),
        ("#3965", VsDirtyNotSet, 1_700_000_000),
        ("#3690", RegWriteCorruption, 36_000_000),
        ("#3643", WrongBranchTarget, 58_000_000),
        ("#3646", RedirectCorruption, 140_000_000),
        ("#3664", FpCsrStale, 3_800_000_000),
        ("#4361", VecConfigError, 510_000_000),
    ];
    entries
        .into_iter()
        .map(|(label, kind, cycles)| BugSpec {
            kind,
            trigger_instret: cycles / 2,
            label: label.to_owned(),
            manifest_cycles: cycles,
        })
        .collect()
}

/// Applies one-shot bug perturbations at the configured hooks.
#[derive(Debug, Clone, Default)]
pub struct BugInjector {
    specs: Vec<BugSpec>,
    fired: Vec<bool>,
}

impl BugInjector {
    /// Creates an injector over `specs`.
    pub fn new(specs: Vec<BugSpec>) -> Self {
        let fired = vec![false; specs.len()];
        BugInjector { specs, fired }
    }

    /// An injector with no bugs.
    pub fn none() -> Self {
        BugInjector::default()
    }

    /// Returns `true` if any bug has fired.
    pub fn any_fired(&self) -> bool {
        self.fired.iter().any(|f| *f)
    }

    fn fire(&mut self, hook: Hook, seq: u64) -> Option<BugKind> {
        for (i, spec) in self.specs.iter().enumerate() {
            if !self.fired[i] && spec.kind.hook() == hook && seq >= spec.trigger_instret {
                self.fired[i] = true;
                return Some(spec.kind);
            }
        }
        None
    }

    /// Effect-hook perturbation at commit of instruction `seq`. `mem` is
    /// the DUT memory, used to pick targets where the fault is observable.
    pub fn perturb_effect(&mut self, seq: u64, effect: &mut Effect, mem: &Memory) {
        let Some(kind) = self.peek_effect_kind(seq, effect, mem) else {
            return;
        };
        match kind {
            BugKind::RegWriteCorruption => {
                if let Some((_, v)) = effect.xw.as_mut() {
                    *v ^= 0x1;
                }
            }
            BugKind::LoadValueCorruption => {
                if let Some((_, v)) = effect.xw.as_mut() {
                    *v ^= 0x100;
                }
            }
            BugKind::StoreValueCorruption => {
                if let Some(w) = effect.memw.as_mut() {
                    w.value ^= 0x1;
                }
            }
            BugKind::LostStore => {
                effect.memw = None;
            }
            BugKind::WrongBranchTarget => {
                effect.next_pc = effect.next_pc.wrapping_add(8);
            }
            _ => unreachable!("non-effect bug dispatched to effect hook"),
        }
    }

    /// Selects an applicable effect-hook bug whose perturbation target is
    /// present in `effect` (a store bug waits for a store, etc.).
    fn peek_effect_kind(&mut self, seq: u64, effect: &Effect, mem: &Memory) -> Option<BugKind> {
        for (i, spec) in self.specs.iter().enumerate() {
            if self.fired[i] || spec.kind.hook() != Hook::Effect || seq < spec.trigger_instret {
                continue;
            }
            let applicable = match spec.kind {
                // MMIO loads are synchronized *from* the DUT (there is no
                // golden device model), so corrupting their value is
                // invisible to any checker; target verifiable effects.
                BugKind::RegWriteCorruption => effect.xw.is_some() && !effect.mmio,
                BugKind::LoadValueCorruption => {
                    effect.memr.is_some() && effect.xw.is_some() && !effect.mmio
                }
                // MMIO stores are device-side effects the REF discards, so
                // corrupting or dropping one is architecturally invisible;
                // wait for a RAM store. Dropped stores surface only through
                // a later reload, so LostStore targets full-width stores
                // (the workloads' read-after-write traffic).
                BugKind::StoreValueCorruption => {
                    effect.memw.is_some_and(|w| !Memory::is_mmio(w.addr))
                }
                // A lost store only manifests when it would have changed
                // memory (otherwise it is architecturally a no-op).
                BugKind::LostStore => effect.memw.is_some_and(|w| {
                    !Memory::is_mmio(w.addr) && w.len == 8 && mem.read(w.addr, 8) != w.value
                }),
                BugKind::WrongBranchTarget => effect.branch_taken,
                _ => false,
            };
            if applicable {
                self.fired[i] = true;
                return Some(spec.kind);
            }
        }
        None
    }

    /// Trap-entry perturbation: mutates the CSR values the DUT is about to
    /// write during trap entry. Returns the extra PC offset to apply to the
    /// redirect target.
    pub fn perturb_trap_entry(
        &mut self,
        seq: u64,
        mepc: &mut u64,
        mcause: &mut u64,
        mtval: &mut u64,
        mstatus: &mut u64,
    ) -> u64 {
        let Some(kind) = self.fire(Hook::TrapEntry, seq) else {
            return 0;
        };
        use difftest_isa::csr::mstatus as ms;
        match kind {
            BugKind::CorruptMepc => *mepc ^= 0x4,
            BugKind::WrongTrapCause => *mcause ^= 0x1,
            BugKind::WrongTval => *mtval ^= 0x1000,
            BugKind::MstatusMieLeak => *mstatus |= ms::MIE,
            BugKind::WrongMpp => *mstatus &= !ms::MPP_MASK,
            BugKind::WrongTrapVector => return 8,
            _ => unreachable!("non-trap bug dispatched to trap hook"),
        }
        0
    }

    /// Boundary perturbation: corrupts architectural state directly.
    /// Waits for state in which the corruption is observable (non-zero
    /// `vstart`, dirty `mstatus.VS`).
    pub fn perturb_state(&mut self, seq: u64, state: &mut ArchState) {
        use difftest_isa::csr::mstatus as ms;
        let applicable = |k: BugKind| match k {
            BugKind::VsDirtyNotSet => state.csr(CsrIndex::Mstatus) & ms::VS_MASK != 0,
            _ => true,
        };
        let due: Vec<BugKind> = self
            .specs
            .iter()
            .enumerate()
            .filter(|(i, sp)| {
                !self.fired[*i]
                    && sp.kind.hook() == Hook::StateBoundary
                    && seq >= sp.trigger_instret
                    && applicable(sp.kind)
            })
            .map(|(_, sp)| sp.kind)
            .collect();
        for k in due {
            for (i, sp) in self.specs.iter().enumerate() {
                if sp.kind == k {
                    self.fired[i] = true;
                }
            }
            self.apply_state_bug(k, state);
        }
    }

    fn apply_state_bug(&mut self, kind: BugKind, state: &mut ArchState) {
        {
            match kind {
                BugKind::WrongVstart => {
                    let v = state.csr(CsrIndex::Vstart);
                    state.set_csr(CsrIndex::Vstart, v ^ 0x8);
                }
                BugKind::VsDirtyNotSet => {
                    use difftest_isa::csr::mstatus as ms;
                    let v = state.csr(CsrIndex::Mstatus);
                    state.set_csr(CsrIndex::Mstatus, v & !ms::VS_MASK);
                }
                _ => unreachable!("non-state bug dispatched to state hook"),
            }
        }
    }

    /// Event perturbation: corrupts a monitor event payload in flight.
    /// Waits for an event instance on which the corruption is observable
    /// (e.g. an sbuffer flush that actually carries data).
    pub fn perturb_event(&mut self, seq: u64, event: &mut Event) {
        let hook = Hook::Event(event.kind());
        let applicable = match event {
            Event::SbufferEvent(e) => e.data.iter().any(|b| *b != 0),
            _ => true,
        };
        if !applicable {
            return;
        }
        let Some(kind) = self.fire(hook, seq) else {
            return;
        };
        match (kind, event) {
            (BugKind::StoreQueueAddrError, Event::StoreEvent(e)) => e.addr ^= 0x8,
            (BugKind::SbufferMaskError, Event::SbufferEvent(e)) => {
                // A mask-computation bug on an *active* byte: clear the
                // byte-enable of the first byte that actually carries data.
                let k = e.data.iter().position(|b| *b != 0).unwrap_or(0);
                e.mask ^= 1 << k;
            }
            (BugKind::RefillCorruption, Event::RefillEvent(e)) => e.data[3] ^= 0xdead,
            (BugKind::RedirectCorruption, Event::Redirect(e)) => e.target ^= 0x10,
            (BugKind::FpCsrStale, Event::FpCsrUpdate(e)) => e.fflags ^= 0x1,
            (BugKind::VecConfigError, Event::VecConfig(e)) => e.vl ^= 0x1,
            _ => unreachable!("event bug dispatched to wrong event kind"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_ref::exec::MemWrite;

    #[test]
    fn catalog_matches_table6() {
        let cat = bug_catalog();
        assert_eq!(cat.len(), 19);
        let exc = cat
            .iter()
            .filter(|b| b.kind.category().starts_with("Exception"))
            .count();
        let mem = cat
            .iter()
            .filter(|b| b.kind.category().starts_with("Memory"))
            .count();
        let vec = cat
            .iter()
            .filter(|b| b.kind.category().starts_with("Vector"))
            .count();
        assert_eq!((exc, mem, vec), (6, 6, 7));
        // Manifestation spans millions to billions of cycles.
        assert!(cat.iter().any(|b| b.manifest_cycles < 100_000_000));
        assert!(cat.iter().any(|b| b.manifest_cycles > 10_000_000_000));
    }

    #[test]
    fn effect_bug_fires_once_when_applicable() {
        let mut inj = BugInjector::new(vec![BugSpec::new(BugKind::StoreValueCorruption, 10)]);
        let mem = Memory::new();
        let mut eff = Effect::default();
        // Not applicable: no store present even past the trigger.
        inj.perturb_effect(20, &mut eff, &mem);
        assert!(!inj.any_fired());
        eff.memw = Some(MemWrite {
            addr: 0x8000_0000,
            len: 8,
            value: 42,
        });
        // Before the trigger: nothing.
        let mut early = eff.clone();
        inj.perturb_effect(5, &mut early, &mem);
        assert_eq!(early, eff);
        // At the trigger with a store: fires once.
        inj.perturb_effect(12, &mut eff, &mem);
        assert_eq!(eff.memw.unwrap().value, 43);
        let snapshot = eff.clone();
        inj.perturb_effect(13, &mut eff, &mem);
        assert_eq!(eff, snapshot, "one-shot");
    }

    #[test]
    fn trap_bug_corrupts_mepc() {
        let mut inj = BugInjector::new(vec![BugSpec::new(BugKind::CorruptMepc, 0)]);
        let (mut mepc, mut mcause, mut mtval, mut mstatus) = (0x8000_0000u64, 11, 0, 0);
        let off = inj.perturb_trap_entry(0, &mut mepc, &mut mcause, &mut mtval, &mut mstatus);
        assert_eq!(off, 0);
        assert_eq!(mepc, 0x8000_0004);
        assert_eq!(mcause, 11);
    }

    #[test]
    fn event_bug_targets_matching_kind_only() {
        let mut inj = BugInjector::new(vec![BugSpec::new(BugKind::RedirectCorruption, 0)]);
        let mut store: Event = difftest_event::StoreEvent::default().into();
        inj.perturb_event(1, &mut store);
        assert!(!inj.any_fired());
        let mut redirect: Event = difftest_event::Redirect {
            target: 0x100,
            ..Default::default()
        }
        .into();
        inj.perturb_event(1, &mut redirect);
        match redirect {
            Event::Redirect(r) => assert_eq!(r.target, 0x110),
            _ => unreachable!(),
        }
    }

    #[test]
    fn state_bug_flips_vstart() {
        let mut inj = BugInjector::new(vec![BugSpec::new(BugKind::WrongVstart, 3)]);
        let mut s = ArchState::new(0);
        inj.perturb_state(2, &mut s);
        assert_eq!(s.csr(CsrIndex::Vstart), 0);
        inj.perturb_state(3, &mut s);
        assert_eq!(s.csr(CsrIndex::Vstart), 8);
    }
}
