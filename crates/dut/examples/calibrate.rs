//! Prints per-configuration IPC and bytes/instruction for calibration
//! against the paper's Table 4.
use difftest_dut::{Dut, DutConfig};
use difftest_ref::Memory;
use difftest_workload::Workload;

fn main() {
    let w = Workload::linux_boot().seed(5).iterations(400).build();
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, w.words());
    for cfg in [
        DutConfig::nutshell(),
        DutConfig::xiangshan_minimal(),
        DutConfig::xiangshan_default(),
        DutConfig::xiangshan_dual(),
    ] {
        let name = cfg.name.clone();
        let fixed = cfg.slots.fixed_layout_bytes() * cfg.cores as usize;
        let mut dut = Dut::new(cfg, &mem, Vec::new());
        let mut bytes = 0usize;
        let mut events = 0usize;
        while dut.halted().is_none() && dut.cycles() < 500_000 {
            for ev in dut.tick().events {
                bytes += ev.event.encoded_len();
                events += 1;
            }
        }
        let commits = dut.total_commits();
        let cycles = dut.cycles();
        println!(
            "{name:28} cycles={cycles:8} commits={commits:8} ipc={:.2} B/instr={:6.0} ev/cycle={:.2} B/cycle={:6.0} fixed_layout={fixed}",
            dut.ipc() * dut.config().cores as f64,
            bytes as f64 / commits as f64,
            events as f64 / cycles as f64,
            bytes as f64 / cycles as f64,
        );
    }
}
