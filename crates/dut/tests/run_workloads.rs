//! End-to-end DUT smoke tests: generated workloads run to a good trap and
//! produce plausible event streams.

use difftest_dut::{Dut, DutConfig};
use difftest_event::{Event, EventKind};
use difftest_ref::{Memory, RefModel, StepOutcome};
use difftest_workload::Workload;

fn image_of(words: &[u32]) -> Memory {
    let mut mem = Memory::new();
    mem.load_words(Memory::RAM_BASE, words);
    mem
}

#[test]
fn microbench_runs_to_good_trap_on_every_config() {
    let w = Workload::microbench().seed(3).iterations(30).build();
    for cfg in [
        DutConfig::nutshell(),
        DutConfig::xiangshan_minimal(),
        DutConfig::xiangshan_default(),
        DutConfig::xiangshan_dual(),
    ] {
        let name = cfg.name.clone();
        let mut dut = Dut::new(cfg, &image_of(w.words()), Vec::new());
        dut.run_to_halt(2_000_000);
        let halt = dut
            .halted()
            .unwrap_or_else(|| panic!("{name} did not halt"));
        assert!(halt.good, "{name} bad trap at {:#x}", halt.pc);
    }
}

#[test]
fn linux_boot_takes_timer_interrupts() {
    let w = Workload::linux_boot().seed(5).iterations(200).build();
    let mut dut = Dut::new(
        DutConfig::xiangshan_default(),
        &image_of(w.words()),
        Vec::new(),
    );
    let mut interrupts = 0;
    let mut mmio_loads = 0;
    while dut.halted().is_none() && dut.cycles() < 2_000_000 {
        let out = dut.tick();
        for ev in &out.events {
            match &ev.event {
                Event::ArchEvent(a) if a.is_interrupt != 0 => interrupts += 1,
                Event::LoadEvent(l) if l.is_mmio != 0 => mmio_loads += 1,
                _ => {}
            }
        }
    }
    assert!(
        dut.halted().map(|h| h.good).unwrap_or(false),
        "no good trap"
    );
    assert!(interrupts > 3, "only {interrupts} interrupts");
    assert!(mmio_loads > 50, "only {mmio_loads} MMIO loads");
}

#[test]
fn dut_matches_ref_on_deterministic_workload() {
    // Microbench has no MMIO and no interrupts, so the DUT (bug-free) and
    // the REF must retire identical instruction streams.
    let w = Workload::microbench().seed(11).iterations(80).build();
    let mut dut = Dut::new(
        DutConfig::xiangshan_default(),
        &image_of(w.words()),
        Vec::new(),
    );
    let mut rf = RefModel::new(image_of(w.words()));

    let mut commits = Vec::new();
    while dut.halted().is_none() && dut.cycles() < 1_000_000 {
        let out = dut.tick();
        for ev in out.events {
            if let Event::InstrCommit(c) = ev.event {
                commits.push(c);
            }
        }
    }
    assert!(dut.halted().unwrap().good);
    assert!(commits.len() > 5_000, "only {} commits", commits.len());

    for c in &commits {
        assert_eq!(rf.state().pc(), c.pc, "pc divergence at commit");
        match rf.step() {
            StepOutcome::Retired { effect, .. } => {
                if c.wen != 0 {
                    let got = effect
                        .xw
                        .map(|(_, v)| v)
                        .or(effect.fw.map(|(_, v)| v))
                        .unwrap_or(0);
                    assert_eq!(got, c.wdata, "wdata divergence at pc {:#x}", c.pc);
                }
            }
            other => panic!("REF outcome {other:?} at pc {:#x}", c.pc),
        }
    }
}

#[test]
fn event_stream_has_expected_shape() {
    let w = Workload::linux_boot().seed(7).iterations(40).build();
    let mut dut = Dut::new(
        DutConfig::xiangshan_default(),
        &image_of(w.words()),
        Vec::new(),
    );
    let mut kind_seen = [false; EventKind::COUNT];
    let mut bytes = 0usize;
    let mut events = 0usize;
    while dut.halted().is_none() && dut.cycles() < 2_000_000 {
        for ev in dut.tick().events {
            kind_seen[ev.event.kind() as usize] = true;
            bytes += ev.event.encoded_len();
            events += 1;
        }
    }
    let commits = dut.total_commits();
    let seen = kind_seen.iter().filter(|s| **s).count();
    assert!(seen >= 20, "only {seen} of 32 kinds observed");
    assert!(events > 1_000);
    // Table 4: XiangShan default averages ~1437 bytes per instruction.
    let bpi = bytes as f64 / commits as f64;
    assert!((500.0..4_000.0).contains(&bpi), "bytes/instr {bpi}");
}

#[test]
fn tick_and_tick_into_are_equivalent() {
    let w = Workload::microbench().seed(4).iterations(10).build();
    let image = image_of(w.words());
    let mut a = Dut::new(DutConfig::xiangshan_minimal(), &image, Vec::new());
    let mut b = Dut::new(DutConfig::xiangshan_minimal(), &image, Vec::new());
    let mut buf = Vec::new();
    while a.halted().is_none() && a.cycles() < 100_000 {
        let out = a.tick();
        buf.clear();
        let summary = b.tick_into(&mut buf);
        assert_eq!(out.cycle, summary.cycle);
        assert_eq!(out.commits, summary.commits);
        assert_eq!(out.events, buf);
    }
    assert_eq!(a.halted(), b.halted());
}

#[test]
fn tokens_are_monotone_and_orders_nondecreasing_per_core() {
    let w = Workload::microbench().seed(1).iterations(10).build();
    let mut dut = Dut::new(
        DutConfig::xiangshan_dual(),
        &image_of(w.words()),
        Vec::new(),
    );
    let mut last_token = None;
    let mut last_order = [0u64; 2];
    while dut.halted().is_none() && dut.cycles() < 1_000_000 {
        for ev in dut.tick().events {
            if let Some(t) = last_token {
                assert!(ev.token.0 > t, "tokens must be strictly monotone");
            }
            last_token = Some(ev.token.0);
            let core = ev.core as usize;
            assert!(ev.order.0 >= last_order[core], "order regressed");
            last_order[core] = ev.order.0;
        }
    }
}
