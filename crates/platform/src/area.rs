//! Gate-count area model for the verification units (paper §6.4, Fig. 15).
//!
//! The paper reports that DiffTest-H adds ≈6% area over the DUT when the
//! Batch packing unit is disabled (monitor + squash + replay + simple
//! communication), growing to ≈25% on average with Batch enabled (the
//! unified hardware/software packing interface is the dominant cost).

use serde::{Deserialize, Serialize};

/// Which verification units are instantiated on the hardware side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaFeatures {
    /// Tight-packing (Batch) unit present.
    pub batch: bool,
    /// Fusion/differencing (Squash) unit present.
    pub squash: bool,
    /// Replay buffer present.
    pub replay: bool,
}

impl AreaFeatures {
    /// The full DiffTest-H configuration.
    pub fn full() -> Self {
        AreaFeatures {
            batch: true,
            squash: true,
            replay: true,
        }
    }

    /// DiffTest-H without the Batch packing unit.
    pub fn without_batch() -> Self {
        AreaFeatures {
            batch: false,
            squash: true,
            replay: true,
        }
    }
}

/// Estimated gate counts of the DUT and each verification unit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// The design under test itself.
    pub dut_gates: f64,
    /// Monitor probes wired into the DUT.
    pub monitor_gates: f64,
    /// Squash fusion/differencing unit.
    pub squash_gates: f64,
    /// Replay buffer and token management.
    pub replay_gates: f64,
    /// Batch packing unit and the unified communication interface.
    pub batch_gates: f64,
}

impl AreaBreakdown {
    /// Total gates including the DUT.
    pub fn total(&self) -> f64 {
        self.dut_gates + self.overhead_gates()
    }

    /// Gates added by the verification units.
    pub fn overhead_gates(&self) -> f64 {
        self.monitor_gates + self.squash_gates + self.replay_gates + self.batch_gates
    }

    /// Verification-unit area as a fraction of the DUT area.
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_gates() / self.dut_gates
    }
}

/// Per-probe and per-unit cost constants of the area model.
///
/// Calibrated against the paper: 128 probes per core covering 32 event
/// types, ≈6% overhead without Batch, ≈25% with Batch across XiangShan
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Gates per monitor probe (wiring + capture register).
    pub gates_per_probe: f64,
    /// Monitor mux/valid logic as a fraction of DUT gates.
    pub monitor_fraction: f64,
    /// Squash unit as a fraction of DUT gates.
    pub squash_fraction: f64,
    /// Replay buffer as a fraction of DUT gates.
    pub replay_fraction: f64,
    /// Batch packing unit as a fraction of DUT gates (offset adders,
    /// mux-trees, transmission assembly).
    pub batch_fraction: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            gates_per_probe: 2_200.0,
            monitor_fraction: 0.017,
            squash_fraction: 0.022,
            replay_fraction: 0.018,
            batch_fraction: 0.185,
        }
    }
}

impl AreaModel {
    /// Estimates areas for a DUT of `dut_gates` gates with `probes_per_core`
    /// probes on each of `cores` cores.
    pub fn estimate(
        &self,
        dut_gates: f64,
        cores: u32,
        probes_per_core: u32,
        features: AreaFeatures,
    ) -> AreaBreakdown {
        let probe_gates = self.gates_per_probe * (probes_per_core as f64) * (cores as f64);
        AreaBreakdown {
            dut_gates,
            monitor_gates: probe_gates + self.monitor_fraction * dut_gates,
            squash_gates: if features.squash {
                self.squash_fraction * dut_gates
            } else {
                0.0
            },
            replay_gates: if features.replay {
                self.replay_fraction * dut_gates
            } else {
                0.0
            },
            batch_gates: if features.batch {
                self.batch_fraction * dut_gates
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_percent_without_batch() {
        let m = AreaModel::default();
        let a = m.estimate(57.6e6, 1, 128, AreaFeatures::without_batch());
        let f = a.overhead_fraction();
        assert!((0.05..0.08).contains(&f), "overhead {f}");
    }

    #[test]
    fn quarter_with_batch() {
        let m = AreaModel::default();
        let a = m.estimate(57.6e6, 1, 128, AreaFeatures::full());
        let f = a.overhead_fraction();
        assert!((0.22..0.28).contains(&f), "overhead {f}");
    }

    #[test]
    fn totals_are_consistent() {
        let m = AreaModel::default();
        let a = m.estimate(39.4e6, 2, 128, AreaFeatures::full());
        assert!((a.total() - a.dut_gates - a.overhead_gates()).abs() < 1.0);
        assert!(a.batch_gates > a.squash_gates);
    }

    #[test]
    fn probes_matter_more_on_small_duts() {
        let m = AreaModel::default();
        let small = m.estimate(0.6e6, 1, 32, AreaFeatures::without_batch());
        let large = m.estimate(111.8e6, 2, 128, AreaFeatures::without_batch());
        assert!(small.overhead_fraction() > large.overhead_fraction() * 0.9);
    }
}
