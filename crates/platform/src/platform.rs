//! Platform models: Palladium emulator, FPGA prototype, RTL simulator.
//!
//! Each platform bundles
//!
//! - a *capacity model* mapping design size (gates) to the DUT-only
//!   simulation speed the platform sustains,
//! - [`LinkParams`] for the hardware↔software link, and
//! - [`HostParams`] for the host-side software processing costs.
//!
//! The constants are calibrated once against the paper's *measured anchor
//! points* (Table 2, Table 5 baseline rows, Table 7 DUT-only column); every
//! derived number in the reproduced tables then comes from the actual
//! packing/fusion algorithms run over these models. Derivations are noted
//! inline.

use serde::{Deserialize, Serialize};

use crate::loggp::LinkParams;

/// The deployment class of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// A hardware emulator (Cadence Palladium class).
    Emulator,
    /// An FPGA prototype (Xilinx VU19P class).
    Fpga,
    /// A software RTL simulator (Verilator class).
    RtlSimulator,
}

/// Host-side software processing cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostParams {
    /// Seconds to step the REF by one instruction.
    pub ref_step_s: f64,
    /// Fixed seconds to dispatch/unpack/check one verification event.
    pub event_fixed_s: f64,
    /// Additional seconds per payload byte compared.
    pub event_per_byte_s: f64,
}

/// A co-simulation deployment platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    kind: PlatformKind,
    link: LinkParams,
    host: HostParams,
    /// Per-cycle hardware/software synchronization cost in step-and-compare
    /// mode (the baseline's clock-control handshake on emulators; zero on
    /// platforms whose baseline already syncs per event only).
    step_sync_s: f64,
    /// Capacity model: `dut_only_hz = cap_a / (gates + cap_b)` for size-
    /// sensitive platforms, or a fixed clock when `cap_b` is zero and
    /// `cap_a` is the clock (FPGA).
    cap_a: f64,
    cap_b: f64,
    fixed_clock_hz: Option<f64>,
}

impl Platform {
    /// The Cadence Palladium-class emulator model.
    ///
    /// Anchors: XiangShan-default (57.6 M gates) runs DUT-only at ~480 KHz
    /// (paper Table 7); NutShell (0.6 M gates) at ~1.3 MHz. Solving
    /// `hz = A / (gates + B)` for the two anchors gives
    /// `B = 32.8 M gates`, `A = 4.34e13 gate·Hz`.
    ///
    /// Link: Palladium performs a hardware/software synchronization at
    /// every DPI-C invocation (paper §3.1) — `T_sync = 11 µs` — plus a
    /// per-cycle clock-control sync of 55 µs in step-and-compare mode,
    /// over an internal link of ~100 MB/s. Hosts attached to emulators
    /// are shared machines; REF stepping is calibrated at
    /// 1.0 µs/instruction. These constants jointly anchor the Table 5
    /// baseline column (XiangShan ≈ 6 KHz, NutShell ≈ 14 KHz).
    pub fn palladium() -> Self {
        Platform {
            name: "Palladium".to_owned(),
            kind: PlatformKind::Emulator,
            link: LinkParams::new(11e-6, 100e6),
            host: HostParams {
                ref_step_s: 1.0e-6,
                event_fixed_s: 0.5e-6,
                event_per_byte_s: 2.0e-9,
            },
            step_sync_s: 55e-6,
            cap_a: 4.34e13,
            cap_b: 32.8e6,
            fixed_clock_hz: None,
        }
    }

    /// The Xilinx VU19P-class FPGA prototype model.
    ///
    /// Anchors: the DUT maps at a fixed 50 MHz design clock (paper Table 7).
    /// The PCIe/XDMA link has a higher handshake latency than Palladium's
    /// internal link but far higher bandwidth (paper §3.2 / Figure 2):
    /// `T_sync = 1.1 µs`, `BW = 3 GB/s` (anchoring the Table 5 FPGA
    /// baseline at ≈ 0.1 MHz). FPGA hosts are dedicated x86 servers; REF
    /// stepping is calibrated at 0.11 µs/instruction.
    pub fn fpga() -> Self {
        Platform {
            name: "FPGA".to_owned(),
            kind: PlatformKind::Fpga,
            link: LinkParams::new(1.1e-6, 3e9),
            host: HostParams {
                ref_step_s: 0.11e-6,
                event_fixed_s: 0.03e-6,
                event_per_byte_s: 0.15e-9,
            },
            step_sync_s: 0.0,
            cap_a: 0.0,
            cap_b: 0.0,
            fixed_clock_hz: Some(50e6),
        }
    }

    /// A 16-thread Verilator-class RTL simulator.
    ///
    /// Anchor: 16-thread Verilator simulates XiangShan-default at ~4 KHz
    /// (paper §6: DiffTest-H at 478 KHz / 7.8 MHz is 119× / 1945× faster).
    /// Model: `hz = threads_factor × 230e9 / gates`. Communication is
    /// in-process (DPI-C function call), so the link is effectively free;
    /// the simulator clock dominates.
    pub fn verilator(threads: u32) -> Self {
        // Verilator multi-threading saturates quickly; 16 threads ≈ 1.0
        // relative factor by construction of the anchor.
        let threads_factor = (threads as f64 / 16.0).powf(0.6).min(1.25);
        Platform {
            name: format!("Verilator-{threads}T"),
            kind: PlatformKind::RtlSimulator,
            link: LinkParams::new(30e-9, 8e9),
            host: HostParams {
                ref_step_s: 0.11e-6,
                event_fixed_s: 0.03e-6,
                event_per_byte_s: 0.15e-9,
            },
            step_sync_s: 0.0,
            cap_a: threads_factor * 230e9,
            cap_b: 0.0,
            fixed_clock_hz: None,
        }
    }

    /// Display name (e.g. `"Palladium"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Deployment class.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// Link parameters of the hardware↔software channel.
    pub fn link(&self) -> &LinkParams {
        &self.link
    }

    /// Host-side software processing parameters.
    pub fn host(&self) -> &HostParams {
        &self.host
    }

    /// Per-cycle synchronization cost of step-and-compare (baseline) mode.
    pub fn step_sync_s(&self) -> f64 {
        self.step_sync_s
    }

    /// DUT-only simulation speed for a design of `gates` gates, in Hz —
    /// the theoretical maximum co-simulation speed on this platform.
    pub fn dut_only_hz(&self, gates: f64) -> f64 {
        if let Some(clock) = self.fixed_clock_hz {
            return clock;
        }
        if self.cap_b == 0.0 {
            self.cap_a / gates
        } else {
            self.cap_a / (gates + self.cap_b)
        }
    }

    /// Seconds of hardware time per DUT cycle for a design of `gates`.
    pub fn cycle_time_s(&self, gates: f64) -> f64 {
        1.0 / self.dut_only_hz(gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS_DEFAULT_GATES: f64 = 57.6e6;
    const NUTSHELL_GATES: f64 = 0.6e6;

    #[test]
    fn palladium_anchors() {
        let p = Platform::palladium();
        let xs = p.dut_only_hz(XS_DEFAULT_GATES);
        assert!((xs - 480e3).abs() / 480e3 < 0.03, "XS default: {xs}");
        let ns = p.dut_only_hz(NUTSHELL_GATES);
        assert!((ns - 1.3e6).abs() / 1.3e6 < 0.03, "NutShell: {ns}");
    }

    #[test]
    fn fpga_is_fixed_clock() {
        let f = Platform::fpga();
        assert_eq!(f.dut_only_hz(1e6), 50e6);
        assert_eq!(f.dut_only_hz(100e6), 50e6);
    }

    #[test]
    fn verilator_anchor() {
        let v = Platform::verilator(16);
        let xs = v.dut_only_hz(XS_DEFAULT_GATES);
        assert!((xs - 4e3).abs() / 4e3 < 0.03, "XS default: {xs}");
        // Fewer threads are slower; more threads saturate.
        assert!(Platform::verilator(1).dut_only_hz(XS_DEFAULT_GATES) < xs);
        assert!(Platform::verilator(64).dut_only_hz(XS_DEFAULT_GATES) <= xs * 1.3);
    }

    #[test]
    fn fpga_link_tradeoff_vs_palladium() {
        // Paper §3.2: FPGA has higher handshake cost but higher bandwidth.
        let p = Platform::palladium();
        let f = Platform::fpga();
        assert!(f.link().bandwidth_bps > p.link().bandwidth_bps);
        // Palladium's per-invoke sync is the larger of the two in absolute
        // terms, but relative to its cycle time the FPGA handshake dominates
        // (50 MHz cycles are 20 ns while the handshake is 620 ns).
        let f_cycles_per_sync = f.link().t_sync_s * f.dut_only_hz(57.6e6);
        let p_cycles_per_sync = p.link().t_sync_s * p.dut_only_hz(57.6e6);
        assert!(f_cycles_per_sync > p_cycles_per_sync);
    }

    #[test]
    fn cycle_time_inverse() {
        let p = Platform::palladium();
        let hz = p.dut_only_hz(XS_DEFAULT_GATES);
        assert!((p.cycle_time_s(XS_DEFAULT_GATES) * hz - 1.0).abs() < 1e-12);
    }
}
