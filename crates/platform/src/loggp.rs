//! LogGP-style communication cost model and virtual clocks (paper §3).
//!
//! The paper models hardware/software communication overhead as
//!
//! ```text
//! Overhead = N_invokes × T_sync + N_bytes / BW + T_software     (Eq. 1)
//! ```
//!
//! This module implements the equation as explicit types: [`LinkParams`]
//! charges startup and transmission time, [`VirtualClock`] accumulates
//! simulated seconds, and [`OverheadBreakdown`] keeps the per-phase
//! attribution that Figure 2 of the paper reports.

use serde::{Deserialize, Serialize};

/// Parameters of one hardware↔software link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Per-invocation synchronization/handshake latency in seconds
    /// (Palladium DPI-C sync, FPGA XDMA descriptor round-trip, ...).
    pub t_sync_s: f64,
    /// Sustained link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkParams {
    /// Creates link parameters from a sync latency and bandwidth.
    pub fn new(t_sync_s: f64, bandwidth_bps: f64) -> Self {
        LinkParams {
            t_sync_s,
            bandwidth_bps,
        }
    }

    /// Startup cost of `invokes` communication invocations.
    #[inline]
    pub fn startup_time(&self, invokes: u64) -> f64 {
        invokes as f64 * self.t_sync_s
    }

    /// Wire time of `bytes` payload bytes.
    #[inline]
    pub fn transmission_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bps
    }

    /// Total link cost of one transfer carrying `bytes` bytes.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.t_sync_s + self.transmission_time(bytes)
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `dt` is negative or NaN.
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative clock advance: {dt}");
        self.now_s += dt;
    }

    /// Moves the clock forward to `t` if `t` is later; no-op otherwise.
    #[inline]
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now_s {
            self.now_s = t;
        }
    }
}

/// Per-phase attribution of communication overhead (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Seconds spent in communication startup (handshakes).
    pub startup_s: f64,
    /// Seconds spent in data transmission.
    pub transmission_s: f64,
    /// Seconds spent in software processing (unpack + REF + compare).
    pub software_s: f64,
}

impl OverheadBreakdown {
    /// Total overhead seconds across the three phases.
    pub fn total(&self) -> f64 {
        self.startup_s + self.transmission_s + self.software_s
    }

    /// Fractions of the three phases, in `[0, 1]`, summing to 1 when the
    /// total is non-zero.
    pub fn fractions(&self) -> [f64; 3] {
        let t = self.total();
        if t == 0.0 {
            [0.0; 3]
        } else {
            [
                self.startup_s / t,
                self.transmission_s / t,
                self.software_s / t,
            ]
        }
    }

    /// Accumulates another breakdown into this one.
    pub fn accumulate(&mut self, other: &OverheadBreakdown) {
        self.startup_s += other.startup_s;
        self.transmission_s += other.transmission_s;
        self.software_s += other.software_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_costs() {
        let l = LinkParams::new(1e-6, 1e9);
        assert!((l.startup_time(10) - 1e-5).abs() < 1e-18);
        assert_eq!(l.transmission_time(1000), 1e-6);
        assert!((l.transfer_time(1000) - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn clock_advances() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert_eq!(c.now(), 2.0);
        c.advance_to(1.0); // earlier: no-op
        assert_eq!(c.now(), 2.0);
        c.advance_to(3.0);
        assert_eq!(c.now(), 3.0);
    }

    #[test]
    fn breakdown_fractions() {
        let b = OverheadBreakdown {
            startup_s: 2.0,
            transmission_s: 1.0,
            software_s: 1.0,
        };
        assert_eq!(b.total(), 4.0);
        assert_eq!(b.fractions(), [0.5, 0.25, 0.25]);
        assert_eq!(OverheadBreakdown::default().fractions(), [0.0; 3]);
    }

    #[test]
    fn breakdown_accumulate() {
        let mut a = OverheadBreakdown {
            startup_s: 1.0,
            ..Default::default()
        };
        a.accumulate(&OverheadBreakdown {
            startup_s: 1.0,
            transmission_s: 2.0,
            software_s: 3.0,
        });
        assert_eq!(a.startup_s, 2.0);
        assert_eq!(a.transmission_s, 2.0);
        assert_eq!(a.software_s, 3.0);
    }
}
