//! Hardware-platform models for hardware-accelerated co-simulation.
//!
//! The paper deploys the design under test on a Cadence Palladium emulator
//! and a Xilinx VU19P FPGA, with the reference model on an x86 host. Those
//! machines are hardware we cannot ship in a Rust crate, so this crate
//! substitutes *calibrated analytical models* (see `DESIGN.md` §1): the
//! paper's own LogGP overhead decomposition (Eq. 1) implemented as explicit
//! types, with constants anchored to the paper's measured DUT-only speeds.
//!
//! - [`Platform`]: Palladium / FPGA / Verilator capacity + link + host models,
//! - [`LinkParams`] / [`VirtualClock`] / [`OverheadBreakdown`]: the LogGP
//!   accounting primitives used by the co-simulation engine,
//! - [`AreaModel`]: the gate-count model behind Figure 15.
//!
//! # Examples
//!
//! ```
//! use difftest_platform::Platform;
//!
//! let palladium = Platform::palladium();
//! let hz = palladium.dut_only_hz(57.6e6); // XiangShan default
//! assert!((460e3..500e3).contains(&hz));
//! ```

#![warn(missing_docs)]

mod area;
mod loggp;
mod platform;

pub use area::{AreaBreakdown, AreaFeatures, AreaModel};
pub use loggp::{LinkParams, OverheadBreakdown, VirtualClock};
pub use platform::{HostParams, Platform, PlatformKind};
