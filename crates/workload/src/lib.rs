//! Workload generation: seeded RV64 programs for the co-simulation engine.
//!
//! The paper evaluates DiffTest-H on Linux boot, microbenchmarks and SPEC
//! CPU 2006. Booting Linux inside a Rust model is out of scope, so this
//! crate generates programs that reproduce the *communication-relevant*
//! characteristics of those workloads: commit density, CSR churn, MMIO and
//! interrupt (non-deterministic event) rates, exception frequency and memory
//! locality. See `DESIGN.md` §1 for the substitution argument.
//!
//! - [`Asm`]: a label-based assembler over `difftest_isa::encode`,
//! - [`Workload`] / [`Preset`]: the five preset program families
//!   (`linux_boot`, `microbench`, `spec_like`, `mmio_heavy`, `trap_heavy`).
//!
//! # Examples
//!
//! ```
//! use difftest_workload::Workload;
//!
//! let w = Workload::linux_boot().seed(42).iterations(100).build();
//! assert_eq!(w.name(), "linux_boot");
//! assert!(!w.words().is_empty());
//! ```

#![warn(missing_docs)]

mod asm;
mod presets;

pub use asm::{Asm, AsmError, BranchOp};
pub use presets::{Preset, Workload, WorkloadBuilder};
