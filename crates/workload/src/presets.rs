//! Workload presets: seeded RV64 program generators.
//!
//! The paper evaluates on Linux boot, microbench and SPEC CPU workloads.
//! What the communication layer cares about is the *event mix* those
//! workloads induce — commit density, CSR churn, MMIO/interrupt (NDE) rate,
//! memory locality — so each preset generates a real RV64 program shaped to
//! one of those regimes (see `DESIGN.md` §1). Every program installs a trap
//! handler (timer interrupt re-arm + `ecall` skip) and terminates with a
//! good trap (`ebreak` with `a0 == 0`).

use difftest_isa::csr::CsrIndex;
use difftest_isa::{encode, FReg, Reg};
use difftest_ref::map;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::asm::{Asm, BranchOp};

/// The workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// Boot-like: CSR churn, timer interrupts, UART I/O, ecalls, memcpy,
    /// floating point — the paper's "Linux boot" regime (NDE-rich).
    LinuxBoot,
    /// Compute loop: integer arithmetic with a small memory footprint.
    Microbench,
    /// Memory-heavy strided walks with mul/div pressure (SPEC-like).
    SpecLike,
    /// A tight loop of UART MMIO reads: worst case for order-coupled fusion.
    MmioHeavy,
    /// Frequent `ecall`s: exception-entry stress.
    TrapHeavy,
    /// Randomized block soup: every generator block in random order — the
    /// co-simulation fuzzing regime (MorFuzz-style differential stress).
    Fuzz,
}

impl Preset {
    /// Display name of the preset.
    pub fn name(self) -> &'static str {
        match self {
            Preset::LinuxBoot => "linux_boot",
            Preset::Microbench => "microbench",
            Preset::SpecLike => "spec_like",
            Preset::MmioHeavy => "mmio_heavy",
            Preset::TrapHeavy => "trap_heavy",
            Preset::Fuzz => "fuzz",
        }
    }
}

/// Configures and builds one workload program.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    preset: Preset,
    seed: u64,
    iterations: u32,
}

impl WorkloadBuilder {
    /// Sets the generator seed (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the outer-loop iteration count (default per preset).
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Generates the program.
    ///
    /// # Panics
    ///
    /// Panics if the generator produces an unresolvable program — that
    /// would be a bug in the generator, not in user input.
    pub fn build(self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xd1ff_7e57);
        let mut g = Gen {
            a: Asm::new(),
            rng: &mut rng,
            label_counter: 0,
        };
        g.prologue(self.preset);
        match self.preset {
            Preset::LinuxBoot => g.linux_boot_body(self.iterations),
            Preset::Microbench => g.microbench_body(self.iterations),
            Preset::SpecLike => g.spec_like_body(self.iterations),
            Preset::MmioHeavy => g.mmio_heavy_body(self.iterations),
            Preset::TrapHeavy => g.trap_heavy_body(self.iterations),
            Preset::Fuzz => g.fuzz_body(self.iterations),
        }
        g.epilogue();
        let words =
            g.a.finish()
                .expect("workload generator produced a valid program");
        Workload {
            name: self.preset.name().to_owned(),
            preset: self.preset,
            seed: self.seed,
            words,
        }
    }
}

/// A generated workload program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    preset: Preset,
    seed: u64,
    words: Vec<u32>,
}

impl Workload {
    /// Starts building a boot-like workload.
    pub fn linux_boot() -> WorkloadBuilder {
        WorkloadBuilder {
            preset: Preset::LinuxBoot,
            seed: 1,
            iterations: 400,
        }
    }

    /// Starts building a compute microbenchmark.
    pub fn microbench() -> WorkloadBuilder {
        WorkloadBuilder {
            preset: Preset::Microbench,
            seed: 1,
            iterations: 400,
        }
    }

    /// Starts building a memory-heavy SPEC-like workload.
    pub fn spec_like() -> WorkloadBuilder {
        WorkloadBuilder {
            preset: Preset::SpecLike,
            seed: 1,
            iterations: 500,
        }
    }

    /// Starts building an MMIO-saturated workload.
    pub fn mmio_heavy() -> WorkloadBuilder {
        WorkloadBuilder {
            preset: Preset::MmioHeavy,
            seed: 1,
            iterations: 800,
        }
    }

    /// Starts building an exception-heavy workload.
    pub fn trap_heavy() -> WorkloadBuilder {
        WorkloadBuilder {
            preset: Preset::TrapHeavy,
            seed: 1,
            iterations: 800,
        }
    }

    /// Starts building a randomized fuzzing workload.
    pub fn fuzz() -> WorkloadBuilder {
        WorkloadBuilder {
            preset: Preset::Fuzz,
            seed: 1,
            iterations: 300,
        }
    }

    /// The workload's name (e.g. `"linux_boot"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The preset family.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The program image as 32-bit words, to be loaded at the RAM base.
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

// Register conventions of generated programs:
//  - t5, t6: trap-handler scratch (never live in the body),
//  - s0: outer loop counter, s1: data base pointer,
//  - s10, s11: cold-region walk mask/index (never in the pool),
//  - a0: reserved for the exit code,
//  - pool (randomized data flow): a1-a7, s2-s9, t0-t4.
const POOL: [Reg; 20] = [
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
];

const DATA_BASE: i64 = (map::RAM_BASE + 0x10_0000) as i64;
const TIMER_PERIOD: i64 = 1800;

struct Gen<'r> {
    a: Asm,
    rng: &'r mut StdRng,
    label_counter: u32,
}

impl Gen<'_> {
    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}_{}", self.label_counter)
    }

    fn pool_reg(&mut self) -> Reg {
        POOL[self.rng.random_range(0..POOL.len())]
    }

    /// Trap vector setup, handler, pool initialization.
    fn prologue(&mut self, preset: Preset) {
        let a = &mut self.a;
        a.la(Reg::T0, "handler");
        a.csrw(CsrIndex::Mtvec.address(), Reg::T0);
        a.jal_to(Reg::ZERO, "main");

        // Trap handler: re-arm the timer on interrupts, skip the
        // instruction on ecalls. Uses only t5/t6.
        a.label("handler");
        a.csrr(Reg::T5, CsrIndex::Mcause.address());
        a.branch_to(BranchOp::Bge, Reg::T5, Reg::ZERO, "handler_exc");
        // Interrupt: mtimecmp = mtime + period (the mtime MMIO load is an
        // NDE the checker must synchronize).
        a.li(Reg::T6, map::CLINT_MTIME as i64);
        a.raw(encode::ld(Reg::T5, Reg::T6, 0));
        a.addi(Reg::T5, Reg::T5, TIMER_PERIOD);
        a.li(Reg::T6, map::CLINT_MTIMECMP as i64);
        a.raw(encode::sd(Reg::T5, Reg::T6, 0));
        a.mret();
        a.label("handler_exc");
        // Exception (ecall): mepc += 4.
        a.csrr(Reg::T5, CsrIndex::Mepc.address());
        a.addi(Reg::T5, Reg::T5, 4);
        a.csrw(CsrIndex::Mepc.address(), Reg::T5);
        a.mret();

        a.label("main");
        a.li(Reg::S1, DATA_BASE);
        for (i, r) in POOL.iter().enumerate() {
            let v = self.rng.random_range(-(1 << 20)..(1 << 20)) | i as i64;
            self.a.li(*r, v);
        }

        if preset == Preset::LinuxBoot {
            // Arm the cycle-granularity timer and enable machine interrupts.
            let a = &mut self.a;
            a.li(Reg::T0, TIMER_PERIOD);
            a.li(Reg::T1, map::CLINT_MTIMECMP as i64);
            a.raw(encode::sd(Reg::T0, Reg::T1, 0));
            a.li(Reg::T0, 1 << 7); // mie.MTIE
            a.csrw(CsrIndex::Mie.address(), Reg::T0);
            a.raw(encode::csrrsi(Reg::ZERO, CsrIndex::Mstatus.address(), 8)); // MIE
        }
    }

    fn epilogue(&mut self) {
        self.a.label("exit");
        self.a.li(Reg::A0, 0);
        self.a.ebreak();
    }

    /// Wraps `body` in an outer loop of `iterations` rounds.
    fn outer_loop(&mut self, iterations: u32, body: impl FnOnce(&mut Self)) {
        self.a.li(Reg::S0, iterations as i64);
        self.a.label("loop");
        body(self);
        self.a.addi(Reg::S0, Reg::S0, -1);
        self.a
            .branch_to(BranchOp::Beq, Reg::S0, Reg::ZERO, "loop_done");
        self.a.jal_to(Reg::ZERO, "loop");
        self.a.label("loop_done");
    }

    // ---- instruction blocks --------------------------------------------

    fn arith_block(&mut self, n: usize) {
        for _ in 0..n {
            let (rd, rs1, rs2) = (self.pool_reg(), self.pool_reg(), self.pool_reg());
            let w = match self.rng.random_range(0..18u32) {
                0 => encode::add(rd, rs1, rs2),
                1 => encode::sub(rd, rs1, rs2),
                2 => encode::xor(rd, rs1, rs2),
                3 => encode::or(rd, rs1, rs2),
                4 => encode::and(rd, rs1, rs2),
                5 => encode::sll(rd, rs1, rs2),
                6 => encode::addw(rd, rs1, rs2),
                7 => encode::addi(rd, rs1, self.rng.random_range(-512..512)),
                8 => encode::slli(rd, rs1, self.rng.random_range(0..30)),
                9 => encode::sltu(rd, rs1, rs2),
                // Zbb: the B-extension slice XiangShan ships.
                10 => encode::andn(rd, rs1, rs2),
                11 => encode::xnor(rd, rs1, rs2),
                12 => encode::min(rd, rs1, rs2),
                13 => encode::maxu(rd, rs1, rs2),
                14 => encode::ror(rd, rs1, rs2),
                15 => encode::rori(rd, rs1, self.rng.random_range(0..64)),
                16 => encode::cpop(rd, rs1),
                _ => encode::rev8(rd, rs1),
            };
            self.a.raw(w);
        }
    }

    fn mul_div_block(&mut self, n: usize) {
        for _ in 0..n {
            let (rd, rs1, rs2) = (self.pool_reg(), self.pool_reg(), self.pool_reg());
            let w = match self.rng.random_range(0..6u32) {
                0 => encode::mul(rd, rs1, rs2),
                1 => encode::mulh(rd, rs1, rs2),
                2 => encode::div(rd, rs1, rs2),
                3 => encode::divu(rd, rs1, rs2),
                4 => encode::rem(rd, rs1, rs2),
                _ => encode::mulw(rd, rs1, rs2),
            };
            self.a.raw(w);
        }
    }

    /// Aligned loads and stores inside a 4 KiB window at the data base.
    /// Every store is eventually reloaded (read-after-write), as real
    /// programs do — which is also what surfaces latent store-dropping
    /// bugs as register divergence.
    fn mem_block(&mut self, n: usize) {
        for _ in 0..n {
            let off = self.rng.random_range(0..216i64) * 8; // fits the S-immediate
            let r = self.pool_reg();
            if self.rng.random_bool(0.45) {
                // Mix the (monotone) loop counter into the stored value so
                // every dynamic store writes fresh data, then reload it.
                let tmp = self.pool_reg();
                self.a.raw(encode::add(tmp, r, Reg::S0));
                self.a.raw(encode::sd(tmp, Reg::S1, off));
                let rd = self.pool_reg();
                self.a.raw(encode::ld(rd, Reg::S1, off));
            } else {
                self.a.raw(encode::ld(r, Reg::S1, off));
            }
        }
    }

    /// A data-dependent forward branch over a small block.
    fn branch_block(&mut self) {
        let skip = self.fresh_label("skip");
        let (rs1, rs2) = (self.pool_reg(), self.pool_reg());
        let op = match self.rng.random_range(0..4u32) {
            0 => BranchOp::Beq,
            1 => BranchOp::Bne,
            2 => BranchOp::Blt,
            _ => BranchOp::Bgeu,
        };
        self.a.branch_to(op, rs1, rs2, &skip);
        let n = self.rng.random_range(1..4);
        self.arith_block(n);
        self.a.label(&skip);
    }

    fn fp_block(&mut self, n: usize) {
        let (f0, f1, f2) = (FReg::new(0), FReg::new(1), FReg::new(2));
        let r = self.pool_reg();
        self.a.raw(encode::fmv_d_x(f1, r));
        for _ in 0..n {
            let w = match self.rng.random_range(0..3u32) {
                0 => encode::fadd_d(f0, f0, f1),
                1 => encode::fmul_d(f2, f0, f1),
                _ => encode::fsub_d(f0, f2, f1),
            };
            self.a.raw(w);
        }
        self.a.raw(encode::fsd(f0, Reg::S1, 0x700));
        self.a.raw(encode::fld(f2, Reg::S1, 0x700));
    }

    fn csr_block(&mut self) {
        let r = self.pool_reg();
        match self.rng.random_range(0..6u32) {
            0 => self.a.csrw(CsrIndex::Mscratch.address(), r),
            1 => {
                // Set FS/VS dirty in mstatus (never touching MIE).
                self.a.li(Reg::T0, (0b11 << 13) | (0b11 << 9));
                self.a.raw(encode::csrrs(
                    Reg::ZERO,
                    CsrIndex::Mstatus.address(),
                    Reg::T0,
                ));
            }
            2 => {
                self.a.raw(encode::andi(Reg::T0, r, 0x7f));
                self.a.csrw(CsrIndex::Vstart.address(), Reg::T0);
            }
            3 => {
                self.a.raw(encode::andi(Reg::T0, r, 0xff));
                self.a.csrw(CsrIndex::Vl.address(), Reg::T0);
                self.a.li(Reg::T1, 0xd0);
                self.a.csrw(CsrIndex::Vtype.address(), Reg::T1);
            }
            4 => {
                self.a.raw(encode::andi(Reg::T0, r, 0xff));
                self.a.csrw(CsrIndex::Fcsr.address(), Reg::T0);
            }
            _ => {
                self.a.raw(encode::andi(Reg::T0, r, 0x3ff));
                self.a.csrw(CsrIndex::Hedeleg.address(), Reg::T0);
            }
        }
    }

    /// The full CSR suite, once per call: vector config, fcsr, hypervisor
    /// delegation, scratch and status dirty bits — the register churn of a
    /// booting kernel, and the event sources of the extension checks.
    fn csr_suite_block(&mut self) {
        let r = self.pool_reg();
        self.a.csrw(CsrIndex::Mscratch.address(), r);
        self.a.raw(encode::andi(Reg::T0, r, 0xff));
        self.a.csrw(CsrIndex::Vl.address(), Reg::T0);
        self.a.li(Reg::T1, 0xd0);
        self.a.csrw(CsrIndex::Vtype.address(), Reg::T1);
        self.a.raw(encode::andi(Reg::T0, r, 0x7f));
        self.a.csrw(CsrIndex::Vstart.address(), Reg::T0);
        self.a.raw(encode::andi(Reg::T0, r, 0xff));
        self.a.csrw(CsrIndex::Fcsr.address(), Reg::T0);
        self.a.raw(encode::andi(Reg::T0, r, 0x3ff));
        self.a.csrw(CsrIndex::Hedeleg.address(), Reg::T0);
        // Mark the FP and vector units dirty, as executing kernels do.
        self.a.li(Reg::T0, (0b11 << 13) | (0b11 << 9));
        self.a.raw(encode::csrrs(
            Reg::ZERO,
            CsrIndex::Mstatus.address(),
            Reg::T0,
        ));
    }

    fn uart_write_block(&mut self, n: usize) {
        self.a.li(Reg::T0, map::UART_DATA as i64);
        for _ in 0..n {
            let ch = self.rng.random_range(0x20..0x7fi64);
            self.a.li(Reg::T1, ch);
            self.a.raw(encode::sb(Reg::T1, Reg::T0, 0));
        }
    }

    fn uart_read_block(&mut self, n: usize) {
        self.a.li(Reg::T0, map::UART_DATA as i64);
        for i in 0..n {
            // Each read is an MMIO NDE; the value lands in the data buffer.
            self.a.raw(encode::lbu(Reg::T1, Reg::T0, 0));
            self.a
                .raw(encode::sb(Reg::T1, Reg::S1, 0x780 + (i as i64 % 64)));
        }
    }

    /// One cold cache line + page per call: sustained refill and TLB
    /// traffic, the way a booting system keeps touching new memory.
    /// Uses the reserved s10 (mask) / s11 (index) registers.
    fn cold_walk_block(&mut self) {
        self.a.raw(encode::add(Reg::T0, Reg::S1, Reg::S11));
        self.a.raw(encode::ld(Reg::T1, Reg::T0, 0));
        // Advance by a page plus a line so both the TLB and the cache miss.
        self.a.li(Reg::T1, 4096 + 64);
        self.a.raw(encode::add(Reg::S11, Reg::S11, Reg::T1));
        self.a.raw(encode::and(Reg::S11, Reg::S11, Reg::S10));
        self.a.raw(encode::andi(Reg::S11, Reg::S11, -8));
    }

    fn atomic_block(&mut self) {
        let r = self.pool_reg();
        self.a.li(Reg::T0, DATA_BASE + 0x7c0);
        let amo = match self.rng.random_range(0..6u32) {
            0 => encode::amoadd_d(Reg::T1, Reg::T0, r),
            1 => encode::amoswap_d(Reg::T1, Reg::T0, r),
            2 => encode::amoxor_d(Reg::T1, Reg::T0, r),
            3 => encode::amoor_w(Reg::T1, Reg::T0, r),
            4 => encode::amomax_d(Reg::T1, Reg::T0, r),
            _ => encode::amominu_w(Reg::T1, Reg::T0, r),
        };
        self.a.raw(amo);
        self.a.raw(encode::lr_d(Reg::T2, Reg::T0));
        self.a.raw(encode::sc_d(Reg::T3, Reg::T0, Reg::T1));
    }

    // ---- preset bodies ---------------------------------------------------

    fn microbench_body(&mut self, iterations: u32) {
        self.outer_loop(iterations, |g| {
            g.arith_block(40);
            g.mul_div_block(10);
            g.mem_block(12);
            g.branch_block();
            g.arith_block(30);
            g.branch_block();
        });
    }

    fn linux_boot_body(&mut self, iterations: u32) {
        self.a.li(Reg::S10, 0x3_ffff); // 256 KiB walk window
        self.a.li(Reg::S11, 0x2_0000); // start above the hot data
        self.outer_loop(iterations, |g| {
            g.cold_walk_block();
            g.csr_suite_block();
            g.csr_block();
            g.arith_block(25);
            g.mem_block(14);
            g.branch_block();
            g.uart_write_block(2);
            g.mul_div_block(6);
            g.uart_read_block(2);
            g.fp_block(5);
            g.branch_block();
            g.a.ecall();
            g.arith_block(20);
            g.atomic_block();
            g.csr_block();
            g.branch_block();
        });
    }

    fn spec_like_body(&mut self, iterations: u32) {
        // Strided walk over a 256 KiB window: real cache misses. The walk
        // index/mask live in the reserved s11/s10 registers, which the
        // randomized pool never clobbers.
        self.a.li(Reg::S11, 0); // walk index
        self.a.li(Reg::S10, 0x3_ffff); // window mask
        self.outer_loop(iterations, |g| {
            for _ in 0..10 {
                g.a.raw(encode::add(Reg::T0, Reg::S1, Reg::S11));
                g.a.raw(encode::ld(Reg::T1, Reg::T0, 0));
                g.a.raw(encode::add(Reg::T1, Reg::T1, Reg::S11));
                g.a.raw(encode::sd(Reg::T1, Reg::T0, 8));
                // index = (index + 2016) & mask, 8-byte aligned.
                g.a.addi(Reg::S11, Reg::S11, 2016);
                g.a.raw(encode::and(Reg::S11, Reg::S11, Reg::S10));
                g.a.raw(encode::andi(Reg::S11, Reg::S11, -8));
            }
            g.mul_div_block(12);
            g.arith_block(20);
            g.branch_block();
        });
    }

    fn mmio_heavy_body(&mut self, iterations: u32) {
        self.outer_loop(iterations, |g| {
            g.uart_read_block(6);
            g.arith_block(8);
            g.uart_write_block(2);
            g.branch_block();
        });
    }

    fn trap_heavy_body(&mut self, iterations: u32) {
        self.outer_loop(iterations, |g| {
            g.arith_block(10);
            g.a.ecall();
            g.mem_block(4);
            g.a.ecall();
            g.branch_block();
        });
    }

    /// Random block soup: a different mix every seed, every position.
    fn fuzz_body(&mut self, iterations: u32) {
        // Arm the timer too, so interrupts race the random stream.
        self.a.li(Reg::T0, TIMER_PERIOD);
        self.a.li(Reg::T1, map::CLINT_MTIMECMP as i64);
        self.a.raw(encode::sd(Reg::T0, Reg::T1, 0));
        self.a.li(Reg::T0, 1 << 7);
        self.a.csrw(CsrIndex::Mie.address(), Reg::T0);
        self.a
            .raw(encode::csrrsi(Reg::ZERO, CsrIndex::Mstatus.address(), 8));
        self.a.li(Reg::S10, 0x3_ffff);
        self.a.li(Reg::S11, 0x2_0000);

        self.outer_loop(iterations, |g| {
            for _ in 0..14 {
                match g.rng.random_range(0..11u32) {
                    0 => g.arith_block(8),
                    1 => g.mul_div_block(4),
                    2 => g.mem_block(5),
                    3 => g.branch_block(),
                    4 => g.fp_block(3),
                    5 => g.csr_block(),
                    6 => g.uart_read_block(1),
                    7 => g.uart_write_block(1),
                    8 => g.atomic_block(),
                    9 => g.a.ecall(),
                    _ => g.cold_walk_block(),
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for w in [
            Workload::linux_boot().build(),
            Workload::microbench().build(),
            Workload::spec_like().build(),
            Workload::mmio_heavy().build(),
            Workload::trap_heavy().build(),
        ] {
            assert!(w.words().len() > 50, "{} too small", w.name());
            assert!(w.words().len() < 200_000, "{} too large", w.name());
        }
    }

    #[test]
    fn seeds_change_programs() {
        let a = Workload::microbench().seed(1).build();
        let b = Workload::microbench().seed(2).build();
        assert_ne!(a.words(), b.words());
        let a2 = Workload::microbench().seed(1).build();
        assert_eq!(a.words(), a2.words(), "same seed is reproducible");
    }

    #[test]
    fn iterations_scale_size_not_much() {
        // Iterations change the loop counter, not the program size class.
        let small = Workload::microbench().iterations(10).build();
        let large = Workload::microbench().iterations(10_000).build();
        // Only the loop-counter materialization may differ (one extra word).
        let delta = large.words().len() as i64 - small.words().len() as i64;
        assert!(delta.unsigned_abs() <= 2, "delta {delta}");
    }
}
