//! A tiny label-based assembler over `difftest_isa::encode`.
//!
//! The workload generators build RV64 programs with forward and backward
//! branches; the assembler collects fixups against named labels and resolves
//! them in [`Asm::finish`].

use std::collections::HashMap;
use std::fmt;

use difftest_isa::{encode, Reg};

/// Conditional-branch flavours usable with [`Asm::branch_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Errors reported when resolving a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never bound.
    UndefinedLabel(String),
    /// A resolved offset does not fit the instruction's immediate field.
    OffsetOutOfRange {
        /// The label whose offset overflowed.
        label: String,
        /// The offending byte offset.
        offset: i64,
    },
    /// A label was bound twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::OffsetOutOfRange { label, offset } => {
                write!(f, "offset {offset} to label `{label}` out of range")
            }
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug)]
enum FixKind {
    Branch(BranchOp, Reg, Reg),
    Jal(Reg),
    /// `la rd, label`: an `auipc`+`addi` pair.
    La(Reg),
}

#[derive(Debug)]
struct Fixup {
    at_word: usize,
    label: String,
    kind: FixKind,
}

/// An incremental program assembler.
///
/// # Examples
///
/// ```
/// use difftest_isa::Reg;
/// use difftest_workload::{Asm, BranchOp};
///
/// let mut a = Asm::new();
/// a.li(Reg::A0, 3);
/// a.label("loop");
/// a.addi(Reg::A0, Reg::A0, -1);
/// a.branch_to(BranchOp::Bne, Reg::A0, Reg::ZERO, "loop");
/// a.ebreak();
/// let words = a.finish()?;
/// assert!(words.len() >= 4);
/// # Ok::<(), difftest_workload::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    words: Vec<u32>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current position in bytes from the program start.
    pub fn pos(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// Appends a raw machine word.
    pub fn raw(&mut self, word: u32) {
        self.words.push(word);
    }

    /// Binds `name` to the current position.
    pub fn label(&mut self, name: &str) {
        if self
            .labels
            .insert(name.to_owned(), self.words.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_owned());
        }
    }

    /// Emits a conditional branch to `label`.
    pub fn branch_to(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, label: &str) {
        self.fixups.push(Fixup {
            at_word: self.words.len(),
            label: label.to_owned(),
            kind: FixKind::Branch(op, rs1, rs2),
        });
        self.words.push(encode::nop()); // patched in finish()
    }

    /// Emits `jal rd, label`.
    pub fn jal_to(&mut self, rd: Reg, label: &str) {
        self.fixups.push(Fixup {
            at_word: self.words.len(),
            label: label.to_owned(),
            kind: FixKind::Jal(rd),
        });
        self.words.push(encode::nop());
    }

    /// Emits `la rd, label` (an `auipc`/`addi` pair).
    pub fn la(&mut self, rd: Reg, label: &str) {
        self.fixups.push(Fixup {
            at_word: self.words.len(),
            label: label.to_owned(),
            kind: FixKind::La(rd),
        });
        self.words.push(encode::nop());
        self.words.push(encode::nop());
    }

    /// Materializes an arbitrary 64-bit immediate into `rd`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.li_rec(rd, imm);
    }

    fn li_rec(&mut self, rd: Reg, v: i64) {
        if (-2048..=2047).contains(&v) {
            self.raw(encode::addi(rd, Reg::ZERO, v));
            return;
        }
        if (i32::MIN as i64..=i32::MAX as i64).contains(&v) {
            // lui + addiw, accounting for addiw's sign extension.
            let low = (v << 52) >> 52; // low 12 bits, sign-extended
            let hi = v.wrapping_sub(low);
            debug_assert_eq!(hi & 0xfff, 0);
            self.raw(encode::lui(rd, hi));
            if low != 0 {
                self.raw(encode::addiw(rd, rd, low));
            }
            return;
        }
        // Recursive: materialize v >> 12, shift, add the low 12 bits.
        let low = v & 0xfff;
        if low >= 2048 {
            self.li_rec(rd, (v >> 12) + 1);
            self.raw(encode::slli(rd, rd, 12));
            self.raw(encode::addi(rd, rd, low - 4096));
        } else {
            self.li_rec(rd, v >> 12);
            self.raw(encode::slli(rd, rd, 12));
            if low != 0 {
                self.raw(encode::addi(rd, rd, low));
            }
        }
    }

    /// `csrr rd, csr` (pseudo for `csrrs rd, csr, x0`).
    pub fn csrr(&mut self, rd: Reg, csr: u16) {
        self.raw(encode::csrrs(rd, csr, Reg::ZERO));
    }

    /// `csrw csr, rs` (pseudo for `csrrw x0, csr, rs`).
    pub fn csrw(&mut self, csr: u16, rs: Reg) {
        self.raw(encode::csrrw(Reg::ZERO, csr, rs));
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.raw(encode::addi(rd, rs1, imm));
    }

    /// `mret`.
    pub fn mret(&mut self) {
        self.raw(encode::mret());
    }

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.raw(encode::ecall());
    }

    /// `ebreak` — the simulation-terminating trap.
    pub fn ebreak(&mut self) {
        self.raw(encode::ebreak());
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.raw(encode::nop());
    }

    /// Resolves all fixups and returns the machine words.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined or duplicate labels and for
    /// offsets that do not fit their immediate fields.
    pub fn finish(self) -> Result<Vec<u32>, AsmError> {
        let Asm {
            mut words,
            labels,
            fixups,
            duplicate,
        } = self;
        if let Some(d) = duplicate {
            return Err(AsmError::DuplicateLabel(d));
        }
        for fix in fixups {
            let target = *labels
                .get(&fix.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fix.label.clone()))?;
            let offset = (target as i64 - fix.at_word as i64) * 4;
            match fix.kind {
                FixKind::Branch(op, rs1, rs2) => {
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            label: fix.label,
                            offset,
                        });
                    }
                    let enc = match op {
                        BranchOp::Beq => encode::beq,
                        BranchOp::Bne => encode::bne,
                        BranchOp::Blt => encode::blt,
                        BranchOp::Bge => encode::bge,
                        BranchOp::Bltu => encode::bltu,
                        BranchOp::Bgeu => encode::bgeu,
                    };
                    words[fix.at_word] = enc(rs1, rs2, offset);
                }
                FixKind::Jal(rd) => {
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            label: fix.label,
                            offset,
                        });
                    }
                    words[fix.at_word] = encode::jal(rd, offset);
                }
                FixKind::La(rd) => {
                    // auipc-relative: offset from the auipc instruction.
                    let low = (offset << 52) >> 52;
                    let hi = offset.wrapping_sub(low);
                    words[fix.at_word] = encode::auipc(rd, hi);
                    words[fix.at_word + 1] = encode::addi(rd, rd, low);
                }
            }
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_isa::{decode, Op};

    #[test]
    fn backward_branch_resolves() {
        let mut a = Asm::new();
        a.label("top");
        a.nop();
        a.branch_to(BranchOp::Bne, Reg::A0, Reg::ZERO, "top");
        let w = a.finish().unwrap();
        let i = decode(w[1]);
        assert_eq!(i.op, Op::Bne);
        assert_eq!(i.imm, -4);
    }

    #[test]
    fn forward_jal_resolves() {
        let mut a = Asm::new();
        a.jal_to(Reg::ZERO, "end");
        a.nop();
        a.nop();
        a.label("end");
        a.ebreak();
        let w = a.finish().unwrap();
        let i = decode(w[0]);
        assert_eq!(i.op, Op::Jal);
        assert_eq!(i.imm, 12);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new();
        a.jal_to(Reg::ZERO, "nowhere");
        assert_eq!(
            a.finish(),
            Err(AsmError::UndefinedLabel("nowhere".to_owned()))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.finish(), Err(AsmError::DuplicateLabel("x".to_owned())));
    }

    #[test]
    fn la_pair() {
        let mut a = Asm::new();
        a.la(Reg::A0, "data");
        a.nop();
        a.label("data");
        let w = a.finish().unwrap();
        assert_eq!(decode(w[0]).op, Op::Auipc);
        assert_eq!(decode(w[1]).op, Op::Addi);
        // auipc(hi=0) + addi(12) lands on the label at byte 12.
        assert_eq!(decode(w[1]).imm, 12);
    }
}
