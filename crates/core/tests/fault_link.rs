//! Property tests on the lossy-link layer: under *arbitrary* seeded fault
//! schedules (drops, duplicates, reorders, truncations, bit flips) the
//! unpacker never panics — every disturbed packet either decodes into the
//! original in-order item stream or surfaces a typed [`CodecError`] — and
//! the schedule itself replays bit-for-bit from its seed.

use difftest_core::batch::{BatchUnit, Unpacker};
use difftest_core::{FaultPlan, FaultyLink, LinkErrorKind, Transfer, WireItem};
use difftest_event::wire::CodecError;
use difftest_event::{Event, EventKind, OrderTag, Token};
use proptest::prelude::*;

/// Strategy: an arbitrary event with a randomized payload.
fn any_event() -> impl Strategy<Value = Event> {
    (0usize..EventKind::COUNT).prop_flat_map(|k| {
        let kind = EventKind::ALL[k];
        proptest::collection::vec(any::<u8>(), kind.encoded_len())
            .prop_map(move |bytes| Event::decode(kind, &bytes).expect("exact length"))
    })
}

/// Strategy: a non-diff wire item (diff packing is lossy by design for
/// vacuous diffs, which would confuse the prefix property below).
fn any_item() -> impl Strategy<Value = WireItem> {
    (
        any_event(),
        any::<u64>(),
        any::<u64>(),
        0u8..2,
        any::<bool>(),
    )
        .prop_map(|(event, tag, token, core, tagged)| {
            if tagged {
                WireItem::Tagged {
                    core,
                    tag: OrderTag(tag),
                    token: Token(token),
                    event,
                }
            } else {
                WireItem::Plain { core, event }
            }
        })
}

/// Strategy: an arbitrary (legal) fault plan. Individual rates stay under
/// 200‰ so their sum respects the 1000‰ budget.
fn any_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        (0u16..150, 0u16..150, 0u16..150, 0u16..150, 0u16..150),
        0u32..8,
    )
        .prop_map(
            |(seed, (drop, dup, reorder, trunc, corrupt), depth)| FaultPlan {
                seed,
                drop_per_mille: drop,
                duplicate_per_mille: dup,
                reorder_per_mille: reorder,
                truncate_per_mille: trunc,
                corrupt_per_mille: corrupt,
                reorder_depth: depth,
            },
        )
}

/// Packs `items` into sequenced, CRC-framed packets (pseudo-cycles of up
/// to 6 items) and wraps each as a link [`Transfer`].
fn pack(items: &[WireItem], capacity: usize) -> Vec<Transfer> {
    let mut packer = BatchUnit::new(2, capacity);
    let mut packets = Vec::new();
    for chunk in items.chunks(6) {
        packer.push_cycle(chunk, &mut packets);
    }
    packer.flush(&mut packets);
    packets
        .into_iter()
        .map(|p| {
            let items = p.items;
            Transfer {
                bytes: p.bytes,
                core: 0,
                invokes: 1,
                items,
            }
        })
        .collect()
}

/// Drives `transfers` through a [`FaultyLink`] and the disturbed output
/// through an [`Unpacker`], recording every decoded item and every typed
/// error kind. Panics in here are exactly what the property forbids.
fn receive(plan: FaultPlan, transfers: Vec<Transfer>) -> (Vec<WireItem>, Vec<LinkErrorKind>) {
    let mut link = FaultyLink::new(plan);
    let mut wire = Vec::new();
    for t in transfers {
        link.transmit(t, &mut wire);
    }
    link.flush(&mut wire);

    let mut unpacker = Unpacker::new(2);
    let mut delivered = Vec::new();
    let mut errors = Vec::new();
    let mut scratch = Vec::new();
    for t in &wire {
        scratch.clear();
        match unpacker.unpack_bytes_into(&t.bytes, &mut scratch) {
            Ok(_) => {}
            Err(e) => errors.push(LinkErrorKind::classify(&e)),
        }
        // Items appended before an error were delivered in order too (the
        // sequence window only releases consecutive packets).
        delivered.append(&mut scratch);
    }
    (delivered, errors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole safety property: an arbitrary fault schedule never
    /// panics the unpacker, and whatever it delivers is an exact in-order
    /// prefix of the sent stream — faults manifest only as typed errors
    /// or as withheld (never reordered, never fabricated) items.
    #[test]
    fn unpacker_survives_arbitrary_fault_schedules(
        items in proptest::collection::vec(any_item(), 1..140),
        capacity in 1024usize..4096,
        plan in any_plan(),
    ) {
        let transfers = pack(&items, capacity);
        let sent = transfers.len();
        let (delivered, errors) = receive(plan, transfers);
        prop_assert!(
            items.starts_with(&delivered),
            "delivered items must be an in-order prefix: {} sent packets, \
             {} of {} items delivered, errors {errors:?}",
            sent, delivered.len(), items.len()
        );
        if plan.is_clean() {
            prop_assert_eq!(&delivered, &items);
            prop_assert!(errors.is_empty());
        }
    }

    /// Equal seeds replay the exact same disturbed stream: both the
    /// delivered items and the typed error sequence are bit-for-bit
    /// reproducible, and a different seed (with faults enabled) is free
    /// to differ.
    #[test]
    fn fault_schedules_replay_from_their_seed(
        items in proptest::collection::vec(any_item(), 8..80),
        plan in any_plan(),
    ) {
        let (d1, e1) = receive(plan, pack(&items, 2048));
        let (d2, e2) = receive(plan, pack(&items, 2048));
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(e1, e2);
    }

    /// Every error the link can provoke classifies into the typed
    /// taxonomy without falling through to `Malformed`: CRC framing
    /// catches corruption and truncation *before* the structural parser
    /// ever sees the bytes.
    #[test]
    fn link_faults_never_reach_the_structural_parser(
        items in proptest::collection::vec(any_item(), 8..80),
        plan in any_plan(),
    ) {
        let (_, errors) = receive(plan, pack(&items, 2048));
        for kind in errors {
            prop_assert_ne!(
                kind,
                LinkErrorKind::Malformed,
                "a link fault leaked past the CRC frame into the parser"
            );
        }
    }
}

/// A truncated or bit-flipped frame is rejected *before* the sequence
/// window moves, so a clean retransmission of the same packet still
/// decodes — the invariant packet-level recovery in the engine relies on.
#[test]
fn corrupt_frame_rejection_preserves_unpacker_state() {
    let items: Vec<WireItem> = (0..120u64)
        .map(|i| WireItem::Plain {
            core: 0,
            event: Event::decode(
                EventKind::InstrCommit,
                &vec![i as u8; EventKind::InstrCommit.encoded_len()],
            )
            .expect("exact length"),
        })
        .collect();
    let transfers = pack(&items, 1024);
    assert!(transfers.len() >= 2, "need several packets");

    let mut unpacker = Unpacker::new(2);
    let mut out = Vec::new();
    for (i, t) in transfers.iter().enumerate() {
        if i == 1 {
            // Deliver a corrupted copy first: typed error, no state change.
            let mut bad = t.bytes.to_vec();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x10;
            let before = unpacker.expected_seq();
            let err = unpacker
                .unpack_bytes_into(&bad, &mut out)
                .expect_err("corrupt");
            assert!(matches!(err, CodecError::CrcMismatch { .. }), "{err}");
            assert_eq!(unpacker.expected_seq(), before, "window must not advance");

            // ... and a truncated copy: same story.
            let cut = &t.bytes[..t.bytes.len() - 7];
            let err = unpacker
                .unpack_bytes_into(cut, &mut out)
                .expect_err("truncated");
            assert!(
                matches!(
                    err,
                    CodecError::CrcMismatch { .. } | CodecError::UnexpectedEnd { .. }
                ),
                "{err}"
            );
            assert_eq!(unpacker.expected_seq(), before);
        }
        // The pristine packet (the "retransmission") decodes normally.
        unpacker
            .unpack_bytes_into(&t.bytes, &mut out)
            .expect("pristine packet decodes after rejected copies");
    }
    assert_eq!(out, items);
}

/// The CRC trailer the framing adds costs well under the 2% byte-overhead
/// budget at the default packet capacity.
#[test]
fn crc_trailer_overhead_is_under_two_percent() {
    let items: Vec<WireItem> = (0..4000u64)
        .map(|i| WireItem::Tagged {
            core: (i % 2) as u8,
            tag: OrderTag(i),
            token: Token(i),
            event: Event::decode(
                EventKind::InstrCommit,
                &vec![(i % 251) as u8; EventKind::InstrCommit.encoded_len()],
            )
            .expect("exact length"),
        })
        .collect();
    let transfers = pack(&items, 4096);
    let total: usize = transfers.iter().map(|t| t.bytes.len()).sum();
    let trailer = transfers.len() * difftest_event::wire::CRC_TRAILER_BYTES;
    let overhead = trailer as f64 / (total - trailer) as f64;
    assert!(
        overhead < 0.02,
        "CRC framing overhead {:.3}% exceeds the 2% budget ({} packets, {} bytes)",
        overhead * 100.0,
        transfers.len(),
        total
    );
}
