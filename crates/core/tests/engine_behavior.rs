//! Engine-level behavioral tests: builder validation, timing-mode
//! semantics, replay toggles and report consistency.

use difftest_core::{BuildError, CoSimulation, DiffConfig, RunOutcome, RunReport};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_platform::Platform;
use difftest_workload::Workload;

fn small_workload() -> Workload {
    Workload::linux_boot().seed(9).iterations(120).build()
}

fn run(
    configure: impl FnOnce(difftest_core::CoSimulationBuilder) -> difftest_core::CoSimulationBuilder,
) -> RunReport {
    let b = CoSimulation::builder()
        .dut(DutConfig::nutshell())
        .platform(Platform::palladium())
        .max_cycles(400_000);
    let mut sim = configure(b).build(&small_workload()).expect("valid");
    sim.run()
}

#[test]
fn builder_rejects_bad_parameters() {
    let w = small_workload();
    assert_eq!(
        CoSimulation::builder().max_cycles(0).build(&w).unwrap_err(),
        BuildError::ZeroCycles
    );
    assert_eq!(
        CoSimulation::builder()
            .packet_bytes(16)
            .build(&w)
            .unwrap_err(),
        BuildError::PacketTooSmall(16)
    );
    assert_eq!(
        CoSimulation::builder()
            .fusion_window(0)
            .build(&w)
            .unwrap_err(),
        BuildError::ZeroWindow
    );
}

#[test]
fn report_accounting_is_self_consistent() {
    let r = run(|b| b.config(DiffConfig::BNSD));
    assert_eq!(r.outcome, RunOutcome::GoodTrap);
    // Virtual time can never undercut the DUT-only time.
    let dut_time = r.cycles as f64 / r.dut_only_hz;
    assert!(
        r.sim_time_s >= dut_time * 0.999,
        "{} < {dut_time}",
        r.sim_time_s
    );
    // Speed is cycles / time.
    assert!((r.speed_hz - r.cycles as f64 / r.sim_time_s).abs() / r.speed_hz < 1e-9);
    // The checker stepped every committed instruction.
    assert_eq!(r.check.instructions, r.instructions);
    // Overhead phases sum to something smaller than total time in
    // non-blocking mode (phases overlap).
    assert!(r.overhead.total() > 0.0);
    assert!(r.comm_overhead_fraction() >= 0.0 && r.comm_overhead_fraction() < 1.0);
}

#[test]
fn blocking_overhead_is_additive() {
    // In the blocking baseline, total time == DUT time + all overhead.
    let r = run(|b| b.config(DiffConfig::Z));
    let dut_time = r.cycles as f64 / r.dut_only_hz;
    let expected = dut_time + r.overhead.total();
    assert!(
        (r.sim_time_s - expected).abs() / expected < 1e-6,
        "blocking time {} != dut {} + overhead {}",
        r.sim_time_s,
        dut_time,
        r.overhead.total()
    );
}

#[test]
fn squash_reduces_bytes_and_invokes() {
    let plain = run(|b| b.config(DiffConfig::BN));
    let squashed = run(|b| b.config(DiffConfig::BNSD));
    assert!(
        squashed.bytes * 4 < plain.bytes,
        "{} vs {}",
        squashed.bytes,
        plain.bytes
    );
    assert!(squashed.invokes <= plain.invokes);
    let s = squashed.squash.expect("squash stats present");
    assert!(s.fusion_ratio() > 8.0);
    assert!(plain.squash.is_none());
}

#[test]
fn replay_can_be_disabled() {
    let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, 2_000)];
    let with = run(|b| b.config(DiffConfig::BNSD).bugs(bugs.clone()).replay(true));
    assert_eq!(with.outcome, RunOutcome::Mismatch);
    let f = with.failure.expect("failure report");
    assert!(f.replayed_events > 0, "replay ran");
    assert!(f.precise.is_some());

    let without = run(|b| b.config(DiffConfig::BNSD).bugs(bugs).replay(false));
    assert_eq!(without.outcome, RunOutcome::Mismatch);
    let f = without.failure.expect("failure report");
    assert_eq!(f.replayed_events, 0, "no replay without support");
}

#[test]
fn queue_depth_bounds_the_pipeline() {
    // A deeper in-flight queue can only help (or not hurt) non-blocking
    // throughput.
    let shallow = run(|b| b.config(DiffConfig::BN).queue_depth(1));
    let deep = run(|b| b.config(DiffConfig::BN).queue_depth(64));
    assert!(
        deep.speed_hz >= shallow.speed_hz * 0.999,
        "deep {} < shallow {}",
        deep.speed_hz,
        shallow.speed_hz
    );
}

#[test]
fn coarse_detection_seq_is_no_earlier_than_precise() {
    // Fusion delays detection; Replay walks it back.
    let bugs = vec![BugSpec::new(BugKind::StoreValueCorruption, 3_000)];
    let r = run(|b| b.config(DiffConfig::BNSD).bugs(bugs));
    let f = r.failure.expect("mismatch");
    let precise = f.precise.expect("localized");
    assert!(f.coarse.seq >= precise.seq);
}
