//! Property tests on the communication pipeline's core invariants:
//! pack/unpack is the identity, differencing round-trips across packet
//! boundaries, and the fused-commit codec is self-inverse.

use difftest_core::batch::{BatchUnit, Unpacker};
use difftest_core::{FusedCommit, WireItem, WireKind};
use difftest_event::wire::Reader;
use difftest_event::{
    ArchIntRegState, CsrState, Event, EventKind, InstrCommit, OrderTag, StoreEvent, Token,
};
use proptest::prelude::*;

/// Strategy: an arbitrary event with a randomized payload (drawn from raw
/// bytes of the right length, which every kind decodes total-ly).
fn any_event() -> impl Strategy<Value = Event> {
    (0usize..EventKind::COUNT).prop_flat_map(|k| {
        let kind = EventKind::ALL[k];
        proptest::collection::vec(any::<u8>(), kind.encoded_len())
            .prop_map(move |bytes| Event::decode(kind, &bytes).expect("exact length"))
    })
}

/// Strategy: a non-diff wire item (diff items are exercised separately
/// because vacuous diffs are intentionally dropped by the packer).
fn any_plain_or_tagged() -> impl Strategy<Value = WireItem> {
    (
        any_event(),
        any::<u64>(),
        any::<u64>(),
        0u8..2,
        any::<bool>(),
    )
        .prop_map(|(event, tag, token, core, tagged)| {
            if tagged {
                WireItem::Tagged {
                    core,
                    tag: OrderTag(tag),
                    token: Token(token),
                    event,
                }
            } else {
                WireItem::Plain { core, event }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_is_identity(
        items in proptest::collection::vec(any_plain_or_tagged(), 0..120),
        capacity in 1024usize..8192,
    ) {
        let mut packer = BatchUnit::new(2, capacity);
        let mut unpacker = Unpacker::new(2);
        let mut packets = Vec::new();
        // Split the stream into pseudo-cycles of up to 8 items.
        for chunk in items.chunks(8) {
            packer.push_cycle(chunk, &mut packets);
        }
        packer.flush(&mut packets);
        let decoded: Vec<WireItem> = packets
            .iter()
            .map(|p| unpacker.unpack(p).expect("round-trip"))
            .collect::<Vec<_>>()
            .concat();
        prop_assert_eq!(decoded, items);
    }

    #[test]
    fn packets_respect_capacity(
        items in proptest::collection::vec(any_plain_or_tagged(), 1..200),
        capacity in 1024usize..4096,
    ) {
        let mut packer = BatchUnit::new(2, capacity);
        let mut packets = Vec::new();
        packer.push_cycle(&items, &mut packets);
        packer.flush(&mut packets);
        for p in &packets {
            // A packet may exceed capacity only when a single item does.
            prop_assert!(p.len() <= capacity || p.items == 1,
                "packet {} bytes / {} items over capacity {}", p.len(), p.items, capacity);
        }
    }

    #[test]
    fn diff_stream_round_trips(
        updates in proptest::collection::vec(
            (0usize..24, any::<u64>(), any::<bool>()), 1..60),
        capacity in 1024usize..4096,
    ) {
        // Evolve a CSR file and an integer register file, emitting diffs.
        let mut csrs = [0u64; 24];
        let mut regs = [0u64; 32];
        let mut items = Vec::new();
        for (i, (idx, value, which)) in updates.iter().enumerate() {
            if *which {
                csrs[*idx] = *value;
                items.push(WireItem::Diff {
                    core: 0,
                    tag: OrderTag(i as u64),
                    token: Token(i as u64),
                    event: CsrState { csrs }.into(),
                });
            } else {
                regs[idx + 4] = *value;
                items.push(WireItem::Diff {
                    core: 0,
                    tag: OrderTag(i as u64),
                    token: Token(i as u64),
                    event: ArchIntRegState { regs }.into(),
                });
            }
        }
        let mut packer = BatchUnit::new(1, capacity);
        let mut unpacker = Unpacker::new(1);
        let mut packets = Vec::new();
        for chunk in items.chunks(4) {
            packer.push_cycle(chunk, &mut packets);
        }
        packer.flush(&mut packets);
        let decoded: Vec<WireItem> = packets
            .iter()
            .map(|p| unpacker.unpack(p).expect("round-trip"))
            .collect::<Vec<_>>()
            .concat();
        // Vacuous diffs (identical consecutive states) are dropped by
        // design; every surviving item must match the original stream in
        // order, and every *distinct* state transition must survive.
        let mut orig = items.iter();
        for d in &decoded {
            prop_assert!(
                orig.any(|o| o == d),
                "decoded item not in original order: {d:?}"
            );
        }
        // The final reconstructed state equals the final produced state.
        if let Some(WireItem::Diff { event, .. }) = decoded.last() {
            let last_of_kind = items
                .iter()
                .rev()
                .find_map(|it| match it {
                    WireItem::Diff { event: e, .. } if e.kind() == event.kind() => Some(e),
                    _ => None,
                })
                .expect("kind exists");
            prop_assert_eq!(event, last_of_kind);
        }
    }

    #[test]
    fn fused_commit_codec_round_trips(
        first_seq in any::<u64>(),
        count in any::<u32>(),
        final_pc in any::<u64>(),
        tokens in any::<(u64, u64)>(),
        int_writes in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..31),
        fp_writes in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..31),
    ) {
        let f = FusedCommit {
            first_seq,
            count,
            final_pc,
            token_first: tokens.0,
            token_last: tokens.1,
            int_writes,
            fp_writes,
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), f.encoded_len());
        let mut r = Reader::new(&buf);
        let back = FusedCommit::decode_from(&mut r).expect("round-trip");
        r.finish().expect("exact");
        prop_assert_eq!(back, f);
    }

    #[test]
    fn wire_kind_byte_round_trips(kind in 0usize..EventKind::COUNT, class in 0u8..3) {
        let k = EventKind::ALL[kind];
        let wk = match class {
            0 => WireKind::Plain(k),
            1 => WireKind::Tagged(k),
            _ => WireKind::Diff(k),
        };
        prop_assert_eq!(WireKind::from_u8(wk.to_u8()).expect("valid"), wk);
    }

    #[test]
    fn unpacker_rejects_corruption(
        flip in 2usize..64,
        items in proptest::collection::vec(any_plain_or_tagged(), 4..16),
    ) {
        let mut packer = BatchUnit::new(2, 65536);
        let mut packets = Vec::new();
        packer.push_cycle(&items, &mut packets);
        packer.flush(&mut packets);
        let mut bytes = packets[0].bytes.clone();
        let pos = flip % bytes.len();
        bytes[pos] ^= 0xff;
        let corrupted = difftest_core::batch::Packet { bytes, items: packets[0].items };
        let mut unpacker = Unpacker::new(2);
        // Either a decode error or a *different* item stream — never a
        // silent identical result.
        match unpacker.unpack(&corrupted) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, items),
        }
    }
}

#[test]
fn commit_events_survive_squash_fuse_defuse() {
    // Deterministic cross-check: N commits fused then checked against an
    // interpreter-style accumulation equals the direct write-set.
    use difftest_core::SquashUnit;
    use difftest_event::MonitoredEvent;

    let mut squash = SquashUnit::new(1, 1000);
    let mut out = Vec::new();
    let mut last = [0u64; 32];
    for i in 0..200u64 {
        let wdest = (i % 29 + 1) as u8;
        let wdata = i * 3;
        last[wdest as usize] = wdata;
        squash.push(
            &MonitoredEvent {
                core: 0,
                cycle: i,
                order: OrderTag(i),
                token: Token(i),
                event: InstrCommit {
                    pc: 0x8000_0000 + 4 * i,
                    instr: 0x13,
                    wen: 1,
                    wdest,
                    wdata,
                    flags: 0,
                    rob_idx: 0,
                }
                .into(),
            },
            &mut out,
        );
    }
    squash.flush_all(&mut out);
    assert_eq!(out.len(), 1);
    let WireItem::Fused { fused, .. } = &out[0] else {
        panic!("expected fused record");
    };
    assert_eq!(fused.count, 200);
    for (r, v) in &fused.int_writes {
        assert_eq!(last[*r as usize], *v, "write-set is last-write-wins");
    }
}

#[test]
fn store_events_are_never_dropped_by_packing() {
    // Memory-check events must survive the full pipeline verbatim.
    let mut packer = BatchUnit::new(1, 2048);
    let mut unpacker = Unpacker::new(1);
    let items: Vec<WireItem> = (0..500u64)
        .map(|i| WireItem::Tagged {
            core: 0,
            tag: OrderTag(i),
            token: Token(i),
            event: StoreEvent {
                addr: 0x8000_0000 + 8 * i,
                data: i,
                mask: 0xff,
            }
            .into(),
        })
        .collect();
    let mut packets = Vec::new();
    for chunk in items.chunks(3) {
        packer.push_cycle(chunk, &mut packets);
    }
    packer.flush(&mut packets);
    let decoded: Vec<WireItem> = packets
        .iter()
        .map(|p| unpacker.unpack(p).expect("round-trip"))
        .collect::<Vec<_>>()
        .concat();
    assert_eq!(decoded, items);
}
