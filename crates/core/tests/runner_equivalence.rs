//! Property tests: every in-process runner is observationally equivalent
//! through the [`run_runner`] dispatch — the engine, threaded and
//! sharded substrates drive the identical session pipeline, so verdicts,
//! mismatch identity and typed link errors must be
//! substrate-independent across workload seeds, bug-injection points
//! and fault schedules.
//!
//! The socket runner's leg of the same equivalence lives in the
//! harness-free `tests/socket_runner.rs` of the umbrella crate: it
//! re-executes the current binary as its consumer process, which the
//! default libtest harness (whose `main` never reaches `child_entry`)
//! cannot host.

use difftest_core::{run_runner, DiffConfig, FaultPlan, RunOutcome, RunnerKind, RunnerReport};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_workload::Workload;
use proptest::prelude::*;

/// The three in-process substrates, dispatched through the one entry
/// point the examples use.
const KINDS: [RunnerKind; 3] = [
    RunnerKind::Engine,
    RunnerKind::Threaded,
    RunnerKind::Sharded,
];

fn run(
    kind: RunnerKind,
    config: DiffConfig,
    w: &Workload,
    bugs: Vec<BugSpec>,
    fault: Option<FaultPlan>,
) -> RunnerReport {
    run_runner(
        kind,
        DutConfig::nutshell(),
        config,
        w,
        bugs,
        500_000,
        8,
        fault,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn runners_agree_on_clean_runs(seed in 0u64..1_000) {
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let engine = run(RunnerKind::Engine, DiffConfig::BNSD, &w, Vec::new(), None);
        prop_assert_eq!(engine.outcome, RunOutcome::GoodTrap);
        for kind in [RunnerKind::Threaded, RunnerKind::Sharded] {
            let r = run(kind, DiffConfig::BNSD, &w, Vec::new(), None);
            prop_assert_eq!(r.outcome, engine.outcome, "{:?}", kind);
            prop_assert_eq!(r.items, engine.items, "{:?}: same stream, same items", kind);
            prop_assert_eq!(r.instructions, engine.instructions, "{:?}", kind);
        }
    }

    #[test]
    fn runners_agree_on_mismatch_identity(
        seed in 0u64..1_000,
        bug_cycle in 1_000u64..6_000,
    ) {
        let w = Workload::linux_boot().seed(seed).iterations(300).build();
        let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, bug_cycle)];
        let engine = run(RunnerKind::Engine, DiffConfig::BNSD, &w, bugs.clone(), None);
        for kind in [RunnerKind::Threaded, RunnerKind::Sharded] {
            let r = run(kind, DiffConfig::BNSD, &w, bugs.clone(), None);
            prop_assert_eq!(r.outcome, engine.outcome, "{:?}", kind);
            // Single core: arrival order is identical, so the first
            // failing check is byte-for-byte the same mismatch on every
            // substrate.
            prop_assert_eq!(
                r.mismatch.clone(), engine.mismatch.clone(),
                "{:?}: mismatch identity", kind
            );
        }
    }

    #[test]
    fn runners_agree_on_typed_fault_outcomes(
        seed in 0u64..1_000,
        rate in 5u16..40,
    ) {
        // BN is report-only on every substrate (no retention ring), so
        // the same seeded fault schedule over the same packet stream
        // must yield the identical typed outcome — recovered-clean or
        // the same link error at the same sequence.
        let w = Workload::microbench().seed(seed).iterations(60).build();
        let plan = Some(FaultPlan::uniform(seed ^ 0x9e37, rate));
        let engine = run(RunnerKind::Engine, DiffConfig::BN, &w, Vec::new(), plan);
        prop_assert!(
            matches!(engine.outcome, RunOutcome::GoodTrap | RunOutcome::LinkError { .. }),
            "engine: fault must be recovered or typed, got {:?}", engine.outcome
        );
        for kind in KINDS {
            let r = run(kind, DiffConfig::BN, &w, Vec::new(), plan);
            prop_assert_eq!(r.outcome, engine.outcome, "{:?}", kind);
            prop_assert!(r.mismatch.is_none(), "{:?}: phantom mismatch", kind);
            if let RunOutcome::LinkError { .. } = r.outcome {
                prop_assert!(r.link.total_detected() > 0, "{:?}: untyped link error", kind);
            }
        }
    }
}
