//! Cross-runner fault acceptance (deterministic): under seeded
//! drop/duplicate/reorder/truncate/corrupt schedules, every runner —
//! virtual-time engine, threaded, and sharded — terminates with a typed
//! [`RunOutcome::LinkError`] or a cleanly recovered verdict, never a
//! panic and never a phantom mismatch. The engine's BNSD configuration
//! additionally *recovers*: its packet retention ring retransmits lost
//! or damaged packets, masking fault schedules the report-only runners
//! must surface as errors.

use difftest_core::{
    run_sharded_faulty, run_threaded_faulty, CoSimulation, DiffConfig, FaultPlan, RunOutcome,
    RunReport,
};
use difftest_dut::DutConfig;
use difftest_platform::Platform;
use difftest_stats::{FlightKind, FlightSnapshot};
use difftest_workload::Workload;

/// The schedule grid: a handful of seeds crossed with per-fault rates
/// from gentle to hostile (a uniform plan applies its rate to all five
/// fault kinds, so 40‰ ≈ one fault per five packets).
const SEEDS: [u64; 3] = [11, 29, 4242];
const RATES: [u16; 3] = [5, 20, 40];

fn workload() -> Workload {
    Workload::microbench().seed(3).iterations(60).build()
}

fn engine_run(config: DiffConfig, plan: Option<FaultPlan>) -> RunReport {
    let mut builder = CoSimulation::builder()
        .dut(DutConfig::nutshell())
        .platform(Platform::palladium())
        .config(config)
        .max_cycles(400_000);
    if let Some(p) = plan {
        builder = builder.fault_plan(p);
    }
    let mut sim = builder.build(&workload()).expect("build");
    sim.run()
}

/// A faulted run may end recovered-clean or with a typed link error —
/// anything else (mismatch, cycle exhaustion) means a fault leaked past
/// the link layer into the checker.
fn assert_contained(outcome: RunOutcome, ctx: &str) {
    assert!(
        matches!(outcome, RunOutcome::GoodTrap | RunOutcome::LinkError { .. }),
        "{ctx}: fault must be recovered or typed, got {outcome:?}"
    );
}

/// On a typed link error the attached flight snapshot must hold the
/// failing sequence's link-error record with at least one transport
/// record (send/receive/retransmit) before it — the minimum context a
/// post-mortem needs.
fn assert_flight_diagnosable(flight: Option<&FlightSnapshot>, seq: u32, ctx: &str) {
    let snap = flight.unwrap_or_else(|| panic!("{ctx}: link error without a flight snapshot"));
    let pos = snap
        .find(FlightKind::LinkError, seq)
        .unwrap_or_else(|| panic!("{ctx}: snapshot missing link_error record for seq {seq}"));
    assert!(
        snap.records[..pos].iter().any(|r| r.kind.is_transport()),
        "{ctx}: no transport record precedes the link error (pos {pos} of {})",
        snap.records.len()
    );
}

#[test]
fn engine_contains_faults_across_the_schedule_grid() {
    for config in [DiffConfig::B, DiffConfig::BN, DiffConfig::BNSD] {
        for seed in SEEDS {
            for rate in RATES {
                let plan = FaultPlan::uniform(seed, rate);
                let r = engine_run(config, Some(plan));
                let ctx = format!("{config:?} seed={seed} rate={rate}‰");
                assert_contained(r.outcome, &ctx);
                assert!(
                    r.failure.is_none(),
                    "{ctx}: phantom mismatch {:?}",
                    r.failure
                );
                let fault = r.fault.expect("fault stats present when a plan is set");
                if let RunOutcome::LinkError { seq, .. } = r.outcome {
                    assert!(
                        fault.total_faults() > 0,
                        "{ctx}: link error without an injected fault"
                    );
                    assert!(r.link.total_detected() > 0, "{ctx}: untyped link error");
                    assert_flight_diagnosable(r.flight.as_ref(), seq, &ctx);
                } else {
                    assert!(r.flight.is_none(), "{ctx}: clean run carries a snapshot");
                }
            }
        }
    }
}

#[test]
fn engine_bnsd_recovers_via_packet_retransmission() {
    // Across the grid the BNSD retention ring must mask at least some
    // schedules end-to-end: faults injected, packets re-sent, clean trap.
    let mut recovered_runs = 0u32;
    let mut retransmit_bytes = 0u64;
    for seed in SEEDS {
        for rate in RATES {
            let r = engine_run(DiffConfig::BNSD, Some(FaultPlan::uniform(seed, rate)));
            if r.outcome == RunOutcome::GoodTrap
                && r.fault.is_some_and(|f| f.total_faults() > 0)
                && r.link.recovered > 0
            {
                recovered_runs += 1;
                retransmit_bytes += r.link.retransmit_bytes;
                // Retransmissions are charged through the LogGP model,
                // not smuggled: bytes crossed the link twice.
                assert!(r.link.retransmits >= r.link.recovered);
            }
        }
    }
    assert!(
        recovered_runs > 0,
        "no BNSD run recovered from an injected fault across the grid"
    );
    assert!(retransmit_bytes > 0, "recovery re-sent zero bytes");
}

#[test]
fn engine_fault_outcomes_replay_from_their_seed() {
    for rate in RATES {
        let plan = FaultPlan::uniform(77, rate);
        let a = engine_run(DiffConfig::BNSD, Some(plan));
        let b = engine_run(DiffConfig::BNSD, Some(plan));
        assert_eq!(a.outcome, b.outcome, "rate={rate}‰");
        assert_eq!(a.link, b.link, "rate={rate}‰");
        assert_eq!(a.fault, b.fault, "rate={rate}‰");
    }
}

#[test]
fn engine_clean_plan_changes_nothing() {
    let clean = engine_run(DiffConfig::BNSD, Some(FaultPlan::clean(5)));
    assert_eq!(clean.outcome, RunOutcome::GoodTrap);
    assert_eq!(clean.link.total_detected(), 0);
    assert_eq!(clean.fault.expect("plan set").total_faults(), 0);
    let bare = engine_run(DiffConfig::BNSD, None);
    assert_eq!(bare.outcome, RunOutcome::GoodTrap);
    assert!(bare.fault.is_none());
    assert_eq!(clean.instructions, bare.instructions);
}

#[test]
fn threaded_runner_contains_faults() {
    let w = workload();
    for seed in SEEDS {
        for rate in RATES {
            let plan = FaultPlan::uniform(seed, rate);
            let r = run_threaded_faulty(
                DutConfig::nutshell(),
                DiffConfig::BNSD,
                &w,
                Vec::new(),
                400_000,
                8,
                Some(plan),
            );
            let ctx = format!("threaded seed={seed} rate={rate}‰");
            assert_contained(r.outcome, &ctx);
            assert!(r.mismatch.is_none(), "{ctx}: phantom mismatch");
            if let RunOutcome::LinkError { seq, .. } = r.outcome {
                assert!(r.link.total_detected() > 0, "{ctx}: untyped link error");
                assert!(
                    r.fault.is_some_and(|f| f.total_faults() > 0),
                    "{ctx}: link error without an injected fault"
                );
                assert_flight_diagnosable(r.flight.as_ref(), seq, &ctx);
            } else {
                assert!(r.flight.is_none(), "{ctx}: clean run carries a snapshot");
            }
        }
    }
}

#[test]
fn threaded_clean_link_still_passes() {
    let r = run_threaded_faulty(
        DutConfig::nutshell(),
        DiffConfig::BNSD,
        &workload(),
        Vec::new(),
        400_000,
        8,
        Some(FaultPlan::clean(1)),
    );
    assert_eq!(r.outcome, RunOutcome::GoodTrap);
    assert_eq!(r.link.total_detected(), 0);
}

#[test]
fn sharded_runner_contains_faults() {
    let w = Workload::linux_boot().seed(9).iterations(120).build();
    for seed in SEEDS {
        for rate in RATES {
            let plan = FaultPlan::uniform(seed, rate);
            let r = run_sharded_faulty(
                DutConfig::xiangshan_minimal(),
                DiffConfig::BNSD,
                &w,
                Vec::new(),
                400_000,
                8,
                Some(plan),
            );
            let ctx = format!("sharded seed={seed} rate={rate}‰");
            assert_contained(r.outcome, &ctx);
            assert!(r.mismatch.is_none(), "{ctx}: phantom mismatch");
            if let RunOutcome::LinkError { kind, seq, core } = r.outcome {
                assert!(r.link.total_detected() > 0, "{ctx}: untyped link error");
                assert!(
                    (core as usize) < DutConfig::xiangshan_minimal().cores as usize,
                    "{ctx}: {kind} attributed to nonexistent core {core}"
                );
                assert_flight_diagnosable(r.flight.as_ref(), seq, &ctx);
            } else {
                assert!(r.flight.is_none(), "{ctx}: clean run carries a snapshot");
            }
        }
    }
}

#[test]
fn sharded_clean_link_still_passes() {
    let w = Workload::linux_boot().seed(9).iterations(120).build();
    let r = run_sharded_faulty(
        DutConfig::xiangshan_minimal(),
        DiffConfig::BNSD,
        &w,
        Vec::new(),
        400_000,
        8,
        Some(FaultPlan::clean(1)),
    );
    assert_eq!(r.outcome, RunOutcome::GoodTrap);
    assert_eq!(r.link.total_detected(), 0);
}

/// Drop-only schedules are the pure ARQ case: every loss is recoverable
/// from the retention ring, so the BNSD engine must finish clean while
/// counting each recovery.
#[test]
fn engine_bnsd_masks_pure_packet_loss() {
    let mut plan = FaultPlan::clean(13);
    plan.drop_per_mille = 60;
    let r = engine_run(DiffConfig::BNSD, Some(plan));
    let dropped = r.fault.expect("plan set").dropped;
    assert!(dropped > 0, "schedule never dropped a packet");
    assert_eq!(
        r.outcome,
        RunOutcome::GoodTrap,
        "pure loss must be fully recoverable (dropped={dropped}, link={:?})",
        r.link
    );
    assert!(r.link.recovered > 0);
    assert_eq!(r.link.recovered, r.link.retransmits);
}
