//! Span-tracing integration tests (DESIGN.md §15): a FakeClock-driven
//! engine run exports a deterministic, well-formed Chrome trace whose
//! pack → unpack → check spans are linked by `pkt` flow arrows per
//! sequence number, and enabling tracing never changes any runner's
//! verdict, item count or mismatch identity.
//!
//! Tracers are injected through the session/builder seam rather than
//! `DIFFTEST_TRACE` — libtest runs these cases on parallel threads, so
//! process-global env mutation would race. The socket runner's env-var
//! leg lives in the harness-free `tests/socket_runner.rs` of the
//! umbrella crate.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use difftest_core::{
    run_intervals_session, run_sharded_session, run_threaded_session, CoSimulation, DiffConfig,
    IntervalTuning, RunOutcome, RunReport, Session,
};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_stats::{parse_json, validate_trace, FakeClock, Json, Tracer};
use difftest_workload::Workload;
use proptest::prelude::*;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(0);

/// A collision-free trace path: cases run on parallel libtest threads,
/// possibly next to a concurrent `cargo test` of the same crate.
fn trace_path(tag: &str) -> PathBuf {
    let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "difftest-span-{}-{tag}-{n}.json",
        std::process::id()
    ))
}

/// A deterministic tracer: every timestamp reads 0 from the FakeClock,
/// so the exported bytes are a pure function of the event stream.
fn fake_tracer(path: &Path) -> Tracer {
    Tracer::with_clock(path.to_path_buf(), Arc::new(FakeClock::default()), 0)
}

fn session(dut: DutConfig, w: &Workload, bugs: Vec<BugSpec>) -> Session {
    Session::new(dut, DiffConfig::BNSD, w, bugs, 500_000, 8, None)
}

fn dual_core_minimal() -> DutConfig {
    let mut cfg = DutConfig::xiangshan_minimal();
    cfg.cores = 2;
    cfg
}

fn engine_report(path: &Path) -> RunReport {
    let w = Workload::microbench().seed(11).iterations(40).build();
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::nutshell())
        .config(DiffConfig::BNSD)
        .max_cycles(500_000)
        .tracer(fake_tracer(path))
        .build(&w)
        .expect("build");
    sim.run()
}

#[test]
fn engine_trace_is_deterministic_and_causally_linked() {
    let p1 = trace_path("engine-a");
    let p2 = trace_path("engine-b");
    let r1 = engine_report(&p1);
    let r2 = engine_report(&p2);
    assert_eq!(r1.common.outcome, RunOutcome::GoodTrap);
    assert_eq!(r2.common.outcome, RunOutcome::GoodTrap);
    assert!(r1.common.metrics.counters.get("trace.spans_recorded") > 0);
    assert_eq!(r1.common.metrics.counters.get("trace.spans_dropped"), 0);

    let text = std::fs::read_to_string(&p1).expect("trace written");
    // Same workload, same FakeClock: two runs must export identical
    // bytes — event order, ids and (all-zero) timestamps included.
    assert_eq!(text, std::fs::read_to_string(&p2).expect("trace written"));

    let summary = validate_trace(&text).expect("well-formed trace");
    assert_eq!(summary.tracks, 2, "one producer + one consumer track");
    assert!(summary.spans > 0, "duration events present");
    assert!(summary.flows > 0, "matched flow pairs present");

    // Exact span vocabulary, track placement and per-seq causality.
    let root = parse_json(&text).expect("parse");
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let mut pack = BTreeSet::new();
    let mut unpack = BTreeSet::new();
    let mut check = BTreeSet::new();
    let (mut flow_out, mut flow_in) = (0usize, 0usize);
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        let pid = ev.get("pid").and_then(Json::as_num).expect("pid") as u32;
        match ph {
            "X" => {
                let id = ev
                    .get("args")
                    .and_then(|a| a.get("id"))
                    .and_then(Json::as_num)
                    .expect("span id") as u64;
                match name {
                    "pack" => {
                        assert_eq!(pid, 1, "pack lives on the producer");
                        pack.insert(id);
                    }
                    "unpack" => {
                        assert_eq!(pid, 2, "unpack lives on the consumer");
                        unpack.insert(id);
                    }
                    "check" => {
                        assert_eq!(pid, 2, "check lives on the consumer");
                        check.insert(id);
                    }
                    other => panic!("unexpected span name {other:?}"),
                }
            }
            "s" => {
                assert_eq!((name, pid), ("pkt", 1));
                flow_out += 1;
            }
            "f" => {
                assert_eq!((name, pid), ("pkt", 2));
                flow_in += 1;
            }
            _ => {}
        }
    }
    assert!(!pack.is_empty());
    assert_eq!(pack, unpack, "every packed seq is unpacked");
    assert_eq!(unpack, check, "every unpacked seq is checked");
    // Clean link: every packet's flow arrow is matched end-to-end.
    assert_eq!(flow_out, pack.len());
    assert_eq!(flow_in, pack.len());
    assert_eq!(summary.flows, pack.len());

    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

#[test]
fn threaded_trace_validates() {
    let p = trace_path("threaded");
    let w = Workload::microbench().seed(3).iterations(40).build();
    let r = run_threaded_session(
        session(DutConfig::nutshell(), &w, Vec::new()).with_tracer(Some(fake_tracer(&p))),
    );
    assert_eq!(r.common.outcome, RunOutcome::GoodTrap);
    assert!(r.common.metrics.counters.get("trace.spans_recorded") > 0);
    let summary = validate_trace(&std::fs::read_to_string(&p).expect("trace written"))
        .expect("well-formed trace");
    assert_eq!(summary.tracks, 2);
    assert!(summary.spans > 0 && summary.flows > 0);
    let _ = std::fs::remove_file(&p);
}

#[test]
fn sharded_trace_has_per_core_tracks() {
    let p = trace_path("sharded");
    let w = Workload::microbench().seed(5).iterations(40).build();
    let r = run_sharded_session(
        session(dual_core_minimal(), &w, Vec::new()).with_tracer(Some(fake_tracer(&p))),
    );
    assert_eq!(r.common.outcome, RunOutcome::GoodTrap);
    assert!(r.common.metrics.counters.get("trace.spans_recorded") > 0);
    let summary = validate_trace(&std::fs::read_to_string(&p).expect("trace written"))
        .expect("well-formed trace");
    // Two producer tracks (dut-core0/1) + two worker tracks.
    assert_eq!(summary.tracks, 4);
    assert!(summary.spans > 0 && summary.flows > 0);
    let _ = std::fs::remove_file(&p);
}

#[test]
fn intervals_trace_carries_worker_busy_counter() {
    let p = trace_path("intervals");
    let w = Workload::microbench().seed(7).iterations(60).build();
    let r = run_intervals_session(
        session(DutConfig::nutshell(), &w, Vec::new()).with_tracer(Some(fake_tracer(&p))),
        IntervalTuning {
            interval_insns: 256,
            workers: 2,
        },
    );
    assert_eq!(r.common.outcome, RunOutcome::GoodTrap);
    assert!(r.common.metrics.counters.get("trace.spans_recorded") > 0);
    let text = std::fs::read_to_string(&p).expect("trace written");
    let summary = validate_trace(&text).expect("well-formed trace");
    assert!(summary.spans > 0 && summary.flows > 0);
    assert!(
        summary.counters > 0,
        "workers emit interval.workers_busy samples"
    );
    assert!(
        text.contains("\"interval.workers_busy\""),
        "counter track named after the gauge"
    );
    assert!(
        text.contains("\"name\":\"interval\",\"cat\":\"difftest\""),
        "per-job interval spans present"
    );
    let _ = std::fs::remove_file(&p);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tracing is observation only: a traced run and an untraced run of
    /// the same session agree on verdict, items and instructions for
    /// every in-process substrate.
    #[test]
    fn tracing_never_changes_clean_verdicts(seed in 0u64..1_000) {
        let w = Workload::microbench().seed(seed).iterations(40).build();

        let base = engine_untraced(&w);
        let p = trace_path("prop-engine");
        let traced = {
            let mut sim = CoSimulation::builder()
                .dut(DutConfig::nutshell())
                .config(DiffConfig::BNSD)
                .max_cycles(500_000)
                .tracer(fake_tracer(&p))
                .build(&w)
                .expect("build");
            sim.run()
        };
        prop_assert_eq!(traced.common.outcome, base.common.outcome);
        prop_assert_eq!(traced.common.items, base.common.items);
        prop_assert_eq!(traced.common.instructions, base.common.instructions);
        let _ = std::fs::remove_file(&p);

        let base = run_threaded_session(session(DutConfig::nutshell(), &w, Vec::new()));
        let p = trace_path("prop-threaded");
        let traced = run_threaded_session(
            session(DutConfig::nutshell(), &w, Vec::new()).with_tracer(Some(fake_tracer(&p))),
        );
        prop_assert_eq!(traced.common.outcome, base.common.outcome);
        prop_assert_eq!(traced.common.items, base.common.items);
        prop_assert_eq!(traced.common.instructions, base.common.instructions);
        let _ = std::fs::remove_file(&p);

        let base = run_sharded_session(session(dual_core_minimal(), &w, Vec::new()));
        let p = trace_path("prop-sharded");
        let traced = run_sharded_session(
            session(dual_core_minimal(), &w, Vec::new()).with_tracer(Some(fake_tracer(&p))),
        );
        prop_assert_eq!(traced.common.outcome, base.common.outcome);
        prop_assert_eq!(traced.common.items, base.common.items);
        prop_assert_eq!(traced.common.instructions, base.common.instructions);
        let _ = std::fs::remove_file(&p);

        let tuning = IntervalTuning { interval_insns: 512, workers: 2 };
        let base = run_intervals_session(
            session(DutConfig::nutshell(), &w, Vec::new()), tuning,
        );
        let p = trace_path("prop-intervals");
        let traced = run_intervals_session(
            session(DutConfig::nutshell(), &w, Vec::new()).with_tracer(Some(fake_tracer(&p))),
            tuning,
        );
        prop_assert_eq!(traced.common.outcome, base.common.outcome);
        prop_assert_eq!(traced.common.items, base.common.items);
        prop_assert_eq!(traced.common.instructions, base.common.instructions);
        let _ = std::fs::remove_file(&p);
    }

    /// Same property on failing runs: the first detected divergence is
    /// byte-for-byte identical with tracing enabled.
    #[test]
    fn tracing_never_changes_mismatch_identity(
        seed in 0u64..200,
        bug_cycle in 1_000u64..6_000,
    ) {
        let w = Workload::linux_boot().seed(seed).iterations(300).build();
        let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, bug_cycle)];
        let base = run_threaded_session(session(DutConfig::nutshell(), &w, bugs.clone()));
        let p = trace_path("prop-bug");
        let traced = run_threaded_session(
            session(DutConfig::nutshell(), &w, bugs).with_tracer(Some(fake_tracer(&p))),
        );
        prop_assert_eq!(traced.common.outcome, base.common.outcome);
        prop_assert_eq!(traced.common.mismatch, base.common.mismatch);
        prop_assert_eq!(traced.common.items, base.common.items);
        let _ = std::fs::remove_file(&p);
    }
}

fn engine_untraced(w: &Workload) -> RunReport {
    let mut sim = CoSimulation::builder()
        .dut(DutConfig::nutshell())
        .config(DiffConfig::BNSD)
        .max_cycles(500_000)
        .build(w)
        .expect("build");
    sim.run()
}
