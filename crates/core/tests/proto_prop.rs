//! Hostile-bytes property tests for the DTH wire codec.
//!
//! The protocol layer fronts a daemon that accepts connections from
//! anything able to dial a socket, so the decoder is held to a
//! stricter bar than "round-trips what our writers produce": truncated,
//! bit-flipped and length-inflated streams must all yield typed
//! [`ProtoError`]s or a need-more-bytes stall — never a panic, and
//! never an allocation sized by an attacker-controlled length prefix.

use difftest_core::pool::PooledBuf;
use difftest_core::proto::{
    write_end_frame, write_hello, write_transfer_frame, MAX_FRAME_BYTES, MAX_HELLO_WORDS,
};
use difftest_core::{
    ClientMsg, DiffConfig, FrameDecoder, Hello, ProtoError, ProtoSession, Transfer,
};
use proptest::prelude::*;

/// A syntactically valid wire stream: hello, `transfers` frames, end.
fn valid_stream(words: &[u32], payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    let hello = Hello {
        config: DiffConfig::BNSD,
        cores: 1,
        kill_after: 0,
        trace: false,
        epoch_wall_ns: 42,
        words: words.to_vec(),
    };
    write_hello(&mut out, &hello).expect("vec write");
    for (i, p) in payloads.iter().enumerate() {
        let t = Transfer {
            bytes: PooledBuf::detached(p.clone()),
            core: 0,
            invokes: 1,
            items: i as u32,
        };
        write_transfer_frame(&mut out, &t).expect("vec write");
    }
    write_end_frame(&mut out, payloads.len() as u32).expect("vec write");
    out
}

/// Decodes everything the decoder will give for `bytes`, packaging the
/// outcome so properties can compare runs.
fn decode_all(bytes: &[u8], chunk: usize) -> (Vec<String>, Option<ProtoError>) {
    let mut dec = FrameDecoder::new();
    let mut seen = Vec::new();
    for part in bytes.chunks(chunk.max(1)) {
        dec.push(part);
        loop {
            match dec.next_msg() {
                Ok(Some(ClientMsg::Hello(h))) => {
                    seen.push(format!("hello:{}w", h.words.len()));
                }
                Ok(Some(ClientMsg::Transfer(t))) => {
                    seen.push(format!("transfer:{}:{:?}", t.items, &t.bytes[..]));
                }
                Ok(Some(ClientMsg::End { produced })) => {
                    seen.push(format!("end:{produced}"));
                }
                Ok(None) => break,
                Err(e) => return (seen, Some(e)),
            }
        }
    }
    (seen, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any truncation of a valid stream decodes a prefix of its
    /// messages and then stalls waiting for more — truncation is never
    /// an error, a panic, or a phantom message.
    #[test]
    fn truncation_yields_a_clean_prefix(
        words in proptest::collection::vec(any::<u32>(), 0..24),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..6),
        cut in any::<u16>(),
        chunk in 1usize..512,
    ) {
        let full = valid_stream(&words, &payloads);
        let (complete, err) = decode_all(&full, chunk);
        prop_assert!(err.is_none(), "valid stream errored: {err:?}");
        let cut = cut as usize % (full.len() + 1);
        let (partial, err) = decode_all(&full[..cut], chunk);
        prop_assert!(err.is_none(), "truncated stream errored: {err:?}");
        prop_assert!(partial.len() <= complete.len());
        prop_assert_eq!(&complete[..partial.len()], &partial[..]);
    }

    /// A single flipped bit anywhere in the stream must never panic the
    /// decoder or a push-driven session: it decodes up to the damage
    /// and then yields a typed error, stalls, or (post-hello, where the
    /// CRC owns integrity) decides the stream like the consumer would.
    #[test]
    fn bit_flips_never_panic(
        words in proptest::collection::vec(any::<u32>(), 0..16),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 0..5),
        pos in any::<u32>(),
        bit in 0u8..8,
        chunk in 1usize..256,
    ) {
        let mut bytes = valid_stream(&words, &payloads);
        let len = bytes.len();
        bytes[pos as usize % len] ^= 1 << bit;
        let (_, _) = decode_all(&bytes, chunk);
        // The session layer on top must be exactly as calm about it.
        let mut sess = ProtoSession::new();
        for part in bytes.chunks(chunk) {
            if sess.feed(part).is_err() || sess.done() {
                break;
            }
        }
        sess.eof();
    }

    /// Arbitrary garbage fed to a fresh session is rejected or stalls;
    /// it never panics and never produces a result blob.
    #[test]
    fn garbage_never_yields_a_result(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..64,
    ) {
        let mut sess = ProtoSession::new();
        let mut rejected = false;
        for part in bytes.chunks(chunk) {
            if sess.feed(part).is_err() {
                rejected = true;
                break;
            }
        }
        if !rejected && !sess.hello_seen() {
            prop_assert_eq!(sess.eof(), difftest_core::MuxStep::NoSession);
            prop_assert!(sess.take_result().is_none());
        }
    }

    /// Length prefixes are judged the moment they are readable: a hello
    /// advertising more memory words than RAM holds, or a frame longer
    /// than [`MAX_FRAME_BYTES`], is a typed error from the header alone
    /// — the decoder never buffers toward an attacker-sized payload.
    #[test]
    fn oversize_lengths_are_rejected_from_the_header(
        words_excess in 1u32..1024,
        frame_excess in 1u32..1024,
        garbage_len in any::<u32>(),
    ) {
        // Hello header with an inflated words count and no payload.
        let mut hello = Vec::new();
        hello.extend_from_slice(b"DTH1");
        hello.push(difftest_core::proto::PROTO_VERSION);
        hello.push(3); // BNSD
        hello.extend_from_slice(&1u32.to_le_bytes()); // cores
        hello.extend_from_slice(&0u32.to_le_bytes()); // kill_after
        hello.push(0); // trace
        hello.extend_from_slice(&42u64.to_le_bytes()); // epoch
        let bad_words = MAX_HELLO_WORDS as u32 + words_excess;
        hello.extend_from_slice(&bad_words.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&hello);
        let header_high_water = dec.buffered();
        prop_assert!(matches!(
            dec.next_msg(),
            Err(ProtoError::Oversize { .. })
        ));
        prop_assert!(header_high_water <= hello.len());

        // Valid hello, then a transfer frame with an inflated length.
        let mut stream = valid_stream(&[], &[]);
        stream.truncate(stream.len() - 5); // drop the end frame
        let mut frame = vec![0u8, 0]; // FRAME_TRANSFER, core
        frame.extend_from_slice(&1u32.to_le_bytes()); // items
        let bad_len = (MAX_FRAME_BYTES as u32).saturating_add(frame_excess);
        frame.extend_from_slice(&bad_len.to_le_bytes());
        // Even with trailing bytes available, the header alone decides.
        frame.extend_from_slice(&vec![0u8; garbage_len as usize % 256]);
        stream.extend_from_slice(&frame);
        let (msgs, err) = decode_all(&stream, 7);
        prop_assert_eq!(msgs.len(), 1, "hello only");
        prop_assert!(matches!(err, Some(ProtoError::Oversize { .. })), "{err:?}");
    }

    /// Chunking is invisible: any fragmentation of a valid stream
    /// decodes the identical message sequence as one-shot delivery.
    #[test]
    fn incremental_decode_equals_oneshot(
        words in proptest::collection::vec(any::<u32>(), 0..24),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..6),
        chunk in 1usize..96,
    ) {
        let full = valid_stream(&words, &payloads);
        let oneshot = decode_all(&full, full.len());
        let chunked = decode_all(&full, chunk);
        prop_assert_eq!(oneshot, chunked);
    }
}
