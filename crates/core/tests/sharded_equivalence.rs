//! Property tests: the sharded runner is observationally equivalent to the
//! single-consumer threaded runner — same outcome and, on a single core,
//! the identical mismatch — across workload seeds and bug-injection
//! points. The shards only parallelize checking; they must never change
//! what is checked.

use difftest_core::engine::{DiffConfig, RunOutcome};
use difftest_core::{run_sharded, run_threaded};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_workload::Workload;
use proptest::prelude::*;

fn dual_core_minimal() -> DutConfig {
    let mut cfg = DutConfig::xiangshan_minimal();
    cfg.cores = 2;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_matches_threaded_on_clean_runs(seed in 0u64..1_000) {
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let t = run_threaded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        let s = run_sharded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        prop_assert_eq!(s.outcome, t.outcome);
        prop_assert_eq!(s.outcome, RunOutcome::GoodTrap);
        prop_assert_eq!(s.items, t.items, "both runners check the same stream");
    }

    #[test]
    fn sharded_matches_threaded_on_buggy_runs(
        seed in 0u64..1_000,
        bug_cycle in 1_000u64..6_000,
    ) {
        let w = Workload::linux_boot().seed(seed).iterations(300).build();
        let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, bug_cycle)];
        let t = run_threaded(
            DutConfig::xiangshan_minimal(), DiffConfig::BNSD, &w, bugs.clone(), 500_000, 8,
        );
        let s = run_sharded(
            DutConfig::xiangshan_minimal(), DiffConfig::BNSD, &w, bugs, 500_000, 8,
        );
        prop_assert_eq!(s.outcome, t.outcome);
        // Single core: arrival order is identical, so the first failing
        // check must be byte-for-byte the same mismatch.
        prop_assert_eq!(s.mismatch.clone(), t.mismatch.clone());
        // Every checker mismatch carries a flight-recorder snapshot with
        // the mismatch record in it.
        if let Some(m) = &t.mismatch {
            let tf = t.flight.as_ref().expect("threaded mismatch without flight snapshot");
            let sf = s.flight.as_ref().expect("sharded mismatch without flight snapshot");
            for (name, snap) in [("threaded", tf), ("sharded", sf)] {
                let hit = snap.records.iter().any(|r| {
                    r.kind == difftest_stats::FlightKind::Mismatch && r.value == m.seq
                });
                prop_assert!(hit, "{} snapshot missing the mismatch record", name);
            }
        } else {
            prop_assert!(t.flight.is_none() && s.flight.is_none());
        }
    }

    #[test]
    fn metrics_are_deterministic_across_workers(seed in 0u64..1_000) {
        // Cross-worker metrics determinism: N workers merged in core
        // order must reproduce exactly what the single-consumer runner
        // measured on the same stream — histogram for histogram.
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let t = run_threaded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        let s = run_sharded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        // Single core: both runners pack the identical packet stream, so
        // the merged histograms must match the threaded ones bucket for
        // bucket (phase timings are wall-clock and naturally differ).
        prop_assert_eq!(
            s.metrics.histogram("packet.bytes"), t.metrics.histogram("packet.bytes"),
            "merged packet.bytes histogram diverged from the threaded runner"
        );
        prop_assert_eq!(
            s.metrics.histogram("packet.items"), t.metrics.histogram("packet.items")
        );
        for key in ["obs.transfers", "obs.items", "obs.bytes"] {
            prop_assert_eq!(s.metrics.counters.get(key), t.metrics.counters.get(key), "{}", key);
        }
        // And a re-run with the same seed reproduces the merged registry
        // exactly: worker scheduling must not leak into the aggregation.
        let s2 = run_sharded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        prop_assert_eq!(
            s.metrics.histogram("packet.bytes"), s2.metrics.histogram("packet.bytes")
        );
        for key in ["obs.transfers", "obs.items", "obs.bytes"] {
            prop_assert_eq!(s.metrics.counters.get(key), s2.metrics.counters.get(key), "{}", key);
        }
    }

    #[test]
    fn dual_core_item_totals_are_deterministic(seed in 0u64..1_000) {
        // Multi-core: the threaded runner packs all cores into one
        // AccelUnit while the sharded one packs per core, so packet
        // boundaries (and their histograms) legitimately differ — but
        // the checked item volume is schedule-independent.
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let t = run_threaded(
            dual_core_minimal(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        let s = run_sharded(
            dual_core_minimal(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        prop_assert_eq!(s.outcome, RunOutcome::GoodTrap);
        prop_assert_eq!(
            s.metrics.counters.get("obs.items"),
            t.metrics.counters.get("obs.items"),
            "clean dual-core runs must check the same item volume"
        );
        let s2 = run_sharded(
            dual_core_minimal(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        prop_assert_eq!(
            s.metrics.histogram("packet.bytes"), s2.metrics.histogram("packet.bytes"),
            "sharded re-run must merge to the identical histogram"
        );
        prop_assert_eq!(
            s.metrics.counters.get("obs.bytes"), s2.metrics.counters.get("obs.bytes")
        );
    }

    #[test]
    fn sharded_matches_threaded_on_dual_core(seed in 0u64..1_000, buggy in any::<bool>()) {
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let bugs = if buggy {
            vec![BugSpec::new(BugKind::RegWriteCorruption, 2_000)]
        } else {
            Vec::new()
        };
        let t = run_threaded(
            dual_core_minimal(), DiffConfig::BNSD, &w, bugs.clone(), 500_000, 8,
        );
        let s = run_sharded(
            dual_core_minimal(), DiffConfig::BNSD, &w, bugs, 500_000, 8,
        );
        // Across cores the two runners may stop at different points in the
        // interleaving, but the verdict class must agree.
        prop_assert_eq!(s.outcome, t.outcome);
        prop_assert_eq!(s.mismatch.is_some(), t.mismatch.is_some());
    }
}
