//! Property tests: the sharded runner is observationally equivalent to the
//! single-consumer threaded runner — same outcome and, on a single core,
//! the identical mismatch — across workload seeds and bug-injection
//! points. The shards only parallelize checking; they must never change
//! what is checked.

use difftest_core::engine::{DiffConfig, RunOutcome};
use difftest_core::{run_sharded, run_threaded};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_workload::Workload;
use proptest::prelude::*;

fn dual_core_minimal() -> DutConfig {
    let mut cfg = DutConfig::xiangshan_minimal();
    cfg.cores = 2;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_matches_threaded_on_clean_runs(seed in 0u64..1_000) {
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let t = run_threaded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        let s = run_sharded(
            DutConfig::nutshell(), DiffConfig::BNSD, &w, Vec::new(), 500_000, 8,
        );
        prop_assert_eq!(s.outcome, t.outcome);
        prop_assert_eq!(s.outcome, RunOutcome::GoodTrap);
        prop_assert_eq!(s.items, t.items, "both runners check the same stream");
    }

    #[test]
    fn sharded_matches_threaded_on_buggy_runs(
        seed in 0u64..1_000,
        bug_cycle in 1_000u64..6_000,
    ) {
        let w = Workload::linux_boot().seed(seed).iterations(300).build();
        let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, bug_cycle)];
        let t = run_threaded(
            DutConfig::xiangshan_minimal(), DiffConfig::BNSD, &w, bugs.clone(), 500_000, 8,
        );
        let s = run_sharded(
            DutConfig::xiangshan_minimal(), DiffConfig::BNSD, &w, bugs, 500_000, 8,
        );
        prop_assert_eq!(s.outcome, t.outcome);
        // Single core: arrival order is identical, so the first failing
        // check must be byte-for-byte the same mismatch.
        prop_assert_eq!(s.mismatch, t.mismatch);
    }

    #[test]
    fn sharded_matches_threaded_on_dual_core(seed in 0u64..1_000, buggy in any::<bool>()) {
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let bugs = if buggy {
            vec![BugSpec::new(BugKind::RegWriteCorruption, 2_000)]
        } else {
            Vec::new()
        };
        let t = run_threaded(
            dual_core_minimal(), DiffConfig::BNSD, &w, bugs.clone(), 500_000, 8,
        );
        let s = run_sharded(
            dual_core_minimal(), DiffConfig::BNSD, &w, bugs, 500_000, 8,
        );
        // Across cores the two runners may stop at different points in the
        // interleaving, but the verdict class must agree.
        prop_assert_eq!(s.outcome, t.outcome);
        prop_assert_eq!(s.mismatch.is_some(), t.mismatch.is_some());
    }
}
