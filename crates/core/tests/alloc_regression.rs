//! Allocation regression gate for the zero-materialization wire path.
//!
//! The packed consume pipeline — admit (CRC + structural validation) →
//! streamed view-based checking — is designed to perform no heap
//! allocation per packet in the steady state: events are checked
//! straight from the packet bytes, no `WireItem` batch is built, and
//! every ring/histogram the observability layer touches is fixed-size.
//! This test pins that property with a counting global allocator: after
//! a warmup prefix (REF block-cache builds, pool growth, metric
//! registration), ingesting the remaining packets must allocate nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use difftest_core::consume::{NoCharge, Step};
use difftest_core::session::{DiffConfig, Session};
use difftest_core::transport::Transfer;
use difftest_dut::DutConfig;
use difftest_workload::Workload;

/// Counts every allocation and reallocation crossing the global
/// allocator (deallocations are free to the gate: recycling is fine,
/// acquiring is not).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs the producer side to completion, collecting every packet.
fn produce(session: &Session) -> Vec<Transfer> {
    let mut dut = session.dut();
    let mut accel = session.accel();
    let mut transfers = Vec::new();
    let mut events = Vec::new();
    while dut.halted().is_none() && dut.cycles() < session.max_cycles() {
        events.clear();
        dut.tick_into(&mut events);
        accel.push_cycle(&events, &mut transfers);
    }
    accel.flush(&mut transfers);
    transfers
}

#[test]
fn packed_consume_steady_state_allocates_nothing() {
    let w = Workload::microbench().seed(3).iterations(40).build();
    let s = Session::new(
        DutConfig::nutshell(),
        DiffConfig::BN,
        &w,
        Vec::new(),
        200_000,
        8,
        None,
    )
    .with_packet_bytes(1024);
    let transfers = produce(&s);
    assert!(
        transfers.len() >= 8,
        "need a steady state, got {} packets",
        transfers.len()
    );

    let mut consumer = s.consumer();
    // Warmup: REF block-cache builds, metric registration, flight-ring
    // growth all happen in the prefix. The terminal packet is excluded
    // from the gate too — the trap epilogue reaches fresh PCs, so the
    // REF legitimately builds (allocates) their blocks once.
    let warmup = transfers.len() * 3 / 4;
    for t in &transfers[..warmup] {
        assert_eq!(consumer.ingest(t, 0, &mut NoCharge), Step::Continue);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for t in &transfers[warmup..transfers.len() - 1] {
        assert_eq!(consumer.ingest(t, 0, &mut NoCharge), Step::Continue);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    let tail = transfers.len() - 1 - warmup;
    assert_eq!(
        after - before,
        0,
        "steady-state consume path allocated {} times over {} packets",
        after - before,
        tail
    );

    consumer.ingest(transfers.last().unwrap(), 0, &mut NoCharge);
    let out = consumer.finish();
    assert!(out.mismatch.is_none(), "{:?}", out.mismatch);
    assert!(out.link_error.is_none(), "{:?}", out.link_error);
}
