//! Property tests: the interval runner is observationally equivalent to
//! the virtual-time engine — same verdict and, on a single core, the
//! identical mismatch — across workload seeds, bug-injection points and
//! interval lengths. Cutting the stream into checkpoint-delimited
//! slices must never change *what* is checked.
//!
//! Two contracts here are deliberately weaker than
//! `tests/runner_equivalence.rs`'s, and for the same root cause:
//! per-interval re-packing restarts the squash fusion windows, so the
//! byte stream differs from the serial runners'.
//!
//! - **Mismatch identity** holds up to one fusion window: register-write
//!   squashing only exposes the *last* write to a register inside a
//!   window, so cutting the windows differently can move the first
//!   observable divergence by at most the window span (32 commits, the
//!   session default). Core and failing register must still agree, and
//!   when the whole run is one interval the packing is identical and the
//!   mismatch must be byte-for-byte the engine's.
//! - **Fault schedules** perturb different packets, so only the
//!   containment contract holds: recovered-clean or a *typed* link
//!   error, never a phantom mismatch, and exact replay from the seed.

use difftest_core::{
    run_intervals_tuned, run_runner, DiffConfig, FaultPlan, IntervalTuning, RunOutcome, RunnerKind,
};
use difftest_dut::{BugKind, BugSpec, DutConfig};
use difftest_workload::Workload;
use proptest::prelude::*;

fn intervals(
    dut: DutConfig,
    w: &Workload,
    bugs: Vec<BugSpec>,
    fault: Option<FaultPlan>,
    insns: u64,
    workers: usize,
) -> difftest_core::IntervalsReport {
    run_intervals_tuned(
        dut,
        DiffConfig::BNSD,
        w,
        bugs,
        500_000,
        8,
        fault,
        IntervalTuning {
            interval_insns: insns,
            workers,
        },
    )
}

fn engine(dut: DutConfig, w: &Workload, bugs: Vec<BugSpec>) -> difftest_core::RunnerReport {
    run_runner(
        RunnerKind::Engine,
        dut,
        DiffConfig::BNSD,
        w,
        bugs,
        500_000,
        8,
        None,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn intervals_match_engine_on_clean_runs(
        seed in 0u64..1_000,
        insns_pick in 0usize..3,
        workers in 1usize..4,
    ) {
        let insns = [32u64, 257, 4096][insns_pick];
        let w = Workload::microbench().seed(seed).iterations(40).build();
        let e = engine(DutConfig::nutshell(), &w, Vec::new());
        prop_assert_eq!(e.outcome, RunOutcome::GoodTrap);
        let r = intervals(DutConfig::nutshell(), &w, Vec::new(), None, insns, workers);
        prop_assert_eq!(r.outcome, e.outcome, "insns={} workers={}", insns, workers);
        prop_assert!(r.mismatch.is_none());
        prop_assert_eq!(r.instructions, e.instructions);
        // Completeness: the interval workers re-verify every committed
        // instruction exactly once — no gaps, no overlaps at the cuts.
        prop_assert_eq!(r.instructions_checked, r.instructions);
    }

    #[test]
    fn intervals_match_engine_mismatch_identity(
        seed in 0u64..1_000,
        bug_cycle in 1_000u64..6_000,
        insns_pick in 0usize..3,
    ) {
        let insns = [64u64, 513, 100_000][insns_pick];
        let w = Workload::linux_boot().seed(seed).iterations(300).build();
        let bugs = vec![BugSpec::new(BugKind::RegWriteCorruption, bug_cycle)];
        let e = engine(DutConfig::xiangshan_minimal(), &w, bugs.clone());
        let r = intervals(DutConfig::xiangshan_minimal(), &w, bugs, None, insns, 3);
        prop_assert_eq!(r.outcome, e.outcome, "insns={}", insns);
        // The worker holding the bug's interval starts from a REF-correct
        // checkpoint, so it reports the engine's divergence: same core,
        // same failing register, and a sequence within one squash window
        // (re-cut fusion windows may surface a squashed intermediate
        // write up to the window span later or earlier).
        let (rm, em) = (r.mismatch.as_ref(), e.mismatch.as_ref());
        prop_assert_eq!(rm.is_some(), em.is_some(), "insns={}", insns);
        if let (Some(rm), Some(em)) = (rm, em) {
            prop_assert_eq!(rm.core, em.core);
            prop_assert_eq!(
                rm.check.split_whitespace().last(), em.check.split_whitespace().last(),
                "different failing register: {:?} vs {:?}", rm, em
            );
            prop_assert!(
                rm.seq.abs_diff(em.seq) <= 32,
                "mismatch drifted past a fusion window: intervals seq {} vs engine seq {}",
                rm.seq, em.seq
            );
        }
        if r.intervals == 1 {
            // Degenerate cut: one interval repacks the identical stream,
            // so the mismatch must be byte-for-byte the engine's.
            prop_assert_eq!(r.mismatch.clone(), e.mismatch.clone());
        }
        if let Some(m) = &r.mismatch {
            let snap = r.flight.as_ref().expect("mismatch without flight snapshot");
            prop_assert!(
                snap.records.iter().any(|rec| {
                    rec.kind == difftest_stats::FlightKind::Mismatch && rec.value == m.seq
                }),
                "snapshot missing the mismatch record"
            );
        }
    }

    #[test]
    fn intervals_contain_faults_and_replay_from_seed(
        seed in 0u64..1_000,
        rate in 5u16..40,
    ) {
        let w = Workload::microbench().seed(seed).iterations(60).build();
        let plan = Some(FaultPlan::uniform(seed ^ 0x51ed, rate));
        let a = intervals(DutConfig::nutshell(), &w, Vec::new(), plan, 128, 2);
        prop_assert!(
            matches!(a.outcome, RunOutcome::GoodTrap | RunOutcome::LinkError { .. }),
            "fault must be recovered or typed, got {:?}", a.outcome
        );
        prop_assert!(a.mismatch.is_none(), "phantom mismatch under faults");
        if let RunOutcome::LinkError { .. } = a.outcome {
            prop_assert!(a.link.total_detected() > 0, "untyped link error");
            prop_assert!(
                a.fault.is_some_and(|f| f.total_faults() > 0),
                "link error without an injected fault"
            );
        }
        // Determinism: per-(core, interval) link seeds derive from the
        // plan, so the verdict replays exactly. Totals (fault counts,
        // interval count) are only stable on clean runs — a typed link
        // error stops the recording pass at a worker-timing-dependent
        // cycle, but jobs dispatch in sequence order, so the *first*
        // failing interval (and with it the verdict) is invariant.
        let b = intervals(DutConfig::nutshell(), &w, Vec::new(), plan, 128, 2);
        prop_assert_eq!(a.outcome, b.outcome);
        if a.outcome == RunOutcome::GoodTrap {
            prop_assert_eq!(a.link, b.link);
            prop_assert_eq!(a.fault, b.fault);
            prop_assert_eq!(a.intervals, b.intervals);
        }
    }

    #[test]
    fn interval_length_never_changes_the_verdict(
        seed in 0u64..1_000,
        buggy in any::<bool>(),
    ) {
        // The same run cut three different ways must agree with itself.
        let w = Workload::linux_boot().seed(seed).iterations(200).build();
        let bugs = if buggy {
            vec![BugSpec::new(BugKind::RegWriteCorruption, 3_000)]
        } else {
            Vec::new()
        };
        let dut = DutConfig::xiangshan_minimal;
        let coarse = intervals(dut(), &w, bugs.clone(), None, u64::MAX, 2);
        let medium = intervals(dut(), &w, bugs.clone(), None, 1_024, 2);
        let fine = intervals(dut(), &w, bugs, None, 97, 2);
        prop_assert_eq!(medium.outcome, coarse.outcome);
        prop_assert_eq!(fine.outcome, coarse.outcome);
        for cut in [&medium, &fine] {
            prop_assert_eq!(cut.mismatch.is_some(), coarse.mismatch.is_some());
            if let (Some(c), Some(m)) = (cut.mismatch.as_ref(), coarse.mismatch.as_ref()) {
                prop_assert_eq!(c.core, m.core);
                prop_assert!(
                    c.seq.abs_diff(m.seq) <= 32,
                    "cut drifted past a fusion window: {} vs {}", c.seq, m.seq
                );
            }
        }
        prop_assert!(fine.intervals >= medium.intervals);
    }
}
