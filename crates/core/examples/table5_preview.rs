//! Quick preview of the Table 5 optimization breakdown (the full harness
//! lives in `crates/bench/benches/table5.rs`).
use difftest_core::{CoSimulation, DiffConfig};
use difftest_dut::DutConfig;
use difftest_platform::Platform;
use difftest_workload::Workload;

fn main() {
    let paper: [(&str, [f64; 4]); 3] = [
        ("NutShell-PLDM", [14.0, 102.0, 389.0, 1030.0]),
        ("XiangShan-PLDM", [6.0, 24.0, 71.0, 478.0]),
        ("XiangShan-FPGA", [100.0, 1300.0, 2200.0, 7800.0]),
    ];
    let setups = [
        (DutConfig::nutshell(), Platform::palladium()),
        (DutConfig::xiangshan_default(), Platform::palladium()),
        (DutConfig::xiangshan_default(), Platform::fpga()),
    ];
    for ((dut, plat), (name, rows)) in setups.into_iter().zip(paper) {
        print!("{name:16}");
        let mut base = 0.0;
        for (i, cfg) in DiffConfig::ALL.into_iter().enumerate() {
            let w = Workload::linux_boot().seed(5).iterations(200).build();
            let mut sim = CoSimulation::builder()
                .dut(dut.clone())
                .platform(plat.clone())
                .config(cfg)
                .max_cycles(120_000)
                .build(&w)
                .expect("valid setup");
            let r = sim.run();
            if i == 0 {
                base = r.speed_hz;
            }
            print!(
                "  {:>8.1}KHz({:>5.1}x| paper {:>6.0}K)",
                r.speed_hz / 1e3,
                r.speed_hz / base,
                rows[i]
            );
            assert!(
                !matches!(r.outcome, difftest_core::RunOutcome::Mismatch),
                "unexpected mismatch: {:?}",
                r.failure
            );
        }
        println!();
    }
}
