//! Wire items: what actually crosses the hardware/software link.
//!
//! The acceleration unit turns monitored events into *wire items*:
//!
//! - [`WireItem::Plain`]: an unmodified event (baseline and Batch-only
//!   configurations),
//! - [`WireItem::Tagged`]: an event transmitted *ahead* of its checking
//!   position, carrying an [`OrderTag`] and replay [`Token`] (Squash's
//!   order-decoupled NDEs and order-sensitive checks, paper §4.3),
//! - [`WireItem::Fused`]: an N-commit fusion record (paper §4.3),
//! - [`WireItem::Diff`]: a differenced event — a change bitmap plus the
//!   changed 64-bit words relative to the previous same-kind event of the
//!   same core (paper §4.3 "Differencing").
//!
//! Every item has a self-describing binary encoding so the Batch parser can
//! compute offsets while walking a packet (structural semantics).

use difftest_event::wire::{CodecError, Reader, Writer};
use difftest_event::{Event, EventKind, EventRef, OrderTag, Token};

use crate::squash::FusedCommit;

/// Discriminants of the wire-item classes (high bits of the kind byte).
const CLASS_PLAIN: u8 = 0;
const CLASS_TAGGED: u8 = 1;
const CLASS_FUSED: u8 = 2;
const CLASS_DIFF: u8 = 3;

/// One unit of the hardware→software stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WireItem {
    /// An unmodified event in capture order.
    Plain {
        /// Source core.
        core: u8,
        /// The event.
        event: Event,
    },
    /// An event transmitted ahead of its checking position.
    Tagged {
        /// Source core.
        core: u8,
        /// Commit-order binding.
        tag: OrderTag,
        /// Replay-buffer token.
        token: Token,
        /// The event.
        event: Event,
    },
    /// A fused run of instruction commits.
    Fused {
        /// Source core.
        core: u8,
        /// The fusion record.
        fused: FusedCommit,
    },
    /// A differenced event (already reconstructed on decode).
    Diff {
        /// Source core.
        core: u8,
        /// Commit-order binding.
        tag: OrderTag,
        /// Replay-buffer token.
        token: Token,
        /// The reconstructed event.
        event: Event,
    },
}

impl WireItem {
    /// The source core of the item.
    pub fn core(&self) -> u8 {
        match self {
            WireItem::Plain { core, .. }
            | WireItem::Tagged { core, .. }
            | WireItem::Fused { core, .. }
            | WireItem::Diff { core, .. } => *core,
        }
    }

    /// The wire-kind byte identifying class and payload type.
    pub fn wire_kind(&self) -> WireKind {
        match self {
            WireItem::Plain { event, .. } => WireKind::Plain(event.kind()),
            WireItem::Tagged { event, .. } => WireKind::Tagged(event.kind()),
            WireItem::Fused { .. } => WireKind::Fused,
            WireItem::Diff { event, .. } => WireKind::Diff(event.kind()),
        }
    }
}

/// One unit of the stream as a *borrowed view* over validated packet
/// bytes — the consumer-side zero-materialization type.
///
/// Plain and Tagged payloads stay in the packet buffer and are read
/// field-by-field through [`EventRef`]; only the variants whose bodies
/// have no fixed layout to view carry owned data: Fused records are
/// varint-coded ([`FusedCommit`]) and Diff events are reconstructed
/// against the [`DiffCache`] mirror.
// Boxing the rare owned variants would put an allocation on the
// per-item hot path the type exists to keep allocation-free; views are
// consumed immediately by value, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WireItemRef<'a> {
    /// An unmodified event in capture order, viewed in place.
    Plain {
        /// Source core.
        core: u8,
        /// Borrowed payload view.
        event: EventRef<'a>,
    },
    /// An event transmitted ahead of its checking position.
    Tagged {
        /// Source core.
        core: u8,
        /// Commit-order binding.
        tag: OrderTag,
        /// Replay-buffer token.
        token: Token,
        /// Borrowed payload view.
        event: EventRef<'a>,
    },
    /// A fused run of instruction commits (owned: varint-coded).
    Fused {
        /// Source core.
        core: u8,
        /// The fusion record.
        fused: FusedCommit,
    },
    /// A differenced event (owned: reconstructed from the cache mirror).
    Diff {
        /// Source core.
        core: u8,
        /// Commit-order binding.
        tag: OrderTag,
        /// Replay-buffer token.
        token: Token,
        /// The reconstructed event.
        event: Event,
    },
}

impl WireItemRef<'_> {
    /// The source core of the item.
    pub fn core(&self) -> u8 {
        match self {
            WireItemRef::Plain { core, .. }
            | WireItemRef::Tagged { core, .. }
            | WireItemRef::Fused { core, .. }
            | WireItemRef::Diff { core, .. } => *core,
        }
    }

    /// Materializes the owned [`WireItem`] (legacy decode paths and
    /// tests; the hot path checks through the view directly).
    pub fn into_item(self) -> WireItem {
        match self {
            WireItemRef::Plain { core, event } => WireItem::Plain {
                core,
                event: event.to_event(),
            },
            WireItemRef::Tagged {
                core,
                tag,
                token,
                event,
            } => WireItem::Tagged {
                core,
                tag,
                token,
                event: event.to_event(),
            },
            WireItemRef::Fused { core, fused } => WireItem::Fused { core, fused },
            WireItemRef::Diff {
                core,
                tag,
                token,
                event,
            } => WireItem::Diff {
                core,
                tag,
                token,
                event,
            },
        }
    }
}

/// The type tag of a wire item: class plus payload event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireKind {
    /// Plain event of the given kind.
    Plain(EventKind),
    /// Order-tagged event of the given kind.
    Tagged(EventKind),
    /// Fused instruction commits.
    Fused,
    /// Differenced event of the given kind.
    Diff(EventKind),
}

impl WireKind {
    /// Encodes the kind as one byte: two class bits + kind index.
    pub fn to_u8(self) -> u8 {
        match self {
            WireKind::Plain(k) => (CLASS_PLAIN << 6) | k as u8,
            WireKind::Tagged(k) => (CLASS_TAGGED << 6) | k as u8,
            WireKind::Fused => CLASS_FUSED << 6,
            WireKind::Diff(k) => (CLASS_DIFF << 6) | k as u8,
        }
    }

    /// Decodes the kind byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadKind`] for invalid class/kind combinations.
    pub fn from_u8(v: u8) -> Result<WireKind, CodecError> {
        let class = v >> 6;
        let kind = v & 0x3f;
        Ok(match class {
            CLASS_FUSED if kind == 0 => WireKind::Fused,
            CLASS_PLAIN => WireKind::Plain(EventKind::from_u8(kind)?),
            CLASS_TAGGED => WireKind::Tagged(EventKind::from_u8(kind)?),
            CLASS_DIFF => WireKind::Diff(EventKind::from_u8(kind)?),
            _ => return Err(CodecError::BadKind(v)),
        })
    }
}

/// Per-core mirror of the last transmitted payload of each event kind,
/// kept identically on the hardware (encoder) and software (decoder) sides
/// so differencing round-trips.
#[derive(Debug, Clone, Default)]
pub struct DiffCache {
    last: Vec<Option<Vec<u8>>>, // indexed core * COUNT + kind
    cores: usize,
    // Encode-side scratch for the current payload; swapped with the cache
    // slot after differencing, so steady-state encoding allocates nothing.
    scratch: Vec<u8>,
}

impl DiffCache {
    /// Creates a cache for `cores` cores.
    pub fn new(cores: usize) -> Self {
        DiffCache {
            last: vec![None; cores * EventKind::COUNT],
            cores,
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn slot_index(&self, core: u8, kind: EventKind) -> usize {
        debug_assert!((core as usize) < self.cores);
        core as usize * EventKind::COUNT + kind as usize
    }

    fn slot(&mut self, core: u8, kind: EventKind) -> &mut Option<Vec<u8>> {
        let idx = self.slot_index(core, kind);
        &mut self.last[idx]
    }

    /// Encodes `event` as a difference against the cached previous payload,
    /// updating the cache, and returns the number of changed 64-bit words
    /// (zero means the event is byte-identical to the previous one and need
    /// not be transmitted at all).
    pub fn encode(&mut self, core: u8, event: &Event, out: &mut Vec<u8>) -> usize {
        let idx = self.slot_index(core, event.kind());
        let cur = &mut self.scratch;
        cur.clear();
        event.encode_into(cur);
        let words = cur.len().div_ceil(8);
        let bitmap_bytes = words.div_ceil(8);
        let prev = &mut self.last[idx];

        let start = out.len();
        out.resize(start + bitmap_bytes, 0);
        let mut changed = 0usize;
        for w in 0..words {
            let lo = w * 8;
            let hi = (lo + 8).min(cur.len());
            let same = matches!(prev.as_deref(), Some(p) if p[lo..hi] == cur[lo..hi]);
            if !same {
                out[start + w / 8] |= 1 << (w % 8);
                let mut word = [0u8; 8];
                word[..hi - lo].copy_from_slice(&cur[lo..hi]);
                out.extend_from_slice(&word);
                changed += 1;
            }
        }
        // The slot takes the current payload; its old buffer becomes the
        // next call's scratch.
        match prev {
            Some(p) => std::mem::swap(p, cur),
            None => *prev = Some(std::mem::take(cur)),
        }
        changed
    }

    /// Decodes a diff body produced by [`DiffCache::encode`], reconstructing
    /// the full event and updating the cache.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the body is truncated or when a word is
    /// marked unchanged but no previous payload exists.
    pub fn decode(
        &mut self,
        core: u8,
        kind: EventKind,
        r: &mut Reader<'_>,
    ) -> Result<Event, CodecError> {
        let len = kind.encoded_len();
        let words = len.div_ceil(8);
        let bitmap_bytes = words.div_ceil(8);
        // Borrowed straight from the packet buffer — `bytes_dyn` hands out
        // `&'a [u8]` tied to the buffer, not the reader, so later reads
        // don't conflict and nothing is copied.
        let bitmap = r.bytes_dyn(bitmap_bytes)?;

        let mut cur = match self.slot(core, kind).take() {
            Some(p) => p,
            None => vec![0u8; len],
        };
        for w in 0..words {
            if bitmap[w / 8] & (1 << (w % 8)) != 0 {
                let word = r.bytes_dyn(8)?;
                let lo = w * 8;
                let hi = (lo + 8).min(len);
                cur[lo..hi].copy_from_slice(&word[..hi - lo]);
            }
        }
        let event = Event::decode(kind, &cur)?;
        *self.slot(core, kind) = Some(cur);
        Ok(event)
    }

    /// Advances the reader past one diff body without touching any cache
    /// state (the validation pass; reconstruction must stay strictly
    /// in-order, so only [`DiffCache::decode`] mutates the mirror).
    ///
    /// # Errors
    ///
    /// Returns the same truncation [`CodecError`]s as
    /// [`DiffCache::decode`].
    pub fn skip(kind: EventKind, r: &mut Reader<'_>) -> Result<(), CodecError> {
        let len = kind.encoded_len();
        let words = len.div_ceil(8);
        let bitmap_bytes = words.div_ceil(8);
        let bitmap = r.bytes_dyn(bitmap_bytes)?;
        for w in 0..words {
            if bitmap[w / 8] & (1 << (w % 8)) != 0 {
                r.bytes_dyn(8)?;
            }
        }
        Ok(())
    }
}

/// Encodes one wire item's body (excluding the kind byte, which packet
/// metadata carries). Returns `false` for a *vacuous* item: a differenced
/// event that is byte-identical to its predecessor, which the hardware
/// drops instead of transmitting (paper §4.3 "only modified ones are
/// transmitted"). The caller must then discard `out`'s new suffix.
pub fn encode_item_body(item: &WireItem, diff: &mut DiffCache, out: &mut Vec<u8>) -> bool {
    match item {
        WireItem::Plain { event, .. } => {
            event.encode_into(out);
            true
        }
        WireItem::Tagged {
            tag, token, event, ..
        } => {
            let mut w = Writer::new(out);
            w.u64(tag.0);
            w.u64(token.0);
            event.encode_into(out);
            true
        }
        WireItem::Fused { fused, .. } => {
            fused.encode_into(out);
            true
        }
        WireItem::Diff {
            tag,
            token,
            event,
            core,
        } => {
            let mut w = Writer::new(out);
            w.u64(tag.0);
            w.u64(token.0);
            diff.encode(*core, event, out) > 0
        }
    }
}

/// Decodes one wire item's body given its kind and core.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed bodies.
pub fn decode_item_body(
    kind: WireKind,
    core: u8,
    diff: &mut DiffCache,
    r: &mut Reader<'_>,
) -> Result<WireItem, CodecError> {
    Ok(match kind {
        WireKind::Plain(k) => {
            let payload = r.bytes_dyn(k.encoded_len())?;
            WireItem::Plain {
                core,
                event: Event::decode(k, payload)?,
            }
        }
        WireKind::Tagged(k) => {
            let tag = OrderTag(r.u64()?);
            let token = Token(r.u64()?);
            let payload = r.bytes_dyn(k.encoded_len())?;
            WireItem::Tagged {
                core,
                tag,
                token,
                event: Event::decode(k, payload)?,
            }
        }
        WireKind::Fused => WireItem::Fused {
            core,
            fused: FusedCommit::decode_from(r)?,
        },
        WireKind::Diff(k) => {
            let tag = OrderTag(r.u64()?);
            let token = Token(r.u64()?);
            let event = diff.decode(core, k, r)?;
            WireItem::Diff {
                core,
                tag,
                token,
                event,
            }
        }
    })
}

/// Decodes one wire item's body as a borrowed view: Plain/Tagged payloads
/// are *not* copied out of the packet buffer.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed bodies.
#[inline]
pub fn decode_item_ref_body<'a>(
    kind: WireKind,
    core: u8,
    diff: &mut DiffCache,
    r: &mut Reader<'a>,
) -> Result<WireItemRef<'a>, CodecError> {
    Ok(match kind {
        WireKind::Plain(k) => {
            let payload = r.bytes_dyn(k.encoded_len())?;
            WireItemRef::Plain {
                core,
                event: EventRef::parse(k, payload)?,
            }
        }
        WireKind::Tagged(k) => {
            let tag = OrderTag(r.u64()?);
            let token = Token(r.u64()?);
            let payload = r.bytes_dyn(k.encoded_len())?;
            WireItemRef::Tagged {
                core,
                tag,
                token,
                event: EventRef::parse(k, payload)?,
            }
        }
        WireKind::Fused => WireItemRef::Fused {
            core,
            fused: FusedCommit::decode_from(r)?,
        },
        WireKind::Diff(k) => {
            let tag = OrderTag(r.u64()?);
            let token = Token(r.u64()?);
            let event = diff.decode(core, k, r)?;
            WireItemRef::Diff {
                core,
                tag,
                token,
                event,
            }
        }
    })
}

/// Advances the reader past one wire item's body without materializing
/// anything or touching the diff mirror: the admission-time validation
/// pass. Walks the exact byte positions [`decode_item_ref_body`] reads,
/// so it fails with the same [`CodecError`] at the same spot — which is
/// what lets the later checking pass stream items straight into the
/// checker without a mid-packet decode error ever splitting a packet's
/// effects in two.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed bodies.
#[inline]
pub fn validate_item_body(kind: WireKind, r: &mut Reader<'_>) -> Result<(), CodecError> {
    match kind {
        WireKind::Plain(k) => {
            r.bytes_dyn(k.encoded_len())?;
        }
        WireKind::Tagged(k) => {
            r.u64()?;
            r.u64()?;
            r.bytes_dyn(k.encoded_len())?;
        }
        WireKind::Fused => FusedCommit::skip_from(r)?,
        WireKind::Diff(k) => {
            r.u64()?;
            r.u64()?;
            DiffCache::skip(k, r)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{ArchIntRegState, CsrState, StoreEvent};

    #[test]
    fn wire_kind_round_trip() {
        for k in EventKind::ALL {
            for wk in [WireKind::Plain(k), WireKind::Tagged(k), WireKind::Diff(k)] {
                assert_eq!(WireKind::from_u8(wk.to_u8()).unwrap(), wk);
            }
        }
        assert_eq!(
            WireKind::from_u8(WireKind::Fused.to_u8()).unwrap(),
            WireKind::Fused
        );
        assert!(WireKind::from_u8((CLASS_FUSED << 6) | 5).is_err());
    }

    #[test]
    fn diff_round_trip_first_and_incremental() {
        let mut enc = DiffCache::new(1);
        let mut dec = DiffCache::new(1);

        let mut regs = [7u64; 32];
        let e1: Event = ArchIntRegState { regs }.into();
        regs[3] = 8;
        regs[31] = 9;
        let e2: Event = ArchIntRegState { regs }.into();

        for (i, e) in [&e1, &e2].into_iter().enumerate() {
            let mut body = Vec::new();
            enc.encode(0, e, &mut body);
            let mut r = Reader::new(&body);
            let back = dec.decode(0, EventKind::ArchIntRegState, &mut r).unwrap();
            assert_eq!(&back, e, "round {i}");
            r.finish().unwrap();
            if i == 1 {
                // Incremental diff: bitmap (4B) + 2 changed words.
                assert_eq!(body.len(), 4 + 16);
            }
        }
    }

    #[test]
    fn diff_caches_are_per_core_and_kind() {
        let mut enc = DiffCache::new(2);
        let e: Event = CsrState { csrs: [5; 24] }.into();
        let mut b0 = Vec::new();
        enc.encode(0, &e, &mut b0);
        let mut b1 = Vec::new();
        enc.encode(1, &e, &mut b1);
        // Core 1 has no cached payload: still a full transmission.
        assert_eq!(b0.len(), b1.len());
        let mut b0b = Vec::new();
        enc.encode(0, &e, &mut b0b);
        assert!(b0b.len() < b0.len(), "unchanged repeat must shrink");
    }

    #[test]
    fn plain_and_tagged_round_trip() {
        let mut diff_enc = DiffCache::new(1);
        let mut diff_dec = DiffCache::new(1);
        let ev: Event = StoreEvent {
            addr: 0x8000_0000,
            data: 42,
            mask: 0xff,
        }
        .into();
        for item in [
            WireItem::Plain {
                core: 0,
                event: ev.clone(),
            },
            WireItem::Tagged {
                core: 0,
                tag: OrderTag(77),
                token: Token(5),
                event: ev.clone(),
            },
            WireItem::Diff {
                core: 0,
                tag: OrderTag(78),
                token: Token(6),
                event: ev.clone(),
            },
        ] {
            let mut body = Vec::new();
            encode_item_body(&item, &mut diff_enc, &mut body);
            let mut r = Reader::new(&body);
            let back = decode_item_body(item.wire_kind(), 0, &mut diff_dec, &mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, item);
        }
    }
}
