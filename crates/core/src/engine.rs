//! The co-simulation engine: DUT + acceleration unit + link model + checker.
//!
//! The engine runs the DUT cycle by cycle, streams verification events
//! through the configured acceleration pipeline, decodes and checks them
//! against per-core reference models, and accounts simulated time with the
//! paper's LogGP overhead model (Eq. 1):
//!
//! - **blocking** configurations (baseline, +Batch) pause the DUT for every
//!   transfer's startup, transmission and software processing;
//! - **non-blocking** configurations overlap hardware execution, link
//!   transfers and software processing, with a bounded in-flight queue
//!   providing backpressure (paper §4.5).
//!
//! Real bytes flow through real pack/fuse/parse code; only *time* is
//! virtual, so every reported speedup derives from genuinely reduced
//! invocations, bytes and checks.

use std::collections::VecDeque;
use std::fmt;

use difftest_dut::{BugSpec, Dut, DutConfig};
use difftest_event::wire::CodecError;
use difftest_platform::{LinkParams, OverheadBreakdown, Platform};
use difftest_ref::{Memory, RefModel};
use difftest_stats::{
    export_to_env, FlightKind, FlightRecord, FlightRecorder, FlightSnapshot, GaugeId, HistogramId,
    Metrics, Phase, PhaseTimer,
};
use difftest_workload::Workload;

use crate::batch::peek_packet_seq;
use crate::checker::{CheckStats, Checker, Mismatch, Verdict};
use crate::fault::{FaultPlan, FaultStats, FaultyLink, LinkErrorKind, LinkStats};
use crate::pool::PooledBuf;
use crate::replay::{FailureReport, ReplayBuffer, Retransmission};
use crate::squash::SquashStats;
use crate::transport::{AccelUnit, SwUnit, Transfer};

/// Retransmissions a run may issue before a link failure is reported
/// unrecoverable (bounds the cost a hostile schedule can impose).
const RECOVERY_BUDGET: u32 = 64;

/// Nested redeliveries a single decode failure may trigger (a
/// retransmitted packet failing again counts one level deeper).
const MAX_REDELIVERY_DEPTH: u32 = 4;

/// The optimization configurations of the artifact appendix (`DIFF_CONFIG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffConfig {
    /// Baseline: per-event blocking transfers.
    Z,
    /// +Batch: tight packing, still blocking.
    B,
    /// +Batch +NonBlock: packed, non-blocking transfers.
    BN,
    /// +Batch +NonBlock +Squash(+Differencing): the full DiffTest-H.
    BNSD,
}

impl DiffConfig {
    /// All configurations in Table 5 order.
    pub const ALL: [DiffConfig; 4] = [
        DiffConfig::Z,
        DiffConfig::B,
        DiffConfig::BN,
        DiffConfig::BNSD,
    ];

    /// Tight packing enabled.
    pub fn batch(self) -> bool {
        self != DiffConfig::Z
    }

    /// Non-blocking transmission enabled.
    pub fn nonblock(self) -> bool {
        matches!(self, DiffConfig::BN | DiffConfig::BNSD)
    }

    /// Fusion + differencing enabled.
    pub fn squash(self) -> bool {
        self == DiffConfig::BNSD
    }

    /// Table 5 row label.
    pub fn label(self) -> &'static str {
        match self {
            DiffConfig::Z => "Baseline",
            DiffConfig::B => "+Batch",
            DiffConfig::BN => "+NonBlock",
            DiffConfig::BNSD => "+Squash",
        }
    }
}

impl fmt::Display for DiffConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Build-time validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `max_cycles` must be positive.
    ZeroCycles,
    /// Packet capacity below the largest single item.
    PacketTooSmall(usize),
    /// Fusion window must be positive.
    ZeroWindow,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroCycles => write!(f, "max_cycles must be positive"),
            BuildError::PacketTooSmall(n) => write!(f, "packet capacity {n} below 1024 bytes"),
            BuildError::ZeroWindow => write!(f, "fusion window must be positive"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Configures and builds a [`CoSimulation`].
#[derive(Debug, Clone)]
pub struct CoSimulationBuilder {
    dut: DutConfig,
    platform: Platform,
    config: DiffConfig,
    max_cycles: u64,
    bugs: Vec<BugSpec>,
    packet_bytes: usize,
    fusion_window: u32,
    order_coupled: bool,
    differencing: bool,
    replay: bool,
    queue_depth: usize,
    fault_plan: Option<FaultPlan>,
}

impl Default for CoSimulationBuilder {
    fn default() -> Self {
        CoSimulationBuilder {
            dut: DutConfig::xiangshan_default(),
            platform: Platform::palladium(),
            config: DiffConfig::BNSD,
            max_cycles: 1_000_000,
            bugs: Vec::new(),
            packet_bytes: 4096,
            fusion_window: 32,
            order_coupled: false,
            differencing: true,
            replay: true,
            queue_depth: 8,
            fault_plan: None,
        }
    }
}

impl CoSimulationBuilder {
    /// Selects the DUT configuration (default: XiangShan default).
    pub fn dut(mut self, dut: DutConfig) -> Self {
        self.dut = dut;
        self
    }

    /// Selects the platform model (default: Palladium).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Selects the optimization configuration (default: BNSD).
    pub fn config(mut self, config: DiffConfig) -> Self {
        self.config = config;
        self
    }

    /// Caps the simulated cycles (default: 1,000,000).
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Injects bugs into core 0 of the DUT.
    pub fn bugs(mut self, bugs: Vec<BugSpec>) -> Self {
        self.bugs = bugs;
        self
    }

    /// Sets the transmission packet capacity in bytes (default: 4096).
    pub fn packet_bytes(mut self, bytes: usize) -> Self {
        self.packet_bytes = bytes;
        self
    }

    /// Sets the fusion window in commits (default: 32).
    pub fn fusion_window(mut self, commits: u32) -> Self {
        self.fusion_window = commits;
        self
    }

    /// Uses the order-coupled fusion baseline of prior work (default: off).
    pub fn order_coupled(mut self, coupled: bool) -> Self {
        self.order_coupled = coupled;
        self
    }

    /// Enables or disables differencing within Squash (default: on).
    pub fn differencing(mut self, on: bool) -> Self {
        self.differencing = on;
        self
    }

    /// Enables the Replay debugging mechanism (default: on; only effective
    /// with [`DiffConfig::BNSD`]).
    pub fn replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// Sets the non-blocking in-flight queue depth (default: 8).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Injects link faults per a seeded schedule (default: clean link).
    /// With [`DiffConfig::BNSD`] and replay enabled, detected failures
    /// first attempt bounded recovery by retransmission from the packet
    /// retention ring; otherwise they surface as
    /// [`RunOutcome::LinkError`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the co-simulation over a workload image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid parameter combinations.
    pub fn build(self, workload: &Workload) -> Result<CoSimulation, BuildError> {
        if self.max_cycles == 0 {
            return Err(BuildError::ZeroCycles);
        }
        if self.packet_bytes < 1024 {
            return Err(BuildError::PacketTooSmall(self.packet_bytes));
        }
        if self.fusion_window == 0 {
            return Err(BuildError::ZeroWindow);
        }

        let mut image = Memory::new();
        image.load_words(Memory::RAM_BASE, workload.words());
        let cores = self.dut.cores as usize;
        let dut = Dut::new(self.dut.clone(), &image, self.bugs.clone());

        let accel = match self.config {
            DiffConfig::Z => AccelUnit::per_event(),
            DiffConfig::B | DiffConfig::BN => AccelUnit::batch(cores, self.packet_bytes),
            DiffConfig::BNSD => AccelUnit::squash_batch_with(
                cores,
                self.packet_bytes,
                self.fusion_window,
                self.order_coupled,
                self.differencing,
            ),
        };
        let sw = match self.config {
            DiffConfig::Z => SwUnit::per_event(),
            _ => SwUnit::packed(cores),
        };
        let replay_on = self.replay && self.config.squash();
        let refs: Vec<RefModel> = (0..cores).map(|_| RefModel::new(image.clone())).collect();
        let checker = Checker::new(refs, replay_on);

        let gates = self.dut.gates;
        let mut metrics = Metrics::new();
        let h_packet_bytes = metrics.register_histogram("packet.bytes");
        let h_packet_items = metrics.register_histogram("packet.items");
        let g_pending_max = metrics.register_gauge("checker.pending.max");
        let g_reorder_max = metrics.register_gauge("reorder.buffered.max");
        Ok(CoSimulation {
            dut,
            accel,
            sw,
            checker,
            metrics,
            h_packet_bytes,
            h_packet_items,
            g_pending_max,
            g_reorder_max,
            timer: PhaseTimer::monotonic(),
            flight: FlightRecorder::default(),
            last_fused: 0,
            replay_buffer: replay_on.then(|| ReplayBuffer::new(1 << 16)),
            timing: Timing::new(
                self.platform.cycle_time_s(gates),
                self.platform.step_sync_s(),
                match self.config {
                    DiffConfig::Z => TimingMode::BlockingStep,
                    DiffConfig::B => TimingMode::Blocking,
                    DiffConfig::BN | DiffConfig::BNSD => TimingMode::Pipelined,
                },
                self.queue_depth,
            ),
            platform: self.platform,
            config: self.config,
            max_cycles: self.max_cycles,
            faulty: self.fault_plan.map(FaultyLink::new),
            transfers: Vec::new(),
            staging: Vec::new(),
            events_buf: Vec::new(),
            items_buf: Vec::new(),
            halt: None,
            failure: None,
            link_stats: LinkStats::default(),
            link_error: None,
            recovery_budget: RECOVERY_BUDGET,
        })
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The workload reached its good trap and every check passed.
    GoodTrap,
    /// The workload signalled failure.
    BadTrap,
    /// A DUT/REF divergence was detected.
    Mismatch,
    /// The cycle budget was exhausted without a trap.
    MaxCycles,
    /// The link failed in a way bounded recovery could not mask.
    LinkError {
        /// Failure classification.
        kind: LinkErrorKind,
        /// Packet sequence involved (the receiver's expected sequence
        /// at detection; 0 for unsequenced per-event transfers).
        seq: u32,
        /// Routing core of the offending transfer.
        core: u8,
    },
}

/// The result of one co-simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Failure details when `outcome == Mismatch`.
    pub failure: Option<FailureReport>,
    /// DUT cycles simulated.
    pub cycles: u64,
    /// Instructions committed (all cores).
    pub instructions: u64,
    /// Simulated wall-clock seconds (virtual time).
    pub sim_time_s: f64,
    /// Achieved co-simulation speed in Hz (cycles / simulated second).
    pub speed_hz: f64,
    /// The platform's DUT-only speed for this design (theoretical maximum).
    pub dut_only_hz: f64,
    /// Per-phase communication overhead attribution.
    pub overhead: OverheadBreakdown,
    /// Communication invocations.
    pub invokes: u64,
    /// Bytes transferred hardware→software.
    pub bytes: u64,
    /// Fusion statistics (BNSD only).
    pub squash: Option<SquashStats>,
    /// Checker statistics.
    pub check: CheckStats,
    /// Link failure detection / recovery counters.
    pub link: LinkStats,
    /// Faults the injected link model applied (`None` on a clean link).
    pub fault: Option<FaultStats>,
    /// Events evicted from the replay ring before use (the
    /// `replay.dropped` counter): when non-zero, a localization over an
    /// old token range may be partial.
    pub replay_dropped: u64,
    /// The run's observability registry: counters (mirroring
    /// [`counters`](Self::counters)), packet histograms, and host-side
    /// per-phase wall-time attribution. Exported as JSONL when
    /// `DIFFTEST_OBS=<path>` is set.
    pub metrics: Metrics,
    /// Flight-recorder snapshot of the pipeline records around the
    /// failure; attached on [`RunOutcome::Mismatch`] and
    /// [`RunOutcome::LinkError`], `None` on clean runs.
    pub flight: Option<FlightSnapshot>,
}

impl RunReport {
    /// Fraction of simulated time spent on communication (not DUT
    /// execution): the paper's "communication overhead".
    pub fn comm_overhead_fraction(&self) -> f64 {
        let dut_time = self.cycles as f64 / self.dut_only_hz;
        if self.sim_time_s <= 0.0 {
            0.0
        } else {
            ((self.sim_time_s - dut_time) / self.sim_time_s).max(0.0)
        }
    }

    /// Speedup of this run over another (e.g. over the baseline).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        self.speed_hz / other.speed_hz
    }

    /// Exports the run's statistics as named performance counters
    /// (paper §5 "performance evaluation support").
    pub fn counters(&self) -> difftest_stats::Counters {
        let mut c = difftest_stats::Counters::new();
        c.set("hw.cycles", self.cycles);
        c.set("hw.instructions", self.instructions);
        c.set("link.invokes", self.invokes);
        c.set("link.bytes", self.bytes);
        c.set("sw.events_checked", self.check.events);
        c.set("sw.instructions_stepped", self.check.instructions);
        c.set("sw.mmio_skips", self.check.skips);
        c.set("sw.interrupts_synced", self.check.interrupts);
        c.set("sw.exceptions_checked", self.check.exceptions);
        c.set("sw.fused_records", self.check.fused_records);
        c.set("sw.bytes_compared", self.check.bytes);
        if let Some(s) = self.squash {
            c.set("squash.commits_fused", s.commits_fused);
            c.set("squash.fused_records", s.fused_records);
            c.set("squash.subsumed", s.subsumed);
            c.set("squash.tagged", s.tagged);
            c.set("squash.diffed", s.diffed);
            c.set("squash.nde_breaks", s.nde_breaks);
        }
        for kind in LinkErrorKind::ALL {
            c.set(
                format!("link.err.{}", kind.counter_name()),
                self.link.count(kind),
            );
        }
        c.set("link.stale_dropped", self.link.stale_dropped);
        c.set("link.recovered", self.link.recovered);
        c.set("link.retransmits", self.link.retransmits);
        c.set("link.retransmit_bytes", self.link.retransmit_bytes);
        c.set("replay.dropped", self.replay_dropped);
        if let Some(f) = self.fault {
            c.set("fault.delivered", f.delivered);
            c.set("fault.dropped", f.dropped);
            c.set("fault.duplicated", f.duplicated);
            c.set("fault.reordered", f.reordered);
            c.set("fault.truncated", f.truncated);
            c.set("fault.corrupted", f.corrupted);
        }
        c
    }
}

/// How simulated time is charged (derived from [`DiffConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimingMode {
    /// Step-and-compare per-event baseline: a per-cycle clock-control sync
    /// plus fully serial transfers.
    BlockingStep,
    /// Packed but blocking: the DUT pauses for each packet round trip.
    Blocking,
    /// Non-blocking (paper §4.5): the hardware streams packet bytes (which
    /// stalls the emulated clock for their wire time), while startup
    /// handshakes and software processing run on overlapped lanes with a
    /// bounded in-flight queue providing backpressure.
    Pipelined,
}

/// LogGP virtual-time accounting (Eq. 1, per [`TimingMode`]).
#[derive(Debug)]
struct Timing {
    mode: TimingMode,
    cycle_time: f64,
    step_sync: f64,
    queue_depth: usize,
    hw: f64,
    link_free: f64,
    sw_free: f64,
    inflight: VecDeque<f64>,
    end: f64,
    overhead: OverheadBreakdown,
}

impl Timing {
    fn new(cycle_time: f64, step_sync: f64, mode: TimingMode, queue_depth: usize) -> Self {
        Timing {
            mode,
            cycle_time,
            step_sync,
            queue_depth,
            hw: 0.0,
            link_free: 0.0,
            sw_free: 0.0,
            inflight: VecDeque::new(),
            end: 0.0,
            overhead: OverheadBreakdown::default(),
        }
    }

    fn on_cycle(&mut self) {
        self.hw += self.cycle_time;
        if self.mode == TimingMode::BlockingStep {
            // Step-and-compare advances the emulated clock through a
            // per-cycle hardware/software handshake.
            self.hw += self.step_sync;
            self.overhead.startup_s += self.step_sync;
        }
    }

    fn on_transfer(&mut self, link: &LinkParams, invokes: u64, bytes: u64, sw_cost: f64) {
        let startup = link.startup_time(invokes);
        let trans = link.transmission_time(bytes);
        self.overhead.startup_s += startup;
        self.overhead.transmission_s += trans;
        self.overhead.software_s += sw_cost;

        match self.mode {
            TimingMode::BlockingStep | TimingMode::Blocking => {
                // The DUT clock pauses for the full round trip.
                self.hw += startup + trans + sw_cost;
                self.end = self.hw;
            }
            TimingMode::Pipelined => {
                // Backpressure: a bounded number of transfers in flight.
                while self.inflight.len() >= self.queue_depth {
                    if let Some(t) = self.inflight.pop_front() {
                        if t > self.hw {
                            self.hw = t;
                        }
                    }
                }
                // Streaming the payload shares the emulation fabric
                // (GFIFO/XDMA), so the wire time stalls the DUT clock...
                self.hw += trans;
                // ...while the handshake and software processing overlap.
                let link_done = self.link_free.max(self.hw) + startup;
                self.link_free = link_done;
                let sw_done = self.sw_free.max(link_done) + sw_cost;
                self.sw_free = sw_done;
                self.inflight.push_back(sw_done);
                self.end = self.end.max(sw_done);
            }
        }
    }

    fn total(&self) -> f64 {
        self.hw.max(self.end)
    }
}

/// A runnable co-simulation.
#[derive(Debug)]
pub struct CoSimulation {
    dut: Dut,
    accel: AccelUnit,
    sw: SwUnit,
    checker: Checker,
    /// Observability registry (histograms registered at build time).
    metrics: Metrics,
    h_packet_bytes: HistogramId,
    h_packet_items: HistogramId,
    g_pending_max: GaugeId,
    g_reorder_max: GaugeId,
    /// Host-side wall-time attribution per pipeline phase.
    timer: PhaseTimer,
    /// Free-running ring of structured pipeline records.
    flight: FlightRecorder,
    /// Fused-record watermark for per-packet fusion flight records.
    last_fused: u64,
    replay_buffer: Option<ReplayBuffer>,
    platform: Platform,
    config: DiffConfig,
    timing: Timing,
    max_cycles: u64,
    /// The injected link model, when fault injection is enabled.
    faulty: Option<FaultyLink>,
    /// Transfers that emerged from the link, awaiting decode.
    transfers: Vec<Transfer>,
    /// Transfers produced by the accelerator, before crossing the link.
    staging: Vec<Transfer>,
    events_buf: Vec<difftest_event::MonitoredEvent>,
    items_buf: Vec<crate::wire::WireItem>,
    halt: Option<Verdict>,
    failure: Option<FailureReport>,
    link_stats: LinkStats,
    link_error: Option<(LinkErrorKind, u32, u8)>,
    recovery_budget: u32,
}

impl CoSimulation {
    /// Starts configuring a co-simulation.
    pub fn builder() -> CoSimulationBuilder {
        CoSimulationBuilder::default()
    }

    /// The selected optimization configuration.
    pub fn config(&self) -> DiffConfig {
        self.config
    }

    /// The design under test (device transcripts, per-core state).
    pub fn dut(&self) -> &Dut {
        &self.dut
    }

    /// The ISA checker (statistics, per-core progress).
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Runs to completion (trap, mismatch or cycle budget) and reports.
    pub fn run(&mut self) -> RunReport {
        let mut invokes = 0u64;
        let mut bytes = 0u64;

        'outer: while self.dut.halted().is_none() && self.dut.cycles() < self.max_cycles {
            let t0 = self.timer.start();
            self.events_buf.clear();
            self.dut.tick_into(&mut self.events_buf);
            self.timing.on_cycle();
            self.timer.stop(Phase::Tick, t0);

            let t0 = self.timer.start();
            if let Some(rb) = &mut self.replay_buffer {
                for ev in &self.events_buf {
                    rb.push(ev.clone());
                }
            }
            self.timer.stop(Phase::Monitor, t0);

            let t0 = self.timer.start();
            self.accel.push_cycle(&self.events_buf, &mut self.staging);
            self.timer.stop(Phase::Pack, t0);
            self.route_staged();
            if self.process_transfers(&mut invokes, &mut bytes) {
                break 'outer;
            }
        }

        // Drain: flush fusion windows, partial packets and the link's
        // reorder holds, then pending transfers, then any terminal gaps.
        if self.halt.is_none() && self.failure.is_none() && self.link_error.is_none() {
            let t0 = self.timer.start();
            self.accel.flush(&mut self.staging);
            self.timer.stop(Phase::Pack, t0);
            self.route_staged();
            if let Some(link) = &mut self.faulty {
                let t0 = self.timer.start();
                link.flush(&mut self.transfers);
                self.timer.stop(Phase::Transport, t0);
            }
            let stopped = self.process_transfers(&mut invokes, &mut bytes);
            if !stopped {
                self.recover_tail(&mut invokes, &mut bytes);
            }
            if self.halt.is_none() && self.failure.is_none() && self.link_error.is_none() {
                match self.checker.finalize() {
                    Ok(v @ Verdict::Halt { .. }) => self.halt = Some(v),
                    Ok(Verdict::Continue) => {}
                    Err(m) => self.on_mismatch(m, &mut invokes, &mut bytes),
                }
            }
        }

        let outcome = if self.failure.is_some() {
            RunOutcome::Mismatch
        } else if let Some((kind, seq, core)) = self.link_error {
            RunOutcome::LinkError { kind, seq, core }
        } else {
            match self.halt {
                Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
                Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
                _ => RunOutcome::MaxCycles,
            }
        };

        let cycles = self.dut.cycles();
        let sim_time_s = self.timing.total();
        let flight = match outcome {
            RunOutcome::Mismatch | RunOutcome::LinkError { .. } => Some(self.flight.snapshot()),
            _ => None,
        };
        let mut report = RunReport {
            outcome,
            failure: self.failure.clone(),
            cycles,
            instructions: self.dut.total_commits(),
            sim_time_s,
            speed_hz: cycles as f64 / sim_time_s.max(1e-12),
            dut_only_hz: self.platform.dut_only_hz(self.dut.config().gates),
            overhead: self.timing.overhead,
            invokes,
            bytes,
            squash: self.accel.squash_stats(),
            check: *self.checker.stats(),
            link: self.link_stats,
            fault: self.faulty.as_ref().map(FaultyLink::stats),
            replay_dropped: self.replay_buffer.as_ref().map_or(0, ReplayBuffer::dropped),
            metrics: Metrics::new(),
            flight,
        };
        // Clone the registry into the report (`self` stays runnable) and
        // complete it with the final phase attribution and run counters.
        self.metrics.phases = self.timer.times();
        let mut metrics = self.metrics.clone();
        metrics.counters.merge(&report.counters());
        report.metrics = metrics;
        if let Err(e) = export_to_env("engine", &report.metrics, report.flight.as_ref()) {
            eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
        }
        report
    }

    /// Moves accelerator-produced transfers across the (possibly faulty)
    /// link into the receive queue, retaining pristine packet copies for
    /// retransmission while fault injection is active.
    fn route_staged(&mut self) {
        if self.staging.is_empty() {
            return;
        }
        let t0 = self.timer.start();
        let cycle = self.dut.cycles();
        // One fusion record per staged batch that advanced the fused
        // count (not per cycle — the ring holds failure context, not a
        // full trace).
        if let Some(s) = self.accel.squash_stats() {
            if s.fused_records > self.last_fused {
                self.last_fused = s.fused_records;
                self.flight.record(FlightRecord {
                    kind: FlightKind::Fusion,
                    core: 0,
                    seq: 0,
                    cycle,
                    value: s.fused_records,
                });
            }
        }
        for t in &self.staging {
            self.flight.record(FlightRecord {
                kind: FlightKind::PacketSent,
                core: t.core,
                seq: peek_packet_seq(&t.bytes).unwrap_or(0),
                cycle,
                value: t.bytes.len() as u64,
            });
        }
        if self.faulty.is_some() && self.config.batch() {
            if let Some(rb) = &mut self.replay_buffer {
                for t in &self.staging {
                    if let Some(seq) = peek_packet_seq(&t.bytes) {
                        rb.record_packet(seq, &t.bytes);
                    }
                }
            }
        }
        match &mut self.faulty {
            Some(link) => {
                for t in self.staging.drain(..) {
                    link.transmit(t, &mut self.transfers);
                }
            }
            None => self.transfers.append(&mut self.staging),
        }
        self.timer.stop(Phase::Transport, t0);
    }

    /// Processes queued transfers; returns `true` when the run must stop.
    fn process_transfers(&mut self, invokes: &mut u64, bytes: &mut u64) -> bool {
        let transfers = std::mem::take(&mut self.transfers);
        let mut stopped = false;
        for t in &transfers {
            if self.process_one(t, invokes, bytes, 0) {
                stopped = true;
                break;
            }
        }
        stopped
    }

    /// Decodes and checks one transfer (possibly a retransmission, at
    /// `depth` > 0); returns `true` when the run must stop.
    fn process_one(
        &mut self,
        t: &Transfer,
        invokes: &mut u64,
        bytes: &mut u64,
        depth: u32,
    ) -> bool {
        *invokes += t.invokes;
        *bytes += t.bytes.len() as u64;

        let cycle = self.dut.cycles();
        self.flight.record(FlightRecord {
            kind: FlightKind::PacketReceived,
            core: t.core,
            seq: peek_packet_seq(&t.bytes).unwrap_or(0),
            cycle,
            value: t.bytes.len() as u64,
        });
        self.metrics
            .record(self.h_packet_bytes, t.bytes.len() as u64);
        self.metrics.record(self.h_packet_items, u64::from(t.items));

        let before = *self.checker.stats();
        // Reuse the decode scratch across calls: dropping the transfer at
        // the end of each iteration recycles its payload to the pool, so
        // the steady state allocates neither payload nor item storage.
        let mut items = std::mem::take(&mut self.items_buf);
        items.clear();
        let t0 = self.timer.start();
        let decode = self.sw.decode_into(t, &mut items);
        self.timer.stop(Phase::Unpack, t0);
        match decode {
            Ok(_) => {
                let t0 = self.timer.start();
                let mut stop = false;
                let mut mismatch = None;
                for item in items.drain(..) {
                    match self.checker.process(item) {
                        Ok(Verdict::Continue) => {}
                        Ok(v @ Verdict::Halt { .. }) => {
                            self.halt = Some(v);
                            stop = true;
                            break;
                        }
                        Err(m) => {
                            mismatch = Some(m);
                            stop = true;
                            break;
                        }
                    }
                }
                items.clear();
                self.items_buf = items;
                self.timer.stop(Phase::Check, t0);
                // High-water marks by GaugeId handle: an indexed store per
                // transfer, not per event, and no name lookup either way.
                self.metrics
                    .set_max(self.g_pending_max, self.checker.pending_items() as u64);
                self.metrics
                    .set_max(self.g_reorder_max, self.sw.buffered_packets() as u64);
                if let Some(Verdict::Halt { good, .. }) = &self.halt {
                    self.flight.record(FlightRecord {
                        kind: FlightKind::Verdict,
                        core: t.core,
                        seq: 0,
                        cycle,
                        value: u64::from(*good),
                    });
                }
                self.charge_transfer(t, &before);
                if let Some(m) = mismatch {
                    self.on_mismatch(m, invokes, bytes);
                }
                stop
            }
            Err(e) => {
                items.clear();
                self.items_buf = items;
                // The damaged bytes crossed the link regardless.
                self.charge_transfer(t, &before);
                self.on_decode_error(t, &e, invokes, bytes, depth)
            }
        }
    }

    /// Handles a transfer the receiver rejected. Returns `true` when the
    /// run must stop.
    fn on_decode_error(
        &mut self,
        t: &Transfer,
        err: &CodecError,
        invokes: &mut u64,
        bytes: &mut u64,
        depth: u32,
    ) -> bool {
        let kind = LinkErrorKind::classify(err);
        self.link_stats.note(kind);
        if kind == LinkErrorKind::Stale {
            // A duplicate of an already-delivered packet: dropping it
            // loses nothing (paper §4.5's window already delivered it).
            self.link_stats.stale_dropped += 1;
            return false;
        }
        // Identify the packet to re-request: a detected gap names the
        // missing sequence; for a damaged frame the embedded sequence
        // field is a best-effort guess from unverified bytes, validated
        // implicitly by the retention-ring lookup.
        let seq = match err {
            CodecError::ReorderOverflow { missing } => Some(*missing),
            _ => peek_packet_seq(&t.bytes),
        };
        if let Some(seq) = seq {
            if self.try_redeliver(seq, t.core, invokes, bytes, depth) {
                return self.halt.is_some() || self.failure.is_some() || self.link_error.is_some();
            }
        }
        let seq = self.sw.expected_seq().unwrap_or(0);
        self.flight.record(FlightRecord {
            kind: FlightKind::LinkError,
            core: t.core,
            seq,
            cycle: self.dut.cycles(),
            value: kind as u64,
        });
        self.link_error = Some((kind, seq, t.core));
        true
    }

    /// Attempts to re-deliver packet `seq` from the retention ring,
    /// charging the retransmission like any other transfer (one invoke
    /// plus its bytes, Eq. 1). Returns `true` when a pristine copy was
    /// found and processed.
    fn try_redeliver(
        &mut self,
        seq: u32,
        core: u8,
        invokes: &mut u64,
        bytes: &mut u64,
        depth: u32,
    ) -> bool {
        if depth >= MAX_REDELIVERY_DEPTH || self.recovery_budget == 0 {
            return false;
        }
        let t0 = self.timer.start();
        let pristine = self
            .replay_buffer
            .as_ref()
            .and_then(|rb| rb.retransmit_packet(seq))
            .map(<[u8]>::to_vec);
        self.timer.stop(Phase::Arq, t0);
        let Some(pristine) = pristine else {
            return false;
        };
        self.recovery_budget -= 1;
        self.link_stats.retransmits += 1;
        self.link_stats.retransmit_bytes += pristine.len() as u64;
        self.flight.record(FlightRecord {
            kind: FlightKind::Retransmit,
            core,
            seq,
            cycle: self.dut.cycles(),
            value: pristine.len() as u64,
        });
        let rt = Transfer {
            bytes: PooledBuf::detached(pristine),
            core,
            invokes: 1,
            items: 0,
        };
        self.process_one(&rt, invokes, bytes, depth + 1);
        if self.link_error.is_none() {
            self.link_stats.recovered += 1;
        }
        true
    }

    /// End-of-stream: a receive-side gap (buffered successors waiting, or
    /// sent packets that never arrived) is now permanent — recover it
    /// from the retention ring or report it as a [`RunOutcome::LinkError`].
    fn recover_tail(&mut self, invokes: &mut u64, bytes: &mut u64) {
        loop {
            if self.halt.is_some() || self.failure.is_some() || self.link_error.is_some() {
                return;
            }
            let Some(expected) = self.sw.expected_seq() else {
                // Per-event transfers carry no sequence numbers; drops
                // are undetectable at this layer.
                return;
            };
            let tail_missing = self
                .replay_buffer
                .as_ref()
                .and_then(ReplayBuffer::next_packet_seq)
                .is_some_and(|next| expected != next);
            if self.sw.buffered_packets() == 0 && !tail_missing {
                return;
            }
            self.link_stats.note(LinkErrorKind::Gap);
            if !self.try_redeliver(expected, 0, invokes, bytes, 0) {
                self.flight.record(FlightRecord {
                    kind: FlightKind::LinkError,
                    core: 0,
                    seq: expected,
                    cycle: self.dut.cycles(),
                    value: LinkErrorKind::Gap as u64,
                });
                self.link_error = Some((LinkErrorKind::Gap, expected, 0));
                return;
            }
        }
    }

    fn charge_transfer(&mut self, t: &Transfer, before: &CheckStats) {
        let after = self.checker.stats();
        let host = self.platform.host();
        let sw_cost = (after.events - before.events) as f64 * host.event_fixed_s
            + (after.instructions - before.instructions) as f64 * host.ref_step_s
            + t.bytes.len() as f64 * host.event_per_byte_s;
        self.timing.on_transfer(
            self.platform.link(),
            t.invokes,
            t.bytes.len() as u64,
            sw_cost,
        );
    }

    /// Replay flow (paper §4.4): revert, retransmit, reprocess.
    fn on_mismatch(&mut self, coarse: Mismatch, invokes: &mut u64, bytes: &mut u64) {
        let core = coarse.core;
        self.flight.record(FlightRecord {
            kind: FlightKind::Mismatch,
            core,
            seq: 0,
            cycle: self.dut.cycles(),
            value: coarse.seq,
        });
        let Some(rb) = &self.replay_buffer else {
            // Unfused configurations: the mismatch is already precise.
            self.failure = Some(FailureReport {
                precise: Some(coarse.clone()),
                coarse,
                token_range: (0, 0),
                replayed_events: 0,
                partial: false,
            });
            return;
        };

        let t0 = self.timer.start();
        let Some((from, to)) = self.checker.revert_for_replay(core) else {
            self.failure = Some(FailureReport {
                precise: Some(coarse.clone()),
                coarse,
                token_range: (0, 0),
                replayed_events: 0,
                partial: false,
            });
            return;
        };

        let Retransmission { events, complete } = rb.retransmit(core, from, to);
        // Charge the retransmission: one request plus the unfused payload.
        let replay_bytes: usize = events.iter().map(|e| 2 + e.encoded_len()).sum();
        *invokes += 1;
        *bytes += replay_bytes as u64;
        let before = *self.checker.stats();
        let precise = self.checker.replay_unfused(core, &events);
        self.timer.stop(Phase::Arq, t0);
        let after = self.checker.stats();
        let host = self.platform.host();
        let sw_cost = (after.events - before.events) as f64 * host.event_fixed_s
            + (after.instructions - before.instructions) as f64 * host.ref_step_s
            + replay_bytes as f64 * host.event_per_byte_s;
        self.timing
            .on_transfer(self.platform.link(), 1, replay_bytes as u64, sw_cost);

        self.failure = Some(FailureReport {
            coarse,
            precise,
            token_range: (from, to),
            replayed_events: events.len(),
            partial: !complete,
        });
    }
}
