//! The co-simulation engine: DUT + acceleration unit + link model + checker.
//!
//! The engine runs the DUT cycle by cycle, streams verification events
//! through the configured acceleration pipeline, decodes and checks them
//! against per-core reference models, and accounts simulated time with the
//! paper's LogGP overhead model (Eq. 1):
//!
//! - **blocking** configurations (baseline, +Batch) pause the DUT for every
//!   transfer's startup, transmission and software processing;
//! - **non-blocking** configurations overlap hardware execution, link
//!   transfers and software processing, with a bounded in-flight queue
//!   providing backpressure (paper §4.5).
//!
//! Real bytes flow through real pack/fuse/parse code; only *time* is
//! virtual, so every reported speedup derives from genuinely reduced
//! invocations, bytes and checks. The receive side is the shared
//! [`Consumer`] pipeline; the engine contributes its virtual link
//! ([`QueueSink`] drained in-line) and a [`ChargeObserver`] that prices
//! every transfer on the LogGP timeline.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};

use difftest_dut::{BugSpec, Dut, DutConfig};
use difftest_platform::{LinkParams, OverheadBreakdown, Platform};
use difftest_stats::{export_to_env, Metrics, Phase, SpanBuf, Tracer, PID_CONSUMER, PID_PRODUCER};
use difftest_workload::Workload;

use crate::batch::peek_packet_seq;
use crate::checker::{CheckStats, Mismatch, Verdict};
use crate::consume::{ChargeObserver, Consumer, Step};
use crate::fault::{FaultPlan, LinkErrorKind};
use crate::link::{FusionWatch, QueueSink, SendLink};
use crate::replay::{FailureReport, Retransmission};
use crate::session::{RunCommon, Session};
use crate::squash::SquashStats;
use crate::transport::{AccelUnit, Transfer};

pub use crate::session::{DiffConfig, RunOutcome};

/// Build-time validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `max_cycles` must be positive.
    ZeroCycles,
    /// Packet capacity below the largest single item.
    PacketTooSmall(usize),
    /// Fusion window must be positive.
    ZeroWindow,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroCycles => write!(f, "max_cycles must be positive"),
            BuildError::PacketTooSmall(n) => write!(f, "packet capacity {n} below 1024 bytes"),
            BuildError::ZeroWindow => write!(f, "fusion window must be positive"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Configures and builds a [`CoSimulation`].
#[derive(Debug, Clone)]
pub struct CoSimulationBuilder {
    dut: DutConfig,
    platform: Platform,
    config: DiffConfig,
    max_cycles: u64,
    bugs: Vec<BugSpec>,
    packet_bytes: usize,
    fusion_window: u32,
    order_coupled: bool,
    differencing: bool,
    replay: bool,
    queue_depth: usize,
    fault_plan: Option<FaultPlan>,
    tracer: Option<Tracer>,
}

impl Default for CoSimulationBuilder {
    fn default() -> Self {
        CoSimulationBuilder {
            dut: DutConfig::xiangshan_default(),
            platform: Platform::palladium(),
            config: DiffConfig::BNSD,
            max_cycles: 1_000_000,
            bugs: Vec::new(),
            packet_bytes: 4096,
            fusion_window: 32,
            order_coupled: false,
            differencing: true,
            replay: true,
            queue_depth: 8,
            fault_plan: None,
            tracer: None,
        }
    }
}

impl CoSimulationBuilder {
    /// Selects the DUT configuration (default: XiangShan default).
    pub fn dut(mut self, dut: DutConfig) -> Self {
        self.dut = dut;
        self
    }

    /// Selects the platform model (default: Palladium).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Selects the optimization configuration (default: BNSD).
    pub fn config(mut self, config: DiffConfig) -> Self {
        self.config = config;
        self
    }

    /// Caps the simulated cycles (default: 1,000,000).
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Injects bugs into core 0 of the DUT.
    pub fn bugs(mut self, bugs: Vec<BugSpec>) -> Self {
        self.bugs = bugs;
        self
    }

    /// Sets the transmission packet capacity in bytes (default: 4096).
    pub fn packet_bytes(mut self, bytes: usize) -> Self {
        self.packet_bytes = bytes;
        self
    }

    /// Sets the fusion window in commits (default: 32).
    pub fn fusion_window(mut self, commits: u32) -> Self {
        self.fusion_window = commits;
        self
    }

    /// Uses the order-coupled fusion baseline of prior work (default: off).
    pub fn order_coupled(mut self, coupled: bool) -> Self {
        self.order_coupled = coupled;
        self
    }

    /// Enables or disables differencing within Squash (default: on).
    pub fn differencing(mut self, on: bool) -> Self {
        self.differencing = on;
        self
    }

    /// Enables the Replay debugging mechanism (default: on; only effective
    /// with [`DiffConfig::BNSD`]).
    pub fn replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// Sets the non-blocking in-flight queue depth (default: 8).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Injects link faults per a seeded schedule (default: clean link).
    /// With [`DiffConfig::BNSD`] and replay enabled, detected failures
    /// first attempt bounded recovery by retransmission from the packet
    /// retention ring; otherwise they surface as
    /// [`RunOutcome::LinkError`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the span tracer (default: the `DIFFTEST_TRACE`
    /// environment variable). Tests inject a
    /// [`FakeClock`](difftest_stats::FakeClock)-driven tracer here for
    /// deterministic span timestamps.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the co-simulation over a workload image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid parameter combinations.
    pub fn build(self, workload: &Workload) -> Result<CoSimulation, BuildError> {
        if self.max_cycles == 0 {
            return Err(BuildError::ZeroCycles);
        }
        if self.packet_bytes < 1024 {
            return Err(BuildError::PacketTooSmall(self.packet_bytes));
        }
        if self.fusion_window == 0 {
            return Err(BuildError::ZeroWindow);
        }

        let mut session = Session::new(
            self.dut.clone(),
            self.config,
            workload,
            self.bugs,
            self.max_cycles,
            self.queue_depth,
            self.fault_plan,
        )
        .with_packet_bytes(self.packet_bytes)
        .with_fusion_window(self.fusion_window)
        .with_order_coupled(self.order_coupled)
        .with_differencing(self.differencing);
        if self.tracer.is_some() {
            session = session.with_tracer(self.tracer);
        }

        let replay_on = self.replay && self.config.squash();
        let dut = session.dut();
        let accel = session.accel();
        let consumer = if replay_on {
            session.consumer_with_retention(true, 1 << 16)
        } else {
            session.consumer()
        }
        .with_spans(session.span_sink(PID_CONSUMER, 0, "consumer", "consumer"));
        let link = session
            .send_link(QueueSink::default())
            .with_spans(session.span_sink(PID_PRODUCER, 0, "producer", "dut"));
        let tracer = session.tracer().cloned();
        let gates = self.dut.gates;

        Ok(CoSimulation {
            dut,
            accel,
            consumer,
            fusion: FusionWatch::default(),
            link,
            timing: Timing::new(
                self.platform.cycle_time_s(gates),
                self.platform.step_sync_s(),
                match self.config {
                    DiffConfig::Z => TimingMode::BlockingStep,
                    DiffConfig::B => TimingMode::Blocking,
                    DiffConfig::BN | DiffConfig::BNSD => TimingMode::Pipelined,
                },
                self.queue_depth,
            ),
            platform: self.platform,
            config: self.config,
            max_cycles: self.max_cycles,
            staging: Vec::new(),
            events_buf: Vec::new(),
            failure: None,
            tracer,
        })
    }
}

/// The result of one co-simulation run: the shared [`RunCommon`] core
/// plus the engine's virtual-time extensions.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The report core shared by every runner (verdict, volume, link
    /// health, observability).
    pub common: RunCommon,
    /// Failure details when `outcome == Mismatch`.
    pub failure: Option<FailureReport>,
    /// Simulated wall-clock seconds (virtual time).
    pub sim_time_s: f64,
    /// Achieved co-simulation speed in Hz (cycles / simulated second).
    pub speed_hz: f64,
    /// The platform's DUT-only speed for this design (theoretical maximum).
    pub dut_only_hz: f64,
    /// Per-phase communication overhead attribution.
    pub overhead: OverheadBreakdown,
    /// Communication invocations.
    pub invokes: u64,
    /// Bytes transferred hardware→software.
    pub bytes: u64,
    /// Fusion statistics (BNSD only).
    pub squash: Option<SquashStats>,
    /// Checker statistics.
    pub check: CheckStats,
    /// Events evicted from the replay ring before use (the
    /// `replay.dropped` counter): when non-zero, a localization over an
    /// old token range may be partial.
    pub replay_dropped: u64,
}

impl Deref for RunReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        &self.common
    }
}

impl DerefMut for RunReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        &mut self.common
    }
}

impl RunReport {
    /// Fraction of simulated time spent on communication (not DUT
    /// execution): the paper's "communication overhead".
    pub fn comm_overhead_fraction(&self) -> f64 {
        let dut_time = self.cycles as f64 / self.dut_only_hz;
        if self.sim_time_s <= 0.0 {
            0.0
        } else {
            ((self.sim_time_s - dut_time) / self.sim_time_s).max(0.0)
        }
    }

    /// Speedup of this run over another (e.g. over the baseline).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        self.speed_hz / other.speed_hz
    }

    /// Exports the run's statistics as named performance counters
    /// (paper §5 "performance evaluation support").
    pub fn counters(&self) -> difftest_stats::Counters {
        let mut c = difftest_stats::Counters::new();
        c.set("hw.cycles", self.cycles);
        c.set("hw.instructions", self.instructions);
        c.set("link.invokes", self.invokes);
        c.set("link.bytes", self.bytes);
        c.set("sw.events_checked", self.check.events);
        c.set("sw.instructions_stepped", self.check.instructions);
        c.set("sw.mmio_skips", self.check.skips);
        c.set("sw.interrupts_synced", self.check.interrupts);
        c.set("sw.exceptions_checked", self.check.exceptions);
        c.set("sw.fused_records", self.check.fused_records);
        c.set("sw.bytes_compared", self.check.bytes);
        if let Some(s) = self.squash {
            c.set("squash.commits_fused", s.commits_fused);
            c.set("squash.fused_records", s.fused_records);
            c.set("squash.subsumed", s.subsumed);
            c.set("squash.tagged", s.tagged);
            c.set("squash.diffed", s.diffed);
            c.set("squash.nde_breaks", s.nde_breaks);
        }
        for kind in LinkErrorKind::ALL {
            c.set(
                format!("link.err.{}", kind.counter_name()),
                self.link.count(kind),
            );
        }
        c.set("link.stale_dropped", self.link.stale_dropped);
        c.set("link.recovered", self.link.recovered);
        c.set("link.retransmits", self.link.retransmits);
        c.set("link.retransmit_bytes", self.link.retransmit_bytes);
        c.set("replay.dropped", self.replay_dropped);
        if let Some(f) = self.fault {
            c.set("fault.delivered", f.delivered);
            c.set("fault.dropped", f.dropped);
            c.set("fault.duplicated", f.duplicated);
            c.set("fault.reordered", f.reordered);
            c.set("fault.truncated", f.truncated);
            c.set("fault.corrupted", f.corrupted);
        }
        c
    }
}

/// How simulated time is charged (derived from [`DiffConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimingMode {
    /// Step-and-compare per-event baseline: a per-cycle clock-control sync
    /// plus fully serial transfers.
    BlockingStep,
    /// Packed but blocking: the DUT pauses for each packet round trip.
    Blocking,
    /// Non-blocking (paper §4.5): the hardware streams packet bytes (which
    /// stalls the emulated clock for their wire time), while startup
    /// handshakes and software processing run on overlapped lanes with a
    /// bounded in-flight queue providing backpressure.
    Pipelined,
}

/// LogGP virtual-time accounting (Eq. 1, per [`TimingMode`]).
#[derive(Debug)]
struct Timing {
    mode: TimingMode,
    cycle_time: f64,
    step_sync: f64,
    queue_depth: usize,
    hw: f64,
    link_free: f64,
    sw_free: f64,
    inflight: VecDeque<f64>,
    end: f64,
    overhead: OverheadBreakdown,
}

impl Timing {
    fn new(cycle_time: f64, step_sync: f64, mode: TimingMode, queue_depth: usize) -> Self {
        Timing {
            mode,
            cycle_time,
            step_sync,
            queue_depth,
            hw: 0.0,
            link_free: 0.0,
            sw_free: 0.0,
            inflight: VecDeque::new(),
            end: 0.0,
            overhead: OverheadBreakdown::default(),
        }
    }

    fn on_cycle(&mut self) {
        self.hw += self.cycle_time;
        if self.mode == TimingMode::BlockingStep {
            // Step-and-compare advances the emulated clock through a
            // per-cycle hardware/software handshake.
            self.hw += self.step_sync;
            self.overhead.startup_s += self.step_sync;
        }
    }

    fn on_transfer(&mut self, link: &LinkParams, invokes: u64, bytes: u64, sw_cost: f64) {
        let startup = link.startup_time(invokes);
        let trans = link.transmission_time(bytes);
        self.overhead.startup_s += startup;
        self.overhead.transmission_s += trans;
        self.overhead.software_s += sw_cost;

        match self.mode {
            TimingMode::BlockingStep | TimingMode::Blocking => {
                // The DUT clock pauses for the full round trip.
                self.hw += startup + trans + sw_cost;
                self.end = self.hw;
            }
            TimingMode::Pipelined => {
                // Backpressure: a bounded number of transfers in flight.
                while self.inflight.len() >= self.queue_depth {
                    if let Some(t) = self.inflight.pop_front() {
                        if t > self.hw {
                            self.hw = t;
                        }
                    }
                }
                // Streaming the payload shares the emulation fabric
                // (GFIFO/XDMA), so the wire time stalls the DUT clock...
                self.hw += trans;
                // ...while the handshake and software processing overlap.
                let link_done = self.link_free.max(self.hw) + startup;
                self.link_free = link_done;
                let sw_done = self.sw_free.max(link_done) + sw_cost;
                self.sw_free = sw_done;
                self.inflight.push_back(sw_done);
                self.end = self.end.max(sw_done);
            }
        }
    }

    fn total(&self) -> f64 {
        self.hw.max(self.end)
    }
}

/// The engine's [`ChargeObserver`]: prices each transfer that crossed
/// the link on the LogGP timeline (Eq. 1) and tallies the run's invoke
/// and byte volume. The software cost derives from the checker-stats
/// delta the transfer caused — real work, virtually priced.
struct LogGpCharge<'a> {
    timing: &'a mut Timing,
    platform: &'a Platform,
    invokes: &'a mut u64,
    bytes: &'a mut u64,
}

impl ChargeObserver for LogGpCharge<'_> {
    fn transfer_done(&mut self, t: &Transfer, before: &CheckStats, after: &CheckStats) {
        *self.invokes += t.invokes;
        *self.bytes += t.bytes.len() as u64;
        let host = self.platform.host();
        let sw_cost = (after.events - before.events) as f64 * host.event_fixed_s
            + (after.instructions - before.instructions) as f64 * host.ref_step_s
            + t.bytes.len() as f64 * host.event_per_byte_s;
        self.timing.on_transfer(
            self.platform.link(),
            t.invokes,
            t.bytes.len() as u64,
            sw_cost,
        );
    }
}

/// A runnable co-simulation.
#[derive(Debug)]
pub struct CoSimulation {
    dut: Dut,
    accel: AccelUnit,
    /// The shared receive-side pipeline (decode, check, ARQ recovery,
    /// observability) — the engine drives it in-line on one timeline.
    consumer: Consumer,
    fusion: FusionWatch,
    /// The virtual link: the shared send path over an in-memory queue.
    link: SendLink<QueueSink>,
    platform: Platform,
    config: DiffConfig,
    timing: Timing,
    max_cycles: u64,
    /// Transfers produced by the accelerator, before crossing the link.
    staging: Vec<Transfer>,
    events_buf: Vec<difftest_event::MonitoredEvent>,
    failure: Option<FailureReport>,
    /// Span-trace configuration, when `DIFFTEST_TRACE` (or a builder
    /// override) enabled tracing.
    tracer: Option<Tracer>,
}

impl CoSimulation {
    /// Starts configuring a co-simulation.
    pub fn builder() -> CoSimulationBuilder {
        CoSimulationBuilder::default()
    }

    /// The selected optimization configuration.
    pub fn config(&self) -> DiffConfig {
        self.config
    }

    /// The design under test (device transcripts, per-core state).
    pub fn dut(&self) -> &Dut {
        &self.dut
    }

    /// The ISA checker (statistics, per-core progress).
    pub fn checker(&self) -> &crate::checker::Checker {
        self.consumer.checker()
    }

    /// Runs to completion (trap, mismatch or cycle budget) and reports.
    pub fn run(&mut self) -> RunReport {
        let mut invokes = 0u64;
        let mut bytes = 0u64;

        while self.dut.halted().is_none() && self.dut.cycles() < self.max_cycles {
            let t0 = self.consumer.timer_mut().start();
            self.events_buf.clear();
            self.dut.tick_into(&mut self.events_buf);
            self.timing.on_cycle();
            self.consumer.timer_mut().stop(Phase::Tick, t0);

            let t0 = self.consumer.timer_mut().start();
            if let Some(rb) = self.consumer.retention_mut() {
                rb.push_slice(&self.events_buf);
            }
            self.consumer.timer_mut().stop(Phase::Monitor, t0);

            let t0 = self.consumer.timer_mut().start();
            self.accel.push_cycle(&self.events_buf, &mut self.staging);
            self.consumer.timer_mut().stop(Phase::Pack, t0);
            self.route_staged();
            if self.process_queued(&mut invokes, &mut bytes) {
                break;
            }
        }

        // Drain: flush fusion windows, partial packets and the link's
        // reorder holds, then pending transfers, then any terminal gaps.
        if !self.consumer.stopped() {
            let t0 = self.consumer.timer_mut().start();
            self.accel.flush(&mut self.staging);
            self.consumer.timer_mut().stop(Phase::Pack, t0);
            self.route_staged();
            let t0 = self.consumer.timer_mut().start();
            self.link.finish();
            self.consumer.timer_mut().stop(Phase::Transport, t0);
            let stopped = self.process_queued(&mut invokes, &mut bytes);
            if !stopped {
                let cycle = self.dut.cycles();
                let produced = self.link.produced();
                let mut obs = LogGpCharge {
                    timing: &mut self.timing,
                    platform: &self.platform,
                    invokes: &mut invokes,
                    bytes: &mut bytes,
                };
                self.consumer.finish_stream(Some(produced), cycle, &mut obs);
            }
        }
        if self.failure.is_none() {
            if let Some(m) = self.consumer.mismatch().cloned() {
                self.on_mismatch(m, &mut invokes, &mut bytes);
            }
        }

        let outcome = if self.failure.is_some() {
            RunOutcome::Mismatch
        } else if let Some((kind, seq, core)) = self.consumer.link_error() {
            RunOutcome::LinkError { kind, seq, core }
        } else {
            match self.consumer.verdict() {
                Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
                Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
                _ => RunOutcome::MaxCycles,
            }
        };

        let cycles = self.dut.cycles();
        let sim_time_s = self.timing.total();
        let flight = match outcome {
            RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
                Some(self.consumer.flight_snapshot())
            }
            _ => None,
        };
        let mut report = RunReport {
            common: RunCommon {
                outcome,
                mismatch: self.failure.as_ref().map(|f| f.coarse.clone()),
                cycles,
                instructions: self.dut.total_commits(),
                items: self.consumer.items(),
                link: self.consumer.link_stats(),
                fault: self.link.fault_stats(),
                metrics: Metrics::new(),
                flight,
            },
            failure: self.failure.clone(),
            sim_time_s,
            speed_hz: cycles as f64 / sim_time_s.max(1e-12),
            dut_only_hz: self.platform.dut_only_hz(self.dut.config().gates),
            overhead: self.timing.overhead,
            invokes,
            bytes,
            squash: self.accel.squash_stats(),
            check: *self.consumer.checker().stats(),
            replay_dropped: self.consumer.retention_dropped(),
        };
        // Snapshot the registry into the report (`self` stays runnable)
        // and complete it with the run counters.
        let mut metrics = self.consumer.metrics_snapshot();
        metrics.counters.merge(&report.counters());
        let bufs: Vec<SpanBuf> = [self.link.take_spans(), self.consumer.spans_mut().take_buf()]
            .into_iter()
            .filter(|b| !b.is_empty())
            .collect();
        crate::session::export_trace(self.tracer.as_ref(), &bufs, &mut metrics);
        report.common.metrics = metrics;
        if let Err(e) = export_to_env("engine", &report.metrics, report.flight.as_ref()) {
            eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
        }
        report
    }

    /// Moves accelerator-produced transfers across the (possibly faulty)
    /// link into the receive queue, retaining pristine packet copies for
    /// retransmission while fault injection is active.
    fn route_staged(&mut self) {
        if self.staging.is_empty() {
            return;
        }
        let cycle = self.dut.cycles();
        let t0 = self.consumer.timer_mut().start();
        self.fusion
            .observe(&self.accel, true, 0, cycle, self.consumer.flight_mut());
        if self.link.is_faulty() && self.config.batch() {
            if let Some(rb) = self.consumer.retention_mut() {
                for t in &self.staging {
                    if let Some(seq) = peek_packet_seq(&t.bytes) {
                        rb.record_packet(seq, &t.bytes);
                    }
                }
            }
        }
        self.link
            .feed(&mut self.staging, self.consumer.flight_mut(), cycle);
        self.consumer.timer_mut().stop(Phase::Transport, t0);
    }

    /// Feeds queued transfers through the shared pipeline; returns `true`
    /// when the run must stop.
    fn process_queued(&mut self, invokes: &mut u64, bytes: &mut u64) -> bool {
        let transfers = std::mem::take(&mut self.link.sink_mut().queue);
        let cycle = self.dut.cycles();
        for t in &transfers {
            let mut obs = LogGpCharge {
                timing: &mut self.timing,
                platform: &self.platform,
                invokes: &mut *invokes,
                bytes: &mut *bytes,
            };
            if self.consumer.ingest(t, cycle, &mut obs) == Step::Stop {
                return true;
            }
        }
        false
    }

    /// Replay flow (paper §4.4): revert, retransmit, reprocess. The
    /// consumer already recorded the `Mismatch` flight at detection.
    fn on_mismatch(&mut self, coarse: Mismatch, invokes: &mut u64, bytes: &mut u64) {
        let core = coarse.core;
        let (checker, retention, timer) = self.consumer.replay_parts();
        let Some(rb) = retention else {
            // Unfused configurations: the mismatch is already precise.
            self.failure = Some(FailureReport {
                precise: Some(coarse.clone()),
                coarse,
                token_range: (0, 0),
                replayed_events: 0,
                partial: false,
            });
            return;
        };

        let t0 = timer.start();
        let Some((from, to)) = checker.revert_for_replay(core) else {
            self.failure = Some(FailureReport {
                precise: Some(coarse.clone()),
                coarse,
                token_range: (0, 0),
                replayed_events: 0,
                partial: false,
            });
            return;
        };

        let Retransmission { events, complete } = rb.retransmit(core, from, to);
        // Charge the retransmission: one request plus the unfused payload.
        let replay_bytes: usize = events.iter().map(|e| 2 + e.encoded_len()).sum();
        *invokes += 1;
        *bytes += replay_bytes as u64;
        let before = *checker.stats();
        let precise = checker.replay_unfused(core, &events);
        timer.stop(Phase::Arq, t0);
        let after = *checker.stats();
        let host = self.platform.host();
        let sw_cost = (after.events - before.events) as f64 * host.event_fixed_s
            + (after.instructions - before.instructions) as f64 * host.ref_step_s
            + replay_bytes as f64 * host.event_per_byte_s;
        self.timing
            .on_transfer(self.platform.link(), 1, replay_bytes as u64, sw_cost);

        self.failure = Some(FailureReport {
            coarse,
            precise,
            token_range: (from, to),
            replayed_events: events.len(),
            partial: !complete,
        });
    }
}
