//! Per-core sharded parallel checking: one decoder + checker worker per
//! DUT core.
//!
//! [`crate::threaded`] demonstrates the paper's non-blocking architecture
//! with a single software consumer; for multi-core DUTs that consumer is
//! the bottleneck because every core's reference model steps on one host
//! thread. This module shards the software side by core: the producer runs
//! the DUT and one [`AccelUnit`] *per core*, stamping each
//! [`Transfer`](crate::transport::Transfer) with its core id, and routes
//! it over a dedicated bounded channel to that core's worker — O(1)
//! routing, no demultiplexing on the consumer side. Each worker drives
//! its own shared [`Consumer`](crate::consume::Consumer) pipeline over a
//! single-core checker, so the per-core reference models step
//! concurrently on separate host threads.
//!
//! Coordination:
//!
//! - **Stop broadcast** — any worker that verifies a halting trap or
//!   detects a mismatch sets a shared [`AtomicBool`]; the producer polls
//!   it every DUT cycle and stops feeding the channels.
//! - **First-mismatch semantics** — when several cores fail in the same
//!   drain, the coordinator reports the mismatch with the lowest
//!   instruction count (ties broken by the lower core id), matching what a
//!   single in-order consumer would have hit first.
//! - **Backpressure** — each per-core channel is bounded by
//!   `queue_depth`, the paper's sending-queue model applied per shard.
//
// Seam rule: runner modules build on `session`/`link`/`consume` only —
// never on another runner's internals (enforced by `make ci`'s grep).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel;
use difftest_dut::{BugSpec, DutConfig};
use difftest_stats::{
    export_to_env, FlightRecorder, FlightSnapshot, Metrics, Phase, PhaseTimer, SpanBuf,
    PID_CONSUMER, PID_PRODUCER,
};
use difftest_workload::Workload;

use crate::checker::{Mismatch, Verdict};
use crate::consume::{drive, NoCharge};
use crate::fault::{FaultPlan, FaultStats, LinkErrorKind, LinkStats};
use crate::link::{ChannelSink, ChannelSource, FusionWatch, SendLink};
use crate::pool::PoolStats;
use crate::session::{DiffConfig, RunCommon, RunOutcome, Session};
use crate::transport::AccelUnit;

/// Per-worker (per-core) statistics of a sharded run.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// DUT core this worker checked.
    pub core: u8,
    /// Wire items checked by this worker.
    pub items: u64,
    /// Instructions stepped on this worker's reference model.
    pub instructions: u64,
    /// Worker wall-clock seconds (receive loop + finalize).
    pub wall_s: f64,
    /// Items checked per wall-clock second on this worker.
    pub items_per_sec: f64,
}

/// Result of a sharded run: the shared [`RunCommon`] core plus per-worker
/// wall-clock throughput.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The report core shared by every runner (verdict, volume, link
    /// health, observability). The mismatch is the winning one across
    /// shards (first-mismatch semantics); link counters aggregate all
    /// workers.
    pub common: RunCommon,
    /// Host wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Aggregate items per wall-clock second across workers.
    pub items_per_sec: f64,
    /// One report per core worker, ordered by core id.
    pub workers: Vec<WorkerReport>,
    /// Aggregate buffer-pool statistics across the per-core producers.
    pub pool: PoolStats,
}

impl Deref for ShardedReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        &self.common
    }
}

impl DerefMut for ShardedReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        &mut self.common
    }
}

impl ShardedReport {
    /// Exports the run as [`difftest_stats::Counters`] (per-worker
    /// throughput and buffer-recycling rates included), for the same
    /// table-rendering toolkit the engine reports feed.
    pub fn counters(&self) -> difftest_stats::Counters {
        let mut c = difftest_stats::Counters::new();
        c.set("hw.cycles", self.cycles);
        c.set("hw.instructions", self.instructions);
        c.set("sw.items_checked", self.items);
        c.set("host.items_per_sec", self.items_per_sec as u64);
        c.set("host.cycles_per_sec", self.cycles_per_sec as u64);
        c.set("pool.hits", self.pool.hits);
        c.set("pool.misses", self.pool.misses);
        c.set("pool.returns", self.pool.returns);
        c.set("pool.discards", self.pool.discards);
        c.set("pool.hit_rate_pct", (self.pool.hit_rate() * 100.0) as u64);
        for w in &self.workers {
            c.set(format!("worker{}.items", w.core), w.items);
            c.set(format!("worker{}.instructions", w.core), w.instructions);
            c.set(
                format!("worker{}.items_per_sec", w.core),
                w.items_per_sec as u64,
            );
        }
        for kind in LinkErrorKind::ALL {
            c.set(
                format!("link.err.{}", kind.counter_name()),
                self.link.count(kind),
            );
        }
        c.set("link.stale_dropped", self.link.stale_dropped);
        c
    }
}

/// What one worker thread hands back to the coordinator.
struct WorkerOutcome {
    core: u8,
    items: u64,
    instructions: u64,
    wall_s: f64,
    verdict: Option<Verdict>,
    mismatch: Option<Mismatch>,
    link_error: Option<(LinkErrorKind, u32, u8)>,
    link: LinkStats,
    metrics: Metrics,
    flight: FlightSnapshot,
    spans: SpanBuf,
}

/// Runs a co-simulation with one checker worker per DUT core.
///
/// The producer thread runs the DUT and one acceleration unit per core;
/// each worker thread decodes and checks one core's stream. Verdicts are
/// aggregated with first-mismatch semantics (see the module docs). The
/// signature mirrors [`crate::run_threaded`]; on a single-core DUT the two
/// runners produce identical verdicts, the sharded one merely adds the
/// per-core plumbing.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour.
pub fn run_sharded(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> ShardedReport {
    run_sharded_faulty(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
    )
}

/// [`run_sharded`] with an optional fault-injecting link on every
/// per-core channel. Each shard gets an independent deterministic
/// [`crate::fault::FaultyLink`] derived from the plan's seed
/// (`seed + core`), so a multi-core schedule stays reproducible while the
/// shards fail differently. Like the threaded runner this one has no
/// retention ring: decode failures and terminal gaps surface as
/// [`RunOutcome::LinkError`] (stale duplicates are dropped and counted).
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_sharded_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> ShardedReport {
    run_sharded_session(Session::new(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
    ))
}

/// [`run_sharded_faulty`] on a pre-built [`Session`] — the entry point
/// tests use to inject a [`Tracer`](difftest_stats::Tracer) (via
/// [`Session::with_tracer`]) without touching process environment.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_sharded_session(session: Session) -> ShardedReport {
    session.require_nonblock("sharded");
    let max_cycles = session.max_cycles();
    let cores = session.cores();
    let stop = Arc::new(AtomicBool::new(false));

    let mut links: Vec<SendLink<ChannelSink>> = Vec::with_capacity(cores);
    let mut rxs = Vec::with_capacity(cores);
    for k in 0..cores {
        let (tx, rx) = channel::bounded(session.queue_depth());
        // One independent deterministic link per shard (seed + core),
        // counting this shard's produced packets for tail-loss detection.
        links.push(
            session
                .send_link_for_core(k as u8, ChannelSink(tx))
                .with_spans(session.span_sink(
                    PID_PRODUCER,
                    k as u32,
                    "producer",
                    &format!("dut-core{k}"),
                )),
        );
        rxs.push(rx);
    }
    let produced_handles: Vec<_> = links.iter().map(SendLink::produced_handle).collect();

    let start = Instant::now();

    let producer = {
        let session = session.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut dut = session.dut();
            let mut accels: Vec<AccelUnit> = (0..cores)
                .map(|k| session.accel_for_core(k as u8))
                .collect();
            let mut fusions: Vec<FusionWatch> =
                (0..cores).map(|_| FusionWatch::default()).collect();
            let mut events = Vec::new();
            let mut transfers = Vec::new();
            let mut timer = PhaseTimer::monotonic();
            let mut rec = FlightRecorder::default();
            'run: while dut.halted().is_none() && dut.cycles() < max_cycles {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let t0 = timer.start();
                events.clear();
                dut.tick_into(&mut events);
                timer.stop(Phase::Tick, t0);
                for (k, accel) in accels.iter_mut().enumerate() {
                    let t0 = timer.start();
                    accel.push_cycle_for_route_core(&events, &mut transfers);
                    timer.stop(Phase::Pack, t0);
                    fusions[k].observe(
                        accel,
                        !transfers.is_empty(),
                        k as u8,
                        dut.cycles(),
                        &mut rec,
                    );
                    // Blocking sends inside: each bounded channel is one
                    // shard's sending queue with backpressure.
                    let t0 = timer.start();
                    let alive = links[k].feed(&mut transfers, &mut rec, dut.cycles());
                    timer.stop(Phase::Transport, t0);
                    if !alive {
                        break 'run;
                    }
                }
            }
            for (k, accel) in accels.iter_mut().enumerate() {
                let t0 = timer.start();
                accel.flush(&mut transfers);
                timer.stop(Phase::Pack, t0);
                let t0 = timer.start();
                if links[k].feed(&mut transfers, &mut rec, dut.cycles()) {
                    // Release transfers still held for reordering.
                    links[k].finish();
                }
                timer.stop(Phase::Transport, t0);
            }
            let pool =
                accels
                    .iter()
                    .map(AccelUnit::pool_stats)
                    .fold(PoolStats::default(), |a, s| PoolStats {
                        hits: a.hits + s.hits,
                        misses: a.misses + s.misses,
                        returns: a.returns + s.returns,
                        discards: a.discards + s.discards,
                    });
            let fault_stats = if session.fault_plan().is_some() {
                Some(links.iter().filter_map(SendLink::fault_stats).fold(
                    FaultStats::default(),
                    |a, s| FaultStats {
                        delivered: a.delivered + s.delivered,
                        dropped: a.dropped + s.dropped,
                        duplicated: a.duplicated + s.duplicated,
                        reordered: a.reordered + s.reordered,
                        truncated: a.truncated + s.truncated,
                        corrupted: a.corrupted + s.corrupted,
                    },
                ))
            } else {
                None
            };
            let spans: Vec<SpanBuf> = links.iter_mut().map(SendLink::take_spans).collect();
            drop(links); // closes every channel: end of stream
            (
                dut.cycles(),
                dut.total_commits(),
                pool,
                fault_stats,
                timer.times(),
                rec.snapshot(),
                spans,
            )
        })
    };

    let workers: Vec<thread::JoinHandle<WorkerOutcome>> = rxs
        .into_iter()
        .enumerate()
        .map(|(k, rx)| {
            let session = session.clone();
            let stop = Arc::clone(&stop);
            let produced = Arc::clone(&produced_handles[k]);
            thread::spawn(move || {
                let started = Instant::now();
                let core = k as u8;
                let mut source = ChannelSource(rx);
                let mut consumer = session
                    .consumer_for_core(core)
                    .with_spans(session.span_sink(
                        PID_CONSUMER,
                        core as u32,
                        "consumer",
                        &format!("worker-{core}"),
                    ));
                let exhausted = drive(&mut source, &mut consumer, || {
                    stop.store(true, Ordering::Release);
                });
                if exhausted {
                    // The channel closed, so this shard's `produced` is
                    // final: a packet still awaited was lost in flight.
                    let sent = produced.load(Ordering::Acquire);
                    consumer.finish_stream(Some(sent), 0, &mut NoCharge);
                }
                let instructions = consumer.checker().seq(core);
                let out = consumer.finish();
                WorkerOutcome {
                    core,
                    items: out.items,
                    instructions,
                    wall_s: started.elapsed().as_secs_f64(),
                    verdict: out.verdict,
                    mismatch: out.mismatch,
                    link_error: out.link_error,
                    link: out.link,
                    metrics: out.metrics,
                    flight: out.flight,
                    spans: out.spans,
                }
            })
        })
        .collect();

    let (cycles, instructions, pool, fault_stats, producer_times, producer_flight, producer_spans) =
        match producer.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        };
    let mut outcomes: Vec<WorkerOutcome> = Vec::with_capacity(cores);
    for w in workers {
        match w.join() {
            Ok(o) => outcomes.push(o),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    outcomes.sort_by_key(|o| o.core);

    // First-mismatch semantics across shards: lowest instruction count
    // wins, core id breaks ties deterministically. A genuine mismatch
    // outranks a link error (the stream prefix it was found on was
    // intact); the lowest-core link error outranks clean verdicts.
    let mismatch = outcomes
        .iter()
        .filter_map(|o| o.mismatch.clone())
        .min_by_key(|m| (m.seq, m.core));
    let link_error = outcomes.iter().filter_map(|o| o.link_error).next();
    let verdict = outcomes.iter().filter_map(|o| o.verdict).next();
    let link = outcomes.iter().fold(LinkStats::default(), |mut a, o| {
        for kind in LinkErrorKind::ALL {
            a.detected[kind as usize] += o.link.count(kind);
        }
        a.stale_dropped += o.link.stale_dropped;
        a
    });

    let outcome = if mismatch.is_some() {
        RunOutcome::Mismatch
    } else if let Some((kind, seq, core)) = link_error {
        RunOutcome::LinkError { kind, seq, core }
    } else {
        match verdict {
            Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
            Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
            _ => RunOutcome::MaxCycles,
        }
    };

    let items: u64 = outcomes.iter().map(|o| o.items).sum();

    // Deterministic aggregation: producer phases first, then every
    // worker's registry in core order (outcomes are already sorted), so
    // the merged metrics are independent of worker scheduling.
    let mut metrics = Metrics::new();
    metrics.phases.merge(&producer_times);
    for o in &outcomes {
        metrics.merge(&o.metrics);
    }
    metrics.counters.set("hw.cycles", cycles);
    metrics.counters.set("hw.instructions", instructions);
    // Producer tracks in core order, then worker tracks in core order
    // (outcomes are sorted), so the merged trace is schedule-independent.
    let bufs: Vec<SpanBuf> = producer_spans
        .into_iter()
        .chain(outcomes.iter().map(|o| o.spans.clone()))
        .filter(|b| !b.is_empty())
        .collect();
    crate::session::export_trace(session.tracer(), &bufs, &mut metrics);

    // Attach producer context plus the failing worker's view; the worker
    // whose verdict decided the outcome wins (first-mismatch semantics).
    let flight = match outcome {
        RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
            let failing_core = mismatch
                .as_ref()
                .map(|m| m.core)
                .or(link_error.map(|(_, _, core)| core));
            let mut snap = producer_flight;
            if let Some(o) = outcomes
                .iter()
                .find(|o| Some(o.core) == failing_core)
                .or_else(|| {
                    outcomes
                        .iter()
                        .find(|o| o.mismatch.is_some() || o.link_error.is_some())
                })
            {
                snap.append(&o.flight);
            }
            Some(snap)
        }
        _ => None,
    };
    if let Err(e) = export_to_env("sharded", &metrics, flight.as_ref()) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }

    let workers = outcomes
        .into_iter()
        .map(|o| WorkerReport {
            core: o.core,
            items: o.items,
            instructions: o.instructions,
            wall_s: o.wall_s,
            items_per_sec: o.items as f64 / o.wall_s.max(1e-9),
        })
        .collect();

    ShardedReport {
        common: RunCommon {
            outcome,
            mismatch,
            cycles,
            instructions,
            items,
            link,
            fault: fault_stats,
            metrics,
            flight,
        },
        wall_s,
        cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
        items_per_sec: items as f64 / wall_s.max(1e-9),
        workers,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_dut::BugKind;

    fn dual_core_minimal() -> DutConfig {
        let mut cfg = DutConfig::xiangshan_minimal();
        cfg.cores = 2;
        cfg
    }

    #[test]
    fn sharded_run_reaches_good_trap() {
        let w = Workload::microbench().seed(2).iterations(50).build();
        let r = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert!(r.items > 0);
        assert!(r.cycles_per_sec > 0.0);
        assert_eq!(r.workers.len(), 1);
        assert_eq!(r.workers[0].items, r.items);
    }

    #[test]
    fn sharded_run_detects_bugs() {
        let w = Workload::linux_boot().seed(2).iterations(300).build();
        let r = run_sharded(
            DutConfig::xiangshan_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    #[should_panic(expected = "non-blocking")]
    fn sharded_run_rejects_blocking_configs() {
        let w = Workload::microbench().seed(2).iterations(5).build();
        let _ = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
        );
    }

    #[test]
    fn dual_core_good_trap_with_per_worker_reports() {
        let w = Workload::microbench().seed(5).iterations(40).build();
        let r = run_sharded(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.workers[0].core, 0);
        assert_eq!(r.workers[1].core, 1);
        assert!(r.workers.iter().all(|wk| wk.items > 0));
        assert_eq!(r.items, r.workers.iter().map(|wk| wk.items).sum::<u64>());
    }

    #[test]
    fn dual_core_bug_detected() {
        let w = Workload::linux_boot().seed(3).iterations(300).build();
        let r = run_sharded(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    fn pool_recycles_after_warmup() {
        // Long enough that the bounded warmup allocations (at most the
        // in-flight window) are under 5% of total acquisitions.
        let w = Workload::microbench().seed(2).iterations(1500).build();
        let r = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            5_000_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        let s = r.pool;
        assert!(
            s.hits + s.misses > 0,
            "producer must draw payloads from the pool"
        );
        assert!(
            s.hit_rate() >= 0.95,
            "steady-state recycle rate {} below 95% ({s:?})",
            s.hit_rate()
        );
    }

    #[test]
    fn counters_export_worker_stats() {
        let w = Workload::microbench().seed(2).iterations(30).build();
        let r = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        let c = r.counters();
        assert_eq!(c.get("sw.items_checked"), r.items);
        assert_eq!(c.get("worker0.items"), r.items);
        assert_eq!(c.get("pool.hits"), r.pool.hits);
        assert_eq!(c.get("pool.misses"), r.pool.misses);
    }
}
