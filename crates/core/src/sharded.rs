//! Per-core sharded parallel checking: one decoder + checker worker per
//! DUT core.
//!
//! [`crate::threaded`] demonstrates the paper's non-blocking architecture
//! with a single software consumer; for multi-core DUTs that consumer is
//! the bottleneck because every core's reference model steps on one host
//! thread. This module shards the software side by core: the producer runs
//! the DUT and one [`AccelUnit`] *per core*, stamping each [`Transfer`]
//! with its core id, and routes it over a dedicated bounded channel to
//! that core's worker — O(1) routing, no demultiplexing on the consumer
//! side. Each worker owns a [`SwUnit`] and a single-core
//! [`Checker`](crate::Checker) ([`Checker::single`]), so the per-core
//! reference models step concurrently on separate host threads.
//!
//! Coordination:
//!
//! - **Stop broadcast** — any worker that verifies a halting trap or
//!   detects a mismatch sets a shared [`AtomicBool`]; the producer polls
//!   it every DUT cycle and stops feeding the channels.
//! - **First-mismatch semantics** — when several cores fail in the same
//!   drain, the coordinator reports the mismatch with the lowest
//!   instruction count (ties broken by the lower core id), matching what a
//!   single in-order consumer would have hit first.
//! - **Backpressure** — each per-core channel is bounded by
//!   `queue_depth`, the paper's sending-queue model applied per shard.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel;
use difftest_dut::{BugSpec, Dut, DutConfig};
use difftest_event::MonitoredEvent;
use difftest_ref::{Memory, RefModel};
use difftest_stats::{
    export_to_env, FlightKind, FlightRecord, FlightRecorder, FlightSnapshot, Metrics, Phase,
    PhaseTimer,
};
use difftest_workload::Workload;

use crate::batch::peek_packet_seq;
use crate::checker::{Checker, Mismatch, Verdict};
use crate::engine::{DiffConfig, RunOutcome};
use crate::fault::{FaultPlan, FaultStats, FaultyLink, LinkErrorKind, LinkStats};
use crate::pool::PoolStats;
use crate::threaded::feed_link;
use crate::transport::{AccelUnit, SwUnit, Transfer};
use crate::wire::WireItem;

/// Per-worker (per-core) statistics of a sharded run.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// DUT core this worker checked.
    pub core: u8,
    /// Wire items checked by this worker.
    pub items: u64,
    /// Instructions stepped on this worker's reference model.
    pub instructions: u64,
    /// Worker wall-clock seconds (receive loop + finalize).
    pub wall_s: f64,
    /// Items checked per wall-clock second on this worker.
    pub items_per_sec: f64,
}

/// Result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// The winning mismatch (lowest instruction count), if any.
    pub mismatch: Option<Mismatch>,
    /// DUT cycles simulated.
    pub cycles: u64,
    /// Instructions committed by the DUT.
    pub instructions: u64,
    /// Wire items checked across all workers.
    pub items: u64,
    /// Host wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Aggregate items per wall-clock second across workers.
    pub items_per_sec: f64,
    /// One report per core worker, ordered by core id.
    pub workers: Vec<WorkerReport>,
    /// Aggregate buffer-pool statistics across the per-core producers.
    pub pool: PoolStats,
    /// Aggregate link failure counters across workers.
    pub link: LinkStats,
    /// Aggregate faults injected across the per-core links (`None` on a
    /// clean link).
    pub fault: Option<FaultStats>,
    /// The run's observability registry: producer phase timing plus every
    /// worker's metrics, merged deterministically in core order. Exported
    /// as JSONL when `DIFFTEST_OBS=<path>` is set.
    pub metrics: Metrics,
    /// Flight-recorder snapshot (producer records, then the failing
    /// worker's records) attached on [`RunOutcome::Mismatch`] and
    /// [`RunOutcome::LinkError`], `None` on clean runs.
    pub flight: Option<FlightSnapshot>,
}

impl ShardedReport {
    /// Exports the run as [`difftest_stats::Counters`] (per-worker
    /// throughput and buffer-recycling rates included), for the same
    /// table-rendering toolkit the engine reports feed.
    pub fn counters(&self) -> difftest_stats::Counters {
        let mut c = difftest_stats::Counters::new();
        c.set("hw.cycles", self.cycles);
        c.set("hw.instructions", self.instructions);
        c.set("sw.items_checked", self.items);
        c.set("host.items_per_sec", self.items_per_sec as u64);
        c.set("host.cycles_per_sec", self.cycles_per_sec as u64);
        c.set("pool.hits", self.pool.hits);
        c.set("pool.misses", self.pool.misses);
        c.set("pool.returns", self.pool.returns);
        c.set("pool.discards", self.pool.discards);
        c.set("pool.hit_rate_pct", (self.pool.hit_rate() * 100.0) as u64);
        for w in &self.workers {
            c.set(format!("worker{}.items", w.core), w.items);
            c.set(format!("worker{}.instructions", w.core), w.instructions);
            c.set(
                format!("worker{}.items_per_sec", w.core),
                w.items_per_sec as u64,
            );
        }
        for kind in LinkErrorKind::ALL {
            c.set(
                format!("link.err.{}", kind.counter_name()),
                self.link.count(kind),
            );
        }
        c.set("link.stale_dropped", self.link.stale_dropped);
        c
    }
}

/// What one worker thread hands back to the coordinator.
struct WorkerOutcome {
    core: u8,
    items: u64,
    instructions: u64,
    wall_s: f64,
    verdict: Option<Verdict>,
    mismatch: Option<Mismatch>,
    link_error: Option<(LinkErrorKind, u32, u8)>,
    link: LinkStats,
    metrics: Metrics,
    flight: FlightSnapshot,
}

fn accel_for(config: DiffConfig, cores: usize) -> AccelUnit {
    match config {
        DiffConfig::BNSD => AccelUnit::squash_batch(cores, 4096, 32, false),
        _ => AccelUnit::batch(cores, 4096),
    }
}

/// Runs a co-simulation with one checker worker per DUT core.
///
/// The producer thread runs the DUT and one acceleration unit per core;
/// each worker thread decodes and checks one core's stream. Verdicts are
/// aggregated with first-mismatch semantics (see the module docs). The
/// signature mirrors [`crate::run_threaded`]; on a single-core DUT the two
/// runners produce identical verdicts, the sharded one merely adds the
/// per-core plumbing.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour.
pub fn run_sharded(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> ShardedReport {
    run_sharded_faulty(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
    )
}

/// [`run_sharded`] with an optional fault-injecting link on every
/// per-core channel. Each shard gets an independent deterministic
/// [`FaultyLink`] derived from the plan's seed (`seed + core`), so a
/// multi-core schedule stays reproducible while the shards fail
/// differently. Like the threaded runner this one has no retention
/// ring: decode failures and terminal gaps surface as
/// [`RunOutcome::LinkError`] (stale duplicates are dropped and counted).
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_sharded_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> ShardedReport {
    assert!(
        config.nonblock(),
        "sharded runner requires a non-blocking configuration"
    );
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());
    let cores = dut_cfg.cores as usize;
    let stop = Arc::new(AtomicBool::new(false));
    // Per-core packets produced before fault injection (tail-loss
    // detection, see `run_threaded_faulty`).
    let produced: Arc<Vec<AtomicU32>> = Arc::new((0..cores).map(|_| AtomicU32::new(0)).collect());

    let mut txs = Vec::with_capacity(cores);
    let mut rxs = Vec::with_capacity(cores);
    for _ in 0..cores {
        let (tx, rx) = channel::bounded::<Transfer>(queue_depth.max(1));
        txs.push(tx);
        rxs.push(rx);
    }

    let start = Instant::now();

    let producer = {
        let image = image.clone();
        let dut_cfg = dut_cfg.clone();
        let stop = Arc::clone(&stop);
        let produced = Arc::clone(&produced);
        thread::spawn(move || {
            let mut dut = Dut::new(dut_cfg, &image, bugs);
            let mut accels: Vec<AccelUnit> = (0..cores)
                .map(|k| {
                    let mut a = accel_for(config, cores);
                    a.set_route_core(k as u8);
                    a
                })
                .collect();
            // One independent deterministic link per shard: same plan,
            // per-core seed offset.
            let mut links: Vec<Option<FaultyLink>> = (0..cores)
                .map(|k| {
                    fault.map(|p| {
                        FaultyLink::new(FaultPlan {
                            seed: p.seed.wrapping_add(k as u64),
                            ..p
                        })
                    })
                })
                .collect();
            let mut events: Vec<MonitoredEvent> = Vec::new();
            let mut transfers = Vec::new();
            let mut wire = Vec::new();
            let mut timer = PhaseTimer::monotonic();
            let mut rec = FlightRecorder::default();
            let mut last_fused: Vec<u64> = vec![0; cores];
            'run: while dut.halted().is_none() && dut.cycles() < max_cycles {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let t0 = timer.start();
                events.clear();
                dut.tick_into(&mut events);
                timer.stop(Phase::Tick, t0);
                for (k, accel) in accels.iter_mut().enumerate() {
                    let t0 = timer.start();
                    accel.push_cycle_for_route_core(&events, &mut transfers);
                    timer.stop(Phase::Pack, t0);
                    if let Some(s) = accel.squash_stats() {
                        if s.fused_records > last_fused[k] && !transfers.is_empty() {
                            last_fused[k] = s.fused_records;
                            rec.record(FlightRecord {
                                kind: FlightKind::Fusion,
                                core: k as u8,
                                seq: 0,
                                cycle: dut.cycles(),
                                value: s.fused_records,
                            });
                        }
                    }
                    // Blocking sends inside: each bounded channel is one
                    // shard's sending queue with backpressure.
                    let t0 = timer.start();
                    let alive = feed_link(
                        &mut links[k],
                        &produced[k],
                        &mut transfers,
                        &mut wire,
                        &txs[k],
                        &mut rec,
                        dut.cycles(),
                    );
                    timer.stop(Phase::Transport, t0);
                    wire.clear();
                    if !alive {
                        break 'run;
                    }
                }
            }
            for (k, accel) in accels.iter_mut().enumerate() {
                let t0 = timer.start();
                accel.flush(&mut transfers);
                timer.stop(Phase::Pack, t0);
                let t0 = timer.start();
                let alive = feed_link(
                    &mut links[k],
                    &produced[k],
                    &mut transfers,
                    &mut wire,
                    &txs[k],
                    &mut rec,
                    dut.cycles(),
                );
                if let Some(l) = &mut links[k] {
                    // Release transfers still held for reordering.
                    l.flush(&mut wire);
                    if alive {
                        for t in wire.drain(..) {
                            if txs[k].send(t).is_err() {
                                break;
                            }
                        }
                    }
                }
                timer.stop(Phase::Transport, t0);
                wire.clear();
            }
            let pool =
                accels
                    .iter()
                    .map(AccelUnit::pool_stats)
                    .fold(PoolStats::default(), |a, s| PoolStats {
                        hits: a.hits + s.hits,
                        misses: a.misses + s.misses,
                        returns: a.returns + s.returns,
                        discards: a.discards + s.discards,
                    });
            let fault_stats = if fault.is_some() {
                Some(links.into_iter().flatten().map(|l| l.stats()).fold(
                    FaultStats::default(),
                    |a, s| FaultStats {
                        delivered: a.delivered + s.delivered,
                        dropped: a.dropped + s.dropped,
                        duplicated: a.duplicated + s.duplicated,
                        reordered: a.reordered + s.reordered,
                        truncated: a.truncated + s.truncated,
                        corrupted: a.corrupted + s.corrupted,
                    },
                ))
            } else {
                None
            };
            drop(txs);
            (
                dut.cycles(),
                dut.total_commits(),
                pool,
                fault_stats,
                timer.times(),
                rec.snapshot(),
            )
        })
    };

    let workers: Vec<thread::JoinHandle<WorkerOutcome>> = rxs
        .into_iter()
        .enumerate()
        .map(|(k, rx)| {
            let image = image.clone();
            let stop = Arc::clone(&stop);
            let produced = Arc::clone(&produced);
            thread::spawn(move || {
                let started = Instant::now();
                let core = k as u8;
                let mut sw = SwUnit::packed(cores);
                let mut checker = Checker::single(core, RefModel::new(image), false);
                let mut item_buf: Vec<WireItem> = Vec::new();
                let mut items = 0u64;
                let mut verdict = None;
                let mut mismatch = None;
                let mut link_stats = LinkStats::default();
                let mut link_error = None;
                let mut metrics = Metrics::new();
                let h_bytes = metrics.register_histogram("packet.bytes");
                let h_items = metrics.register_histogram("packet.items");
                let g_reorder = metrics.register_gauge("reorder.buffered.max");
                let g_pending = metrics.register_gauge("checker.pending.max");
                let mut timer = PhaseTimer::monotonic();
                let mut rec = FlightRecorder::default();
                'recv: for t in rx.iter() {
                    let seq = peek_packet_seq(&t.bytes).unwrap_or(0);
                    rec.record(FlightRecord {
                        kind: FlightKind::PacketReceived,
                        core: t.core,
                        seq,
                        cycle: 0,
                        value: t.bytes.len() as u64,
                    });
                    metrics.record(h_bytes, t.bytes.len() as u64);
                    metrics.record(h_items, u64::from(t.items));
                    metrics.counters.inc("obs.transfers");
                    metrics.counters.add("obs.bytes", t.bytes.len() as u64);
                    item_buf.clear();
                    let t0 = timer.start();
                    let decode = sw.decode_into(&t, &mut item_buf);
                    timer.stop(Phase::Unpack, t0);
                    if let Err(e) = decode {
                        let kind = LinkErrorKind::classify(&e);
                        link_stats.note(kind);
                        if kind == LinkErrorKind::Stale {
                            // A duplicate of a delivered packet: harmless.
                            link_stats.stale_dropped += 1;
                            continue;
                        }
                        let expected = sw.expected_seq().unwrap_or(0);
                        rec.record(FlightRecord {
                            kind: FlightKind::LinkError,
                            core: t.core,
                            seq: expected,
                            cycle: 0,
                            value: kind as u64,
                        });
                        link_error = Some((kind, expected, t.core));
                        stop.store(true, Ordering::Release);
                        break 'recv;
                    }
                    let t0 = timer.start();
                    for item in item_buf.drain(..) {
                        items += 1;
                        match checker.process(item) {
                            Ok(Verdict::Continue) => {}
                            Ok(v @ Verdict::Halt { good, .. }) => {
                                rec.record(FlightRecord {
                                    kind: FlightKind::Verdict,
                                    core,
                                    seq,
                                    cycle: 0,
                                    value: u64::from(good),
                                });
                                verdict = Some(v);
                                stop.store(true, Ordering::Release);
                                break;
                            }
                            Err(m) => {
                                rec.record(FlightRecord {
                                    kind: FlightKind::Mismatch,
                                    core: m.core,
                                    seq,
                                    cycle: 0,
                                    value: m.seq,
                                });
                                mismatch = Some(m);
                                stop.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                    timer.stop(Phase::Check, t0);
                    // Per-shard occupancy high-water marks; the merged
                    // report keeps the max across shards.
                    metrics.set_max(g_reorder, sw.buffered_packets() as u64);
                    metrics.set_max(g_pending, checker.pending_items() as u64);
                    if verdict.is_some() || mismatch.is_some() {
                        break 'recv;
                    }
                }
                if verdict.is_none() && mismatch.is_none() && link_error.is_none() {
                    // The channel closed, so this shard's `produced` is
                    // final: a packet still awaited was lost in flight.
                    let sent = produced[k].load(Ordering::Acquire);
                    let expected = sw.expected_seq().unwrap_or(sent);
                    if sw.buffered_packets() > 0 || expected != sent {
                        link_stats.note(LinkErrorKind::Gap);
                        rec.record(FlightRecord {
                            kind: FlightKind::LinkError,
                            core,
                            seq: expected,
                            cycle: 0,
                            value: LinkErrorKind::Gap as u64,
                        });
                        link_error = Some((LinkErrorKind::Gap, expected, core));
                    } else {
                        let t0 = timer.start();
                        let fin = checker.finalize();
                        timer.stop(Phase::Check, t0);
                        match fin {
                            Ok(v @ Verdict::Halt { .. }) => verdict = Some(v),
                            Ok(Verdict::Continue) => {}
                            Err(m) => mismatch = Some(m),
                        }
                    }
                }
                metrics.counters.add("obs.items", items);
                metrics.phases.merge(&timer.times());
                let wall_s = started.elapsed().as_secs_f64();
                WorkerOutcome {
                    core,
                    items,
                    instructions: checker.seq(core),
                    wall_s,
                    verdict,
                    mismatch,
                    link_error,
                    link: link_stats,
                    metrics,
                    flight: rec.snapshot(),
                }
            })
        })
        .collect();

    let (cycles, instructions, pool, fault_stats, producer_times, producer_flight) =
        match producer.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        };
    let mut outcomes: Vec<WorkerOutcome> = Vec::with_capacity(cores);
    for w in workers {
        match w.join() {
            Ok(o) => outcomes.push(o),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    outcomes.sort_by_key(|o| o.core);

    // First-mismatch semantics across shards: lowest instruction count
    // wins, core id breaks ties deterministically. A genuine mismatch
    // outranks a link error (the stream prefix it was found on was
    // intact); the lowest-core link error outranks clean verdicts.
    let mismatch = outcomes
        .iter()
        .filter_map(|o| o.mismatch.clone())
        .min_by_key(|m| (m.seq, m.core));
    let link_error = outcomes.iter().filter_map(|o| o.link_error).next();
    let verdict = outcomes.iter().filter_map(|o| o.verdict).next();
    let link = outcomes.iter().fold(LinkStats::default(), |mut a, o| {
        for kind in LinkErrorKind::ALL {
            a.detected[kind as usize] += o.link.count(kind);
        }
        a.stale_dropped += o.link.stale_dropped;
        a
    });

    let outcome = if mismatch.is_some() {
        RunOutcome::Mismatch
    } else if let Some((kind, seq, core)) = link_error {
        RunOutcome::LinkError { kind, seq, core }
    } else {
        match verdict {
            Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
            Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
            _ => RunOutcome::MaxCycles,
        }
    };

    let items: u64 = outcomes.iter().map(|o| o.items).sum();

    // Deterministic aggregation: producer phases first, then every
    // worker's registry in core order (outcomes are already sorted), so
    // the merged metrics are independent of worker scheduling.
    let mut metrics = Metrics::new();
    metrics.phases.merge(&producer_times);
    for o in &outcomes {
        metrics.merge(&o.metrics);
    }
    metrics.counters.set("hw.cycles", cycles);
    metrics.counters.set("hw.instructions", instructions);

    // Attach producer context plus the failing worker's view; the worker
    // whose verdict decided the outcome wins (first-mismatch semantics).
    let flight = match outcome {
        RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
            let failing_core = mismatch
                .as_ref()
                .map(|m| m.core)
                .or(link_error.map(|(_, _, core)| core));
            let mut snap = producer_flight;
            if let Some(o) = outcomes
                .iter()
                .find(|o| Some(o.core) == failing_core)
                .or_else(|| {
                    outcomes
                        .iter()
                        .find(|o| o.mismatch.is_some() || o.link_error.is_some())
                })
            {
                snap.append(&o.flight);
            }
            Some(snap)
        }
        _ => None,
    };
    if let Err(e) = export_to_env("sharded", &metrics, flight.as_ref()) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }

    let workers = outcomes
        .into_iter()
        .map(|o| WorkerReport {
            core: o.core,
            items: o.items,
            instructions: o.instructions,
            wall_s: o.wall_s,
            items_per_sec: o.items as f64 / o.wall_s.max(1e-9),
        })
        .collect();

    ShardedReport {
        outcome,
        mismatch,
        cycles,
        instructions,
        items,
        wall_s,
        cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
        items_per_sec: items as f64 / wall_s.max(1e-9),
        workers,
        pool,
        link,
        fault: fault_stats,
        metrics,
        flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_dut::BugKind;

    fn dual_core_minimal() -> DutConfig {
        let mut cfg = DutConfig::xiangshan_minimal();
        cfg.cores = 2;
        cfg
    }

    #[test]
    fn sharded_run_reaches_good_trap() {
        let w = Workload::microbench().seed(2).iterations(50).build();
        let r = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert!(r.items > 0);
        assert!(r.cycles_per_sec > 0.0);
        assert_eq!(r.workers.len(), 1);
        assert_eq!(r.workers[0].items, r.items);
    }

    #[test]
    fn sharded_run_detects_bugs() {
        let w = Workload::linux_boot().seed(2).iterations(300).build();
        let r = run_sharded(
            DutConfig::xiangshan_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    #[should_panic(expected = "non-blocking")]
    fn sharded_run_rejects_blocking_configs() {
        let w = Workload::microbench().seed(2).iterations(5).build();
        let _ = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
        );
    }

    #[test]
    fn dual_core_good_trap_with_per_worker_reports() {
        let w = Workload::microbench().seed(5).iterations(40).build();
        let r = run_sharded(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.workers[0].core, 0);
        assert_eq!(r.workers[1].core, 1);
        assert!(r.workers.iter().all(|wk| wk.items > 0));
        assert_eq!(r.items, r.workers.iter().map(|wk| wk.items).sum::<u64>());
    }

    #[test]
    fn dual_core_bug_detected() {
        let w = Workload::linux_boot().seed(3).iterations(300).build();
        let r = run_sharded(
            dual_core_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    fn pool_recycles_after_warmup() {
        // Long enough that the bounded warmup allocations (at most the
        // in-flight window) are under 5% of total acquisitions.
        let w = Workload::microbench().seed(2).iterations(1500).build();
        let r = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            5_000_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        let s = r.pool;
        assert!(
            s.hits + s.misses > 0,
            "producer must draw payloads from the pool"
        );
        assert!(
            s.hit_rate() >= 0.95,
            "steady-state recycle rate {} below 95% ({s:?})",
            s.hit_rate()
        );
    }

    #[test]
    fn counters_export_worker_stats() {
        let w = Workload::microbench().seed(2).iterations(30).build();
        let r = run_sharded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        let c = r.counters();
        assert_eq!(c.get("sw.items_checked"), r.items);
        assert_eq!(c.get("worker0.items"), r.items);
        assert_eq!(c.get("pool.hits"), r.pool.hits);
        assert_eq!(c.get("pool.misses"), r.pool.misses);
    }
}
