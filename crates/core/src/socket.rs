//! The process-separated runner: producer and consumer in different OS
//! processes exchanging the existing CRC-framed wire format over a
//! Unix-domain socket.
//!
//! The other runners share an address space, so "transport" is a queue
//! or channel of [`Transfer`]s. Here the packet bytes genuinely leave
//! the process: the producer re-executes the current binary as a
//! consumer process (the host binary must call [`child_entry`] first
//! thing in `main`), streams length-prefixed frames over the socket,
//! and reads back a serialized verdict. Both sides are the same shared
//! pipeline — [`Session`] components on the producer,
//! [`Consumer`](crate::consume::Consumer) driven by [`drive`] on the
//! consumer — so verdicts are identical to the in-process runners.
//!
//! Failure semantics: consumer-process death mid-run (EPIPE on the
//! frame stream, EOF or a short read on the result blob) surfaces as a
//! typed [`RunOutcome::LinkError`] with [`LinkErrorKind::Gap`], never a
//! panic. [`SocketTuning::kill_consumer_after`] exists to test exactly
//! that path.
//!
//! One observability deviation: packet-size histograms
//! (`packet.bytes`/`packet.items`) are recorded producer-side here
//! (pre-fault), because histograms are not part of the serialized
//! result; counters, gauges, phase times and flight records cross the
//! socket and match the in-process runners.
//
// Seam rule: runner modules build on `session`/`link`/`consume` only —
// never on another runner's internals (enforced by `make ci`'s grep).

use std::borrow::Cow;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::Shutdown;
use std::ops::{Deref, DerefMut};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use difftest_dut::{BugSpec, DutConfig};
use difftest_ref::Memory;
use difftest_stats::span::DEFAULT_SPAN_CAPACITY;
use difftest_stats::{
    export_to_env, wall_epoch_ns, FlightKind, FlightRecord, FlightRecorder, FlightSnapshot,
    Metrics, MonotonicClock, Phase, PhaseTimer, PhaseTimes, SpanBuf, SpanEvent, SpanKind, SpanSink,
    PID_CONSUMER, PID_PRODUCER,
};
use difftest_workload::Workload;

use crate::checker::{Mismatch, Verdict};
use crate::consume::{drive, ConsumerOutput, NoCharge};
use crate::fault::{FaultPlan, LinkErrorKind, LinkStats};
use crate::link::{FusionWatch, LinkSink, LinkSource};
use crate::pool::PooledBuf;
use crate::session::{DiffConfig, RunCommon, RunOutcome, Session};
use crate::transport::Transfer;

/// Environment variable marking a process as a spawned socket consumer.
const ROLE_ENV: &str = "DIFFTEST_SOCKET_ROLE";
/// Environment variable carrying the socket path to the consumer.
const PATH_ENV: &str = "DIFFTEST_SOCKET_PATH";

const HANDSHAKE_MAGIC: [u8; 4] = *b"DTH1";
const RESULT_MAGIC: [u8; 4] = *b"DTHR";
const FRAME_TRANSFER: u8 = 0;
const FRAME_END: u8 = 1;
/// Upper bound on any length-prefixed field (frames, strings); a larger
/// prefix means a desynchronized or hostile stream.
const MAX_FRAME_BYTES: usize = 1 << 24;
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);
const CHILD_WAIT_TIMEOUT: Duration = Duration::from_secs(10);
/// Exit code of a consumer killed by [`SocketTuning::kill_consumer_after`].
pub const KILLED_EXIT: i32 = 86;

/// Test/diagnostic knobs for the socket runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketTuning {
    /// When `Some(n)` with `n >= 1`, the consumer process exits abruptly
    /// (no result blob, no socket teardown) right after delivering its
    /// `n`-th transfer frame — simulating consumer death mid-run so
    /// tests can exercise the producer's typed
    /// [`RunOutcome::LinkError`] path. `None` (or `Some(0)`) disables
    /// the kill.
    pub kill_consumer_after: Option<u32>,
}

/// Result of a socket run: the shared [`RunCommon`] core plus
/// wall-clock throughput and the consumer process's exit status.
#[derive(Debug, Clone)]
pub struct SocketReport {
    /// The report core shared by every runner (verdict, volume, link
    /// health, observability).
    pub common: RunCommon,
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Consumer process exit code (`None` if it had to be killed or
    /// never ran).
    pub consumer_exit: Option<i32>,
}

impl Deref for SocketReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        &self.common
    }
}

impl DerefMut for SocketReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        &mut self.common
    }
}

/// Hands the process over to the socket consumer when the environment
/// marks it as one, and returns immediately otherwise. Every binary
/// that may host the socket runner (examples, benches, harness-free
/// tests) must call this first thing in `main`: the runner re-executes
/// the current binary to obtain its consumer process, and this is where
/// that process diverges from the host's own `main`. Never returns in a
/// consumer process.
pub fn child_entry() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("consumer") {
        return;
    }
    std::process::exit(consumer_main());
}

/// Runs a co-simulation with the producer in this process and the
/// shared receive-side pipeline in a separate consumer process, joined
/// by a Unix-domain socket carrying the CRC-framed wire format.
///
/// Only meaningful for non-blocking configurations ([`DiffConfig::BN`] /
/// [`DiffConfig::BNSD`]), like the other parallel runners.
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`); never on link or
/// process failures — those surface as [`RunOutcome::LinkError`].
pub fn run_socket(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> SocketReport {
    run_socket_faulty(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
    )
}

/// [`run_socket`] with an optional fault-injecting link (applied on the
/// producer side, before the bytes enter the socket). This runner has
/// no retention ring, so decode failures are reported, not recovered —
/// the same report-only semantics as the threaded and sharded runners.
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`).
pub fn run_socket_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> SocketReport {
    run_socket_tuned(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
        SocketTuning::default(),
    )
}

/// [`run_socket_faulty`] with explicit [`SocketTuning`] (tests use it
/// to kill the consumer process mid-run).
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`).
#[allow(clippy::too_many_arguments)]
pub fn run_socket_tuned(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
    tuning: SocketTuning,
) -> SocketReport {
    let session = Session::new(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
    );
    session.require_nonblock("socket");
    let start = Instant::now();
    // Anti-fork-bomb guard: a consumer process must never spawn another
    // generation of consumers, even if a test calls the runner from one.
    if std::env::var_os(ROLE_ENV).is_some() {
        return setup_failure_report(start, LinkErrorKind::Malformed, None);
    }
    match run_producer(&session, workload.words(), tuning, start) {
        Ok(report) => report,
        Err(fail) => setup_failure_report(start, fail.kind, fail.consumer_exit),
    }
}

/// A failure before the DUT ever ran (bind/spawn/accept/handshake):
/// there is nothing to report beyond the typed link error.
struct SetupFail {
    kind: LinkErrorKind,
    consumer_exit: Option<i32>,
}

impl SetupFail {
    fn new(kind: LinkErrorKind) -> Self {
        SetupFail {
            kind,
            consumer_exit: None,
        }
    }
}

fn setup_failure_report(
    start: Instant,
    kind: LinkErrorKind,
    consumer_exit: Option<i32>,
) -> SocketReport {
    let mut link = LinkStats::default();
    link.note(kind);
    SocketReport {
        common: RunCommon {
            outcome: RunOutcome::LinkError {
                kind,
                seq: 0,
                core: 0,
            },
            mismatch: None,
            cycles: 0,
            instructions: 0,
            items: 0,
            link,
            fault: None,
            metrics: Metrics::new(),
            flight: None,
        },
        wall_s: start.elapsed().as_secs_f64(),
        cycles_per_sec: 0.0,
        consumer_exit,
    }
}

/// Owns the spawned consumer and the socket file; `Drop` reaps both so
/// every early-return path cleans up.
struct ChildGuard {
    child: Child,
    path: PathBuf,
}

impl ChildGuard {
    /// Waits for the consumer to exit (bounded), killing it on timeout.
    fn wait_exit(&mut self) -> Option<i32> {
        let deadline = Instant::now() + CHILD_WAIT_TIMEOUT;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return status.code(),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return None;
                }
            }
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Ok(None) = self.child.try_wait() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Distinguishes concurrent runs (and runs within one process) sharing
/// a temp directory.
static PATH_SALT: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    let salt = PATH_SALT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("difftest-{}-{salt}.sock", std::process::id()))
}

fn run_producer(
    session: &Session,
    words: &[u32],
    tuning: SocketTuning,
    start: Instant,
) -> Result<SocketReport, SetupFail> {
    let path = socket_path();
    let _ = std::fs::remove_file(&path);
    let listener =
        UnixListener::bind(&path).map_err(|_| SetupFail::new(LinkErrorKind::Malformed))?;
    if listener.set_nonblocking(true).is_err() {
        let _ = std::fs::remove_file(&path);
        return Err(SetupFail::new(LinkErrorKind::Malformed));
    }
    let exe = std::env::current_exe().map_err(|_| {
        let _ = std::fs::remove_file(&path);
        SetupFail::new(LinkErrorKind::Malformed)
    })?;
    let child = Command::new(exe)
        .env(ROLE_ENV, "consumer")
        .env(PATH_ENV, &path)
        .spawn()
        .map_err(|_| {
            let _ = std::fs::remove_file(&path);
            SetupFail::new(LinkErrorKind::Gap)
        })?;
    let mut guard = ChildGuard { child, path };

    // Accept with a deadline: a consumer that never connects (crashed on
    // startup) must not hang the run.
    let accept_from = Instant::now();
    let stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if accept_from.elapsed() > ACCEPT_TIMEOUT {
                    return Err(SetupFail {
                        kind: LinkErrorKind::Gap,
                        consumer_exit: guard.wait_exit(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                return Err(SetupFail {
                    kind: LinkErrorKind::Gap,
                    consumer_exit: guard.wait_exit(),
                });
            }
        }
    };
    // The accepted stream must block: frame writes are the runner's
    // backpressure, the socket buffer its bounded queue.
    if stream.set_nonblocking(false).is_err() {
        return Err(SetupFail::new(LinkErrorKind::Malformed));
    }
    let writer = stream
        .try_clone()
        .map_err(|_| SetupFail::new(LinkErrorKind::Malformed))?;
    let mut sink = StreamSink {
        w: BufWriter::new(writer),
    };
    if write_handshake(&mut sink.w, session, tuning, words).is_err() {
        return Err(SetupFail {
            kind: LinkErrorKind::Gap,
            consumer_exit: guard.wait_exit(),
        });
    }

    // From here on the run always produces a real report: the DUT side
    // executes locally even if the consumer dies (that becomes a typed
    // link error, not a setup failure).
    let mut dut = session.dut();
    let mut accel = session.accel();
    let mut fusion = FusionWatch::default();
    let mut timer = PhaseTimer::monotonic();
    let mut rec = FlightRecorder::default();
    let mut metrics = Metrics::new();
    let h_bytes = metrics.register_histogram("packet.bytes");
    let h_items = metrics.register_histogram("packet.items");
    let mut link =
        session
            .send_link(sink)
            .with_spans(session.span_sink(PID_PRODUCER, 0, "producer", "dut"));
    let mut transfers = Vec::new();
    let mut events = Vec::new();
    let max_cycles = session.max_cycles();
    let mut alive = true;
    while alive && dut.halted().is_none() && dut.cycles() < max_cycles {
        let t0 = timer.start();
        events.clear();
        dut.tick_into(&mut events);
        timer.stop(Phase::Tick, t0);
        let t0 = timer.start();
        accel.push_cycle(&events, &mut transfers);
        timer.stop(Phase::Pack, t0);
        fusion.observe(&accel, !transfers.is_empty(), 0, dut.cycles(), &mut rec);
        for t in &transfers {
            metrics.record(h_bytes, t.bytes.len() as u64);
            metrics.record(h_items, u64::from(t.items));
        }
        let t0 = timer.start();
        alive = link.feed(&mut transfers, &mut rec, dut.cycles());
        timer.stop(Phase::Transport, t0);
    }
    let t0 = timer.start();
    accel.flush(&mut transfers);
    timer.stop(Phase::Pack, t0);
    for t in &transfers {
        metrics.record(h_bytes, t.bytes.len() as u64);
        metrics.record(h_items, u64::from(t.items));
    }
    let t0 = timer.start();
    if link.feed(&mut transfers, &mut rec, dut.cycles()) {
        // Release transfers still held for reordering.
        link.finish();
    }
    timer.stop(Phase::Transport, t0);

    let produced = link.produced();
    let fault_stats = link.fault_stats();
    let producer_spans = link.take_spans();
    // End-of-stream frame carrying the pre-fault produced count (the
    // consumer's tail-loss reference), then half-close so EOF is
    // unambiguous even if the end frame itself was lost to EPIPE.
    let w = &mut link.sink_mut().w;
    let _ = write_end_frame(w, produced).and_then(|()| w.flush());
    let _ = stream.shutdown(Shutdown::Write);

    // Read the verdict back. Whatever went wrong on the way here (EPIPE
    // mid-stream included), the consumer may still have decided the run
    // and written its result before exiting — so always try.
    let result = read_result(&mut BufReader::new(&stream));
    let consumer_exit = guard.wait_exit();

    let cycles = dut.cycles();
    let instructions = dut.total_commits();
    let wall_s = start.elapsed().as_secs_f64();
    let report = match result {
        Ok(res) => {
            let outcome = if res.mismatch.is_some() {
                RunOutcome::Mismatch
            } else if let Some((kind, seq, core)) = res.link_error {
                RunOutcome::LinkError { kind, seq, core }
            } else {
                match res.verdict {
                    Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
                    Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
                    _ => RunOutcome::MaxCycles,
                }
            };
            metrics.phases = timer.times();
            metrics.phases.merge(&res.phases);
            metrics.counters.set("hw.cycles", cycles);
            metrics.counters.set("hw.instructions", instructions);
            metrics.counters.set("obs.transfers", res.obs_transfers);
            metrics.counters.set("obs.bytes", res.obs_bytes);
            metrics.counters.set("obs.items", res.items);
            metrics.set_gauge("reorder.buffered.max", res.g_reorder);
            metrics.set_gauge("checker.pending.max", res.g_pending);
            // One merged timeline: the producer's own track plus the
            // consumer process's tracks, already shifted onto this
            // clock via the wall-epoch exchanged in the handshake.
            let bufs: Vec<SpanBuf> = std::iter::once(producer_spans)
                .chain(res.spans)
                .filter(|b| !b.is_empty())
                .collect();
            crate::session::export_trace(session.tracer(), &bufs, &mut metrics);
            let flight = match outcome {
                RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
                    // Producer-side context (sends, fusion) first, then
                    // the consumer process's view of arrivals and the
                    // verdict — same ordering as the threaded runner.
                    let mut snap = rec.snapshot();
                    snap.append(&res.flight);
                    Some(snap)
                }
                _ => None,
            };
            SocketReport {
                common: RunCommon {
                    outcome,
                    mismatch: res.mismatch,
                    cycles,
                    instructions,
                    items: res.items,
                    link: res.link,
                    fault: fault_stats,
                    metrics,
                    flight,
                },
                wall_s,
                cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
                consumer_exit,
            }
        }
        Err(_) => {
            // The consumer process died without a verdict: everything it
            // had not acknowledged is gone. Typed link error, attributed
            // to the produced count (the last sequence we know left).
            let kind = LinkErrorKind::Gap;
            let mut link_stats = LinkStats::default();
            link_stats.note(kind);
            rec.record(FlightRecord {
                kind: FlightKind::LinkError,
                core: 0,
                seq: produced,
                cycle: cycles,
                value: kind as u64,
            });
            metrics.phases = timer.times();
            metrics.counters.set("hw.cycles", cycles);
            metrics.counters.set("hw.instructions", instructions);
            // No consumer result blob means no consumer spans; the
            // producer's side of the timeline is still worth keeping.
            let bufs: Vec<SpanBuf> = std::iter::once(producer_spans)
                .filter(|b| !b.is_empty())
                .collect();
            crate::session::export_trace(session.tracer(), &bufs, &mut metrics);
            SocketReport {
                common: RunCommon {
                    outcome: RunOutcome::LinkError {
                        kind,
                        seq: produced,
                        core: 0,
                    },
                    mismatch: None,
                    cycles,
                    instructions,
                    items: 0,
                    link: link_stats,
                    fault: fault_stats,
                    metrics,
                    flight: Some(rec.snapshot()),
                },
                wall_s,
                cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
                consumer_exit,
            }
        }
    };
    if let Err(e) = export_to_env(
        "socket",
        &report.common.metrics,
        report.common.flight.as_ref(),
    ) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }
    Ok(report)
}

/// The consumer process: connect back, read the handshake, drive the
/// shared pipeline off the socket, serialize the verdict. Exit codes
/// are diagnostics only (the producer treats any missing/short result
/// blob as a link error).
fn consumer_main() -> i32 {
    let Some(path) = std::env::var_os(PATH_ENV) else {
        return 2;
    };
    let Ok(stream) = UnixStream::connect(&path) else {
        return 3;
    };
    let Ok(stop_handle) = stream.try_clone() else {
        return 3;
    };
    let mut reader = BufReader::new(stream);
    let Some(hs) = read_handshake(&mut reader) else {
        return 4;
    };
    let mut dut_cfg = DutConfig::nutshell();
    dut_cfg.cores = hs.cores;
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, &hs.words);
    // The consumer only needs what the receive side uses: core count
    // and the memory image the reference models boot from. Bugs, cycle
    // budget and fault plans live producer-side. Tracing config comes
    // from the handshake, never the inherited environment: with_tracer
    // (None) keeps this process from clobbering the producer's merged
    // trace file.
    let session =
        Session::from_image(dut_cfg, hs.config, image, Vec::new(), 0, 1, None).with_tracer(None);
    let mut consumer = session.consumer();
    let mut child_epoch = 0u64;
    if hs.trace {
        // Own clock, origin now; the matching wall epoch lets the spans
        // be shifted onto the producer's timeline before shipping.
        child_epoch = wall_epoch_ns();
        consumer = consumer.with_spans(SpanSink::on_track(
            Arc::new(MonotonicClock::default()),
            DEFAULT_SPAN_CAPACITY,
            PID_CONSUMER,
            0,
            "consumer",
            "consumer",
        ));
    }
    let mut source = StreamSource {
        r: reader,
        produced: None,
        delivered: 0,
        kill_after: hs.kill_after,
    };
    let exhausted = drive(&mut source, &mut consumer, || {
        // Early stop (mismatch/trap decided the run): half-close the
        // read side so the producer's blocked frame writes fail with
        // EPIPE instead of stuffing a dead pipe.
        let _ = stop_handle.shutdown(Shutdown::Read);
    });
    if exhausted && !consumer.stopped() {
        // EOF: the produced count from the end frame (when it arrived)
        // exposes tail loss the sequence window cannot see.
        consumer.finish_stream(source.produced, 0, &mut NoCharge);
    }
    let mut out = consumer.finish();
    if hs.trace {
        // Producer timeline = wall - producer_epoch; ours = wall -
        // child_epoch. Shifting by (child - producer) maps our spans
        // onto the producer's clock.
        out.spans
            .shift_ts(child_epoch as i64 - hs.epoch_wall_ns as i64);
    }
    let mut w = BufWriter::new(stop_handle);
    if write_result(&mut w, &out).and_then(|()| w.flush()).is_err() {
        return 5;
    }
    0
}

/// Producer-side frame writer behind the shared send path: a failed
/// write means the consumer is gone, which [`SendLink`] reports to the
/// producer loop exactly like a closed channel.
struct StreamSink {
    w: BufWriter<UnixStream>,
}

impl LinkSink for StreamSink {
    fn send(&mut self, t: Transfer) -> bool {
        write_transfer_frame(&mut self.w, &t).is_ok()
    }
}

/// Consumer-side frame reader: yields transfers until the end frame,
/// EOF, or a malformed frame (the shared pipeline then judges what the
/// truncation means).
struct StreamSource {
    r: BufReader<UnixStream>,
    /// Pre-fault produced count from the end frame, once seen.
    produced: Option<u32>,
    delivered: u32,
    kill_after: u32,
}

impl LinkSource for StreamSource {
    fn recv(&mut self) -> Option<Transfer> {
        match r_u8(&mut self.r).ok()? {
            FRAME_TRANSFER => {
                let core = r_u8(&mut self.r).ok()?;
                let items = r_u32(&mut self.r).ok()?;
                let len = r_u32(&mut self.r).ok()? as usize;
                if len > MAX_FRAME_BYTES {
                    return None;
                }
                let mut bytes = vec![0u8; len];
                self.r.read_exact(&mut bytes).ok()?;
                self.delivered += 1;
                if self.kill_after != 0 && self.delivered >= self.kill_after {
                    // Tuning knob: die abruptly mid-stream, exercising
                    // the producer's EPIPE/short-result handling.
                    std::process::exit(KILLED_EXIT);
                }
                Some(Transfer {
                    bytes: PooledBuf::detached(bytes),
                    core,
                    invokes: 1,
                    items,
                })
            }
            FRAME_END => {
                self.produced = r_u32(&mut self.r).ok();
                None
            }
            _ => None,
        }
    }
}

/// What the producer tells the consumer before any frame flows.
struct Handshake {
    config: DiffConfig,
    cores: u32,
    kill_after: u32,
    /// Span tracing requested: the consumer records its own tracks and
    /// ships them back in the result blob.
    trace: bool,
    /// The producer's wall-clock nanoseconds at its trace clock origin;
    /// the consumer shifts its spans by the epoch delta so both
    /// processes land on one merged timeline.
    epoch_wall_ns: u64,
    words: Vec<u32>,
}

fn write_handshake<W: Write>(
    w: &mut W,
    session: &Session,
    tuning: SocketTuning,
    words: &[u32],
) -> io::Result<()> {
    w.write_all(&HANDSHAKE_MAGIC)?;
    w_u8(w, session.config().to_wire())?;
    w_u32(w, session.dut_cfg().cores)?;
    w_u32(w, tuning.kill_consumer_after.unwrap_or(0))?;
    w_u8(w, u8::from(session.tracer().is_some()))?;
    w_u64(w, session.tracer().map_or(0, |t| t.epoch_wall_ns()))?;
    w_u32(w, words.len() as u32)?;
    for &word in words {
        w_u32(w, word)?;
    }
    Ok(())
}

fn read_handshake<R: Read>(r: &mut R) -> Option<Handshake> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).ok()?;
    if magic != HANDSHAKE_MAGIC {
        return None;
    }
    let config = DiffConfig::from_wire(r_u8(r).ok()?)?;
    let cores = r_u32(r).ok()?;
    if cores == 0 || cores > 1024 {
        return None;
    }
    let kill_after = r_u32(r).ok()?;
    let trace = r_u8(r).ok()? != 0;
    let epoch_wall_ns = r_u64(r).ok()?;
    let len = r_u32(r).ok()? as usize;
    if len > (Memory::RAM_SIZE / 4) as usize {
        return None;
    }
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        words.push(r_u32(r).ok()?);
    }
    Some(Handshake {
        config,
        cores,
        kill_after,
        trace,
        epoch_wall_ns,
        words,
    })
}

fn write_transfer_frame<W: Write>(w: &mut W, t: &Transfer) -> io::Result<()> {
    w_u8(w, FRAME_TRANSFER)?;
    w_u8(w, t.core)?;
    w_u32(w, t.items)?;
    w_u32(w, t.bytes.len() as u32)?;
    w.write_all(&t.bytes)
}

fn write_end_frame<W: Write>(w: &mut W, produced: u32) -> io::Result<()> {
    w_u8(w, FRAME_END)?;
    w_u32(w, produced)
}

/// The consumer's serialized verdict, as the producer reconstructs it.
struct ConsumerResult {
    verdict: Option<Verdict>,
    mismatch: Option<Mismatch>,
    link_error: Option<(LinkErrorKind, u32, u8)>,
    items: u64,
    link: LinkStats,
    phases: PhaseTimes,
    obs_transfers: u64,
    obs_bytes: u64,
    g_reorder: u64,
    g_pending: u64,
    flight: FlightSnapshot,
    /// Consumer-process span tracks (timestamps already shifted onto
    /// the producer's clock), empty when tracing was off.
    spans: Vec<SpanBuf>,
}

fn write_result<W: Write>(w: &mut W, out: &ConsumerOutput) -> io::Result<()> {
    w.write_all(&RESULT_MAGIC)?;
    match out.verdict {
        Some(Verdict::Halt { core, good, pc }) => {
            w_u8(w, 1)?;
            w_u8(w, core)?;
            w_u8(w, u8::from(good))?;
            w_u64(w, pc)?;
        }
        // `Continue` and `None` both mean "no verified halt".
        _ => w_u8(w, 0)?,
    }
    match &out.mismatch {
        Some(m) => {
            w_u8(w, 1)?;
            w_u8(w, m.core)?;
            w_u64(w, m.seq)?;
            w_str(w, &m.check)?;
            w_str(w, &m.expected)?;
            w_str(w, &m.actual)?;
        }
        None => w_u8(w, 0)?,
    }
    match out.link_error {
        Some((kind, seq, core)) => {
            w_u8(w, 1)?;
            w_u8(w, kind as u8)?;
            w_u32(w, seq)?;
            w_u8(w, core)?;
        }
        None => w_u8(w, 0)?,
    }
    w_u64(w, out.items)?;
    for d in out.link.detected {
        w_u64(w, d)?;
    }
    w_u64(w, out.link.stale_dropped)?;
    w_u64(w, out.link.recovered)?;
    w_u64(w, out.link.retransmits)?;
    w_u64(w, out.link.retransmit_bytes)?;
    for (_, nanos) in out.metrics.phases.iter() {
        w_u64(w, nanos)?;
    }
    w_u64(w, out.metrics.counters.get("obs.transfers"))?;
    w_u64(w, out.metrics.counters.get("obs.bytes"))?;
    w_u64(w, out.metrics.gauge("reorder.buffered.max"))?;
    w_u64(w, out.metrics.gauge("checker.pending.max"))?;
    w_u32(w, out.flight.records.len() as u32)?;
    for r in &out.flight.records {
        w_u8(w, flight_kind_wire(r.kind))?;
        w_u8(w, r.core)?;
        w_u32(w, r.seq)?;
        w_u64(w, r.cycle)?;
        w_u64(w, r.value)?;
    }
    w_u64(w, out.flight.evicted)?;
    if out.spans.is_empty() {
        w_u32(w, 0)
    } else {
        w_u32(w, 1)?;
        write_span_buf(w, &out.spans)
    }
}

fn write_span_buf<W: Write>(w: &mut W, b: &SpanBuf) -> io::Result<()> {
    w_u32(w, b.pid)?;
    w_u32(w, b.tid)?;
    w_str(w, &b.process)?;
    w_str(w, &b.track)?;
    w_u64(w, b.recorded)?;
    w_u64(w, b.dropped)?;
    w_u32(w, b.events.len() as u32)?;
    for e in &b.events {
        w_u8(w, span_kind_wire(e.kind))?;
        w_str(w, &e.name)?;
        w_u64(w, e.ts_ns)?;
        w_u64(w, e.dur_ns)?;
        w_u64(w, e.id)?;
    }
    Ok(())
}

fn read_span_buf<R: Read>(r: &mut R) -> io::Result<SpanBuf> {
    let pid = r_u32(r)?;
    let tid = r_u32(r)?;
    let process = r_str(r)?;
    let track = r_str(r)?;
    let recorded = r_u64(r)?;
    let dropped = r_u64(r)?;
    let n = r_u32(r)? as usize;
    if n > MAX_FRAME_BYTES {
        return Err(bad("span count"));
    }
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(SpanEvent {
            kind: span_kind_from_wire(r_u8(r)?)?,
            name: Cow::Owned(r_str(r)?),
            ts_ns: r_u64(r)?,
            dur_ns: r_u64(r)?,
            id: r_u64(r)?,
        });
    }
    Ok(SpanBuf {
        pid,
        tid,
        process,
        track,
        events,
        recorded,
        dropped,
    })
}

fn span_kind_wire(k: SpanKind) -> u8 {
    match k {
        SpanKind::Span => 0,
        SpanKind::FlowOut => 1,
        SpanKind::FlowIn => 2,
        SpanKind::Counter => 3,
    }
}

fn span_kind_from_wire(b: u8) -> io::Result<SpanKind> {
    match b {
        0 => Ok(SpanKind::Span),
        1 => Ok(SpanKind::FlowOut),
        2 => Ok(SpanKind::FlowIn),
        3 => Ok(SpanKind::Counter),
        _ => Err(bad("span kind")),
    }
}

fn read_result<R: Read>(r: &mut R) -> io::Result<ConsumerResult> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != RESULT_MAGIC {
        return Err(bad("result magic"));
    }
    let verdict = match r_u8(r)? {
        0 => None,
        _ => {
            let core = r_u8(r)?;
            let good = r_u8(r)? != 0;
            let pc = r_u64(r)?;
            Some(Verdict::Halt { core, good, pc })
        }
    };
    let mismatch = match r_u8(r)? {
        0 => None,
        _ => Some(Mismatch {
            core: r_u8(r)?,
            seq: r_u64(r)?,
            check: r_str(r)?,
            expected: r_str(r)?,
            actual: r_str(r)?,
        }),
    };
    let link_error = match r_u8(r)? {
        0 => None,
        _ => {
            let kind = link_error_kind_from_wire(r_u8(r)?)?;
            let seq = r_u32(r)?;
            let core = r_u8(r)?;
            Some((kind, seq, core))
        }
    };
    let items = r_u64(r)?;
    let mut link = LinkStats::default();
    for slot in &mut link.detected {
        *slot = r_u64(r)?;
    }
    link.stale_dropped = r_u64(r)?;
    link.recovered = r_u64(r)?;
    link.retransmits = r_u64(r)?;
    link.retransmit_bytes = r_u64(r)?;
    let mut phases = PhaseTimes::default();
    for p in Phase::ALL {
        phases.add(p, r_u64(r)?);
    }
    let obs_transfers = r_u64(r)?;
    let obs_bytes = r_u64(r)?;
    let g_reorder = r_u64(r)?;
    let g_pending = r_u64(r)?;
    let n = r_u32(r)? as usize;
    if n > MAX_FRAME_BYTES {
        return Err(bad("flight count"));
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(FlightRecord {
            kind: flight_kind_from_wire(r_u8(r)?)?,
            core: r_u8(r)?,
            seq: r_u32(r)?,
            cycle: r_u64(r)?,
            value: r_u64(r)?,
        });
    }
    let evicted = r_u64(r)?;
    let nbufs = r_u32(r)? as usize;
    if nbufs > 4096 {
        return Err(bad("span buf count"));
    }
    let mut spans = Vec::with_capacity(nbufs);
    for _ in 0..nbufs {
        spans.push(read_span_buf(r)?);
    }
    Ok(ConsumerResult {
        verdict,
        mismatch,
        link_error,
        items,
        link,
        phases,
        obs_transfers,
        obs_bytes,
        g_reorder,
        g_pending,
        flight: FlightSnapshot { records, evicted },
        spans,
    })
}

fn flight_kind_wire(k: FlightKind) -> u8 {
    match k {
        FlightKind::PacketSent => 0,
        FlightKind::PacketReceived => 1,
        FlightKind::Fusion => 2,
        FlightKind::Retransmit => 3,
        FlightKind::LinkError => 4,
        FlightKind::Mismatch => 5,
        FlightKind::Verdict => 6,
    }
}

fn flight_kind_from_wire(b: u8) -> io::Result<FlightKind> {
    match b {
        0 => Ok(FlightKind::PacketSent),
        1 => Ok(FlightKind::PacketReceived),
        2 => Ok(FlightKind::Fusion),
        3 => Ok(FlightKind::Retransmit),
        4 => Ok(FlightKind::LinkError),
        5 => Ok(FlightKind::Mismatch),
        6 => Ok(FlightKind::Verdict),
        _ => Err(bad("flight kind")),
    }
}

fn link_error_kind_from_wire(b: u8) -> io::Result<LinkErrorKind> {
    LinkErrorKind::ALL
        .get(b as usize)
        .copied()
        .ok_or_else(|| bad("link error kind"))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("socket wire: bad {what}"),
    )
}

fn w_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn r_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = r_u32(r)? as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad("string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("string utf-8"))
}

// Process-spawning tests cannot live here: the default test harness's
// `main` would never reach `child_entry`, so a spawned consumer would
// re-run the test suite instead of consuming. The end-to-end coverage
// lives in the harness-free `tests/socket_runner.rs` integration test.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::transport::SwUnit;
    use difftest_ref::RefModel;

    #[test]
    fn result_blob_round_trips() {
        let image = Memory::new();
        let consumer = crate::consume::Consumer::new(
            SwUnit::packed(1),
            Checker::new(vec![RefModel::new(image)], false),
        );
        let mut out = consumer.finish();
        out.items = 42;
        out.mismatch = Some(Mismatch {
            core: 1,
            seq: 7,
            check: "pc".into(),
            expected: "0x80000000".into(),
            actual: "0x80000004".into(),
        });
        out.link_error = Some((LinkErrorKind::Gap, 9, 1));
        out.link.note(LinkErrorKind::Gap);
        out.flight.records.push(FlightRecord {
            kind: FlightKind::Mismatch,
            core: 1,
            seq: 9,
            cycle: 1234,
            value: 7,
        });
        out.spans = SpanBuf {
            pid: PID_CONSUMER,
            tid: 0,
            process: "consumer".into(),
            track: "consumer".into(),
            events: vec![
                SpanEvent {
                    kind: SpanKind::FlowIn,
                    name: Cow::Borrowed("pkt"),
                    ts_ns: 10,
                    dur_ns: 0,
                    id: 3,
                },
                SpanEvent {
                    kind: SpanKind::Span,
                    name: Cow::Borrowed("unpack"),
                    ts_ns: 10,
                    dur_ns: 25,
                    id: 3,
                },
            ],
            recorded: 2,
            dropped: 0,
        };
        let mut blob = Vec::new();
        write_result(&mut blob, &out).unwrap();
        let res = read_result(&mut blob.as_slice()).unwrap();
        assert_eq!(res.items, 42);
        let m = res.mismatch.unwrap();
        assert_eq!((m.core, m.seq), (1, 7));
        assert_eq!(m.actual, "0x80000004");
        assert_eq!(res.link_error, Some((LinkErrorKind::Gap, 9, 1)));
        assert_eq!(res.link.count(LinkErrorKind::Gap), 1);
        assert_eq!(res.flight.records.len(), 1);
        assert_eq!(res.flight.records[0].kind, FlightKind::Mismatch);
        assert_eq!(res.flight.records[0].cycle, 1234);
        assert_eq!(res.spans, vec![out.spans]);
    }

    #[test]
    fn result_blob_omits_empty_span_section() {
        let image = Memory::new();
        let consumer = crate::consume::Consumer::new(
            SwUnit::packed(1),
            Checker::new(vec![RefModel::new(image)], false),
        );
        let out = consumer.finish();
        let mut blob = Vec::new();
        write_result(&mut blob, &out).unwrap();
        let res = read_result(&mut blob.as_slice()).unwrap();
        assert!(res.spans.is_empty());
    }

    #[test]
    fn handshake_round_trips() {
        let w = Workload::microbench().seed(3).iterations(5).build();
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        );
        let mut blob = Vec::new();
        write_handshake(
            &mut blob,
            &session,
            SocketTuning {
                kill_consumer_after: Some(5),
            },
            w.words(),
        )
        .unwrap();
        let hs = read_handshake(&mut blob.as_slice()).unwrap();
        assert_eq!(hs.config, DiffConfig::BNSD);
        assert_eq!(hs.cores, session.dut_cfg().cores);
        assert_eq!(hs.kill_after, 5);
        assert_eq!(hs.words, w.words());
        assert_eq!(hs.trace, session.tracer().is_some());
    }

    #[test]
    fn handshake_carries_trace_epoch() {
        let w = Workload::microbench().seed(3).iterations(5).build();
        let clock = Arc::new(MonotonicClock::default());
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        )
        .with_tracer(Some(difftest_stats::Tracer::with_clock(
            "/tmp/unused-trace.json",
            clock,
            123_456_789,
        )));
        let mut blob = Vec::new();
        write_handshake(&mut blob, &session, SocketTuning::default(), w.words()).unwrap();
        let hs = read_handshake(&mut blob.as_slice()).unwrap();
        assert!(hs.trace);
        assert_eq!(hs.epoch_wall_ns, 123_456_789);
    }

    #[test]
    fn flight_kinds_survive_the_wire() {
        for k in [
            FlightKind::PacketSent,
            FlightKind::PacketReceived,
            FlightKind::Fusion,
            FlightKind::Retransmit,
            FlightKind::LinkError,
            FlightKind::Mismatch,
            FlightKind::Verdict,
        ] {
            assert_eq!(flight_kind_from_wire(flight_kind_wire(k)).unwrap(), k);
        }
        assert!(flight_kind_from_wire(7).is_err());
        for k in LinkErrorKind::ALL {
            assert_eq!(link_error_kind_from_wire(k as u8).unwrap(), k);
        }
        assert!(link_error_kind_from_wire(5).is_err());
    }
}
