//! The process-separated runner: producer and consumer in different OS
//! processes exchanging the [`crate::proto`] wire format over a socket.
//!
//! The other runners share an address space, so "transport" is a queue
//! or channel of [`Transfer`]s. Here the packet bytes genuinely leave
//! the process. Two peer arrangements exist, both speaking the same
//! protocol module:
//!
//! - **spawned child** (the default): the producer re-executes the
//!   current binary as a one-shot consumer process (the host binary
//!   must call [`child_entry`] first thing in `main`), joined by a
//!   Unix-domain socket;
//! - **external daemon**: with `DIFFTEST_SERVE_ADDR=unix:<path>` or
//!   `tcp:<host:port>` set (or via [`run_socket_at`]), the producer
//!   connects to a persistent `difftest-serve` service multiplexing
//!   many concurrent sessions (see the `difftest-serve` crate).
//!
//! Either way the producer streams length-prefixed frames and reads
//! back a serialized verdict; both sides are the same shared pipeline —
//! [`Session`] components on the producer, a
//! [`ProtoSession`](crate::mux::ProtoSession) state machine on the
//! consumer — so verdicts are identical to the in-process runners.
//!
//! Failure semantics: consumer-process death mid-run (EPIPE on the
//! frame stream, EOF or a short read on the result blob) surfaces as a
//! typed [`RunOutcome::LinkError`] with [`LinkErrorKind::Gap`], never a
//! panic. [`SocketTuning::kill_consumer_after`] exists to test exactly
//! that path.
//!
//! One observability deviation: packet-size histograms
//! (`packet.bytes`/`packet.items`) are recorded producer-side here
//! (pre-fault), because histograms are not part of the serialized
//! result; counters, gauges, phase times and flight records cross the
//! socket and match the in-process runners.
//
// Seam rule: runner modules build on `session`/`link`/`consume` (and,
// uniquely for this runner, the `proto`/`mux` wire layer) — never on
// another runner's internals (enforced by `make ci`'s grep).

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::ops::{Deref, DerefMut};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use difftest_dut::{BugSpec, DutConfig};
use difftest_stats::{
    export_to_env, wall_epoch_ns, FlightKind, FlightRecord, FlightRecorder, Metrics, Phase,
    PhaseTimer, SpanBuf, PID_PRODUCER,
};
use difftest_workload::Workload;

use crate::checker::Verdict;
use crate::fault::{LinkErrorKind, LinkStats};
use crate::link::{FusionWatch, LinkSink};
use crate::mux::{MuxStep, ProtoSession};
use crate::proto::{
    read_result, write_end_frame, write_hello, write_transfer_frame, Hello, ServeAddr,
    SERVE_ADDR_ENV,
};
use crate::session::{DiffConfig, RunCommon, RunOutcome, Session};
use crate::transport::Transfer;

/// Environment variable marking a process as a spawned socket consumer.
const ROLE_ENV: &str = "DIFFTEST_SOCKET_ROLE";
/// Environment variable carrying the socket path to the consumer.
const PATH_ENV: &str = "DIFFTEST_SOCKET_PATH";

const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);
const CHILD_WAIT_TIMEOUT: Duration = Duration::from_secs(10);
/// How long the consumer waits for the handshake before concluding the
/// peer is dead. Applied only until the hello decodes — mid-run reads
/// may legitimately block while the producer computes between frames.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);
/// How long the producer waits for the result blob after its end frame.
/// The consumer is at most one socket buffer behind, so a healthy peer
/// answers in well under a second; only a hung peer trips this.
const RESULT_TIMEOUT: Duration = Duration::from_secs(60);
/// Exit code of a consumer killed by [`SocketTuning::kill_consumer_after`].
pub const KILLED_EXIT: i32 = 86;

/// Test/diagnostic knobs for the socket runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketTuning {
    /// When `Some(n)` with `n >= 1`, the consumer process exits abruptly
    /// (no result blob, no socket teardown) right after delivering its
    /// `n`-th transfer frame — simulating consumer death mid-run so
    /// tests can exercise the producer's typed
    /// [`RunOutcome::LinkError`] path. `None` (or `Some(0)`) disables
    /// the kill.
    pub kill_consumer_after: Option<u32>,
}

/// Result of a socket run: the shared [`RunCommon`] core plus
/// wall-clock throughput and the consumer process's exit status.
#[derive(Debug, Clone)]
pub struct SocketReport {
    /// The report core shared by every runner (verdict, volume, link
    /// health, observability).
    pub common: RunCommon,
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Consumer process exit code (`None` if it had to be killed, never
    /// ran, or belongs to an external daemon this run does not own).
    pub consumer_exit: Option<i32>,
}

impl Deref for SocketReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        &self.common
    }
}

impl DerefMut for SocketReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        &mut self.common
    }
}

/// Hands the process over to the socket consumer when the environment
/// marks it as one, and returns immediately otherwise. Every binary
/// that may host the socket runner (examples, benches, harness-free
/// tests) must call this first thing in `main`: the runner re-executes
/// the current binary to obtain its consumer process, and this is where
/// that process diverges from the host's own `main`. Never returns in a
/// consumer process.
pub fn child_entry() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("consumer") {
        return;
    }
    std::process::exit(consumer_main());
}

/// Runs a co-simulation with the producer in this process and the
/// shared receive-side pipeline in a separate consumer process, joined
/// by a socket carrying the CRC-framed wire format.
///
/// Only meaningful for non-blocking configurations ([`DiffConfig::BN`] /
/// [`DiffConfig::BNSD`]), like the other parallel runners.
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`); never on link or
/// process failures — those surface as [`RunOutcome::LinkError`].
pub fn run_socket(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> SocketReport {
    run_socket_faulty(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
    )
}

/// [`run_socket`] with an optional fault-injecting link (applied on the
/// producer side, before the bytes enter the socket). This runner has
/// no retention ring, so decode failures are reported, not recovered —
/// the same report-only semantics as the threaded and sharded runners.
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`).
pub fn run_socket_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> SocketReport {
    run_socket_tuned(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
        SocketTuning::default(),
    )
}

use crate::fault::FaultPlan;

/// [`run_socket_faulty`] with explicit [`SocketTuning`] (tests use it
/// to kill the consumer process mid-run).
///
/// When `DIFFTEST_SERVE_ADDR` names an external daemon, the run
/// connects there instead of spawning a consumer child (a malformed
/// address is a setup failure, not a silent fallback).
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`).
#[allow(clippy::too_many_arguments)]
pub fn run_socket_tuned(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
    tuning: SocketTuning,
) -> SocketReport {
    let session = Session::new(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
    );
    session.require_nonblock("socket");
    let start = Instant::now();
    if let Ok(env) = std::env::var(SERVE_ADDR_ENV) {
        let Some(addr) = ServeAddr::parse(&env) else {
            return setup_failure_report(start, LinkErrorKind::Malformed, None);
        };
        return match connect_remote(&addr)
            .and_then(|conn| run_producer(&session, workload.words(), tuning, start, conn, None))
        {
            Ok(report) => report,
            Err(fail) => setup_failure_report(start, fail.kind, fail.consumer_exit),
        };
    }
    // Anti-fork-bomb guard: a consumer process must never spawn another
    // generation of consumers, even if a test calls the runner from one.
    if std::env::var_os(ROLE_ENV).is_some() {
        return setup_failure_report(start, LinkErrorKind::Malformed, None);
    }
    let spawned = spawn_consumer().and_then(|(stream, guard)| {
        run_producer(
            &session,
            workload.words(),
            tuning,
            start,
            ConnStream::Unix(stream),
            Some(guard),
        )
    });
    match spawned {
        Ok(report) => report,
        Err(fail) => setup_failure_report(start, fail.kind, fail.consumer_exit),
    }
}

/// Runs a socket co-simulation against an external daemon at `addr`
/// (Unix or TCP), without spawning a consumer child. This is how many
/// producers share one `difftest-serve` fleet; `consumer_exit` is
/// always `None` — the daemon outlives the run.
///
/// # Panics
///
/// Panics when `config` is blocking (`Z`/`B`).
#[allow(clippy::too_many_arguments)]
pub fn run_socket_at(
    addr: &ServeAddr,
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
    tuning: SocketTuning,
) -> SocketReport {
    let session = Session::new(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
    );
    session.require_nonblock("socket");
    let start = Instant::now();
    match connect_remote(addr)
        .and_then(|conn| run_producer(&session, workload.words(), tuning, start, conn, None))
    {
        Ok(report) => report,
        Err(fail) => setup_failure_report(start, fail.kind, fail.consumer_exit),
    }
}

/// A failure before the DUT ever ran (bind/spawn/accept/handshake):
/// there is nothing to report beyond the typed link error.
struct SetupFail {
    kind: LinkErrorKind,
    consumer_exit: Option<i32>,
}

impl SetupFail {
    fn new(kind: LinkErrorKind) -> Self {
        SetupFail {
            kind,
            consumer_exit: None,
        }
    }
}

fn setup_failure_report(
    start: Instant,
    kind: LinkErrorKind,
    consumer_exit: Option<i32>,
) -> SocketReport {
    let mut link = LinkStats::default();
    link.note(kind);
    SocketReport {
        common: RunCommon {
            outcome: RunOutcome::LinkError {
                kind,
                seq: 0,
                core: 0,
            },
            mismatch: None,
            cycles: 0,
            instructions: 0,
            items: 0,
            link,
            fault: None,
            metrics: Metrics::new(),
            flight: None,
        },
        wall_s: start.elapsed().as_secs_f64(),
        cycles_per_sec: 0.0,
        consumer_exit,
    }
}

/// Owns the spawned consumer and the socket file; `Drop` reaps both so
/// every early-return path cleans up.
struct ChildGuard {
    child: Child,
    path: PathBuf,
}

impl ChildGuard {
    /// Waits for the consumer to exit (bounded), killing it on timeout.
    fn wait_exit(&mut self) -> Option<i32> {
        let deadline = Instant::now() + CHILD_WAIT_TIMEOUT;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return status.code(),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return None;
                }
            }
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Ok(None) = self.child.try_wait() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Distinguishes runs within one process sharing a temp directory.
static PATH_SALT: AtomicU64 = AtomicU64::new(0);

/// A socket path no concurrent run can collide with: pid (distinct
/// processes), wall-clock nanos (pid-reuse across test binaries), and a
/// process-local counter (runs within one process, including several in
/// the same nanosecond). Stale files from crashed runs are additionally
/// unlinked before bind.
fn socket_path() -> PathBuf {
    let salt = PATH_SALT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "difftest-{}-{:x}-{salt}.sock",
        std::process::id(),
        wall_epoch_ns()
    ))
}

/// Either transport the producer can speak, behind one Read/Write face.
enum ConnStream {
    /// A Unix-domain stream (spawned child, or a daemon's unix listener).
    Unix(UnixStream),
    /// A TCP stream to a daemon.
    Tcp(TcpStream),
}

impl ConnStream {
    fn try_clone(&self) -> io::Result<ConnStream> {
        match self {
            ConnStream::Unix(s) => s.try_clone().map(ConnStream::Unix),
            ConnStream::Tcp(s) => s.try_clone().map(ConnStream::Tcp),
        }
    }

    fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.shutdown(how),
            ConnStream::Tcp(s) => s.shutdown(how),
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.set_read_timeout(dur),
            ConnStream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.read(buf),
            ConnStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.write(buf),
            ConnStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.flush(),
            ConnStream::Tcp(s) => s.flush(),
        }
    }
}

/// Binds a fresh socket, re-executes the current binary as the
/// consumer, and accepts its connection (bounded: a consumer that never
/// connects must not hang the run).
fn spawn_consumer() -> Result<(UnixStream, ChildGuard), SetupFail> {
    let path = socket_path();
    let _ = std::fs::remove_file(&path);
    let listener =
        UnixListener::bind(&path).map_err(|_| SetupFail::new(LinkErrorKind::Malformed))?;
    if listener.set_nonblocking(true).is_err() {
        let _ = std::fs::remove_file(&path);
        return Err(SetupFail::new(LinkErrorKind::Malformed));
    }
    let exe = std::env::current_exe().map_err(|_| {
        let _ = std::fs::remove_file(&path);
        SetupFail::new(LinkErrorKind::Malformed)
    })?;
    let child = Command::new(exe)
        .env(ROLE_ENV, "consumer")
        .env(PATH_ENV, &path)
        .spawn()
        .map_err(|_| {
            let _ = std::fs::remove_file(&path);
            SetupFail::new(LinkErrorKind::Gap)
        })?;
    let mut guard = ChildGuard { child, path };

    let accept_from = Instant::now();
    let stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if accept_from.elapsed() > ACCEPT_TIMEOUT {
                    return Err(SetupFail {
                        kind: LinkErrorKind::Gap,
                        consumer_exit: guard.wait_exit(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                return Err(SetupFail {
                    kind: LinkErrorKind::Gap,
                    consumer_exit: guard.wait_exit(),
                });
            }
        }
    };
    // The accepted stream must block: frame writes are the runner's
    // backpressure, the socket buffer its bounded queue.
    if stream.set_nonblocking(false).is_err() {
        return Err(SetupFail::new(LinkErrorKind::Malformed));
    }
    Ok((stream, guard))
}

/// Connects to an external daemon.
fn connect_remote(addr: &ServeAddr) -> Result<ConnStream, SetupFail> {
    match addr {
        ServeAddr::Unix(path) => UnixStream::connect(path)
            .map(ConnStream::Unix)
            .map_err(|_| SetupFail::new(LinkErrorKind::Gap)),
        ServeAddr::Tcp(spec) => {
            let sa = spec
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
                .ok_or_else(|| SetupFail::new(LinkErrorKind::Malformed))?;
            let stream = TcpStream::connect_timeout(&sa, ACCEPT_TIMEOUT)
                .map_err(|_| SetupFail::new(LinkErrorKind::Gap))?;
            // Frames are latency-sensitive and already batched; never
            // let Nagle hold them back.
            let _ = stream.set_nodelay(true);
            Ok(ConnStream::Tcp(stream))
        }
    }
}

/// Producer-side frame writer behind the shared send path: a failed
/// write means the consumer is gone, which [`SendLink`](crate::link::SendLink)
/// reports to the producer loop exactly like a closed channel.
struct StreamSink<W: Write> {
    w: BufWriter<W>,
}

impl<W: Write> LinkSink for StreamSink<W> {
    fn send(&mut self, t: Transfer) -> bool {
        write_transfer_frame(&mut self.w, &t).is_ok()
    }
}

fn run_producer(
    session: &Session,
    words: &[u32],
    tuning: SocketTuning,
    start: Instant,
    stream: ConnStream,
    mut guard: Option<ChildGuard>,
) -> Result<SocketReport, SetupFail> {
    let writer = stream
        .try_clone()
        .map_err(|_| SetupFail::new(LinkErrorKind::Malformed))?;
    let mut sink = StreamSink {
        w: BufWriter::new(writer),
    };
    let hello = Hello::from_session(session, tuning.kill_consumer_after.unwrap_or(0), words);
    if write_hello(&mut sink.w, &hello).is_err() {
        return Err(SetupFail {
            kind: LinkErrorKind::Gap,
            consumer_exit: guard.as_mut().and_then(ChildGuard::wait_exit),
        });
    }

    // From here on the run always produces a real report: the DUT side
    // executes locally even if the consumer dies (that becomes a typed
    // link error, not a setup failure).
    let mut dut = session.dut();
    let mut accel = session.accel();
    let mut fusion = FusionWatch::default();
    let mut timer = PhaseTimer::monotonic();
    let mut rec = FlightRecorder::default();
    let mut metrics = Metrics::new();
    let h_bytes = metrics.register_histogram("packet.bytes");
    let h_items = metrics.register_histogram("packet.items");
    let mut link =
        session
            .send_link(sink)
            .with_spans(session.span_sink(PID_PRODUCER, 0, "producer", "dut"));
    let mut transfers = Vec::new();
    let mut events = Vec::new();
    let max_cycles = session.max_cycles();
    let mut alive = true;
    while alive && dut.halted().is_none() && dut.cycles() < max_cycles {
        let t0 = timer.start();
        events.clear();
        dut.tick_into(&mut events);
        timer.stop(Phase::Tick, t0);
        let t0 = timer.start();
        accel.push_cycle(&events, &mut transfers);
        timer.stop(Phase::Pack, t0);
        fusion.observe(&accel, !transfers.is_empty(), 0, dut.cycles(), &mut rec);
        for t in &transfers {
            metrics.record(h_bytes, t.bytes.len() as u64);
            metrics.record(h_items, u64::from(t.items));
        }
        let t0 = timer.start();
        alive = link.feed(&mut transfers, &mut rec, dut.cycles());
        timer.stop(Phase::Transport, t0);
    }
    let t0 = timer.start();
    accel.flush(&mut transfers);
    timer.stop(Phase::Pack, t0);
    for t in &transfers {
        metrics.record(h_bytes, t.bytes.len() as u64);
        metrics.record(h_items, u64::from(t.items));
    }
    let t0 = timer.start();
    if link.feed(&mut transfers, &mut rec, dut.cycles()) {
        // Release transfers still held for reordering.
        link.finish();
    }
    timer.stop(Phase::Transport, t0);

    let produced = link.produced();
    let fault_stats = link.fault_stats();
    let producer_spans = link.take_spans();
    // End-of-stream frame carrying the pre-fault produced count (the
    // consumer's tail-loss reference), then half-close so EOF is
    // unambiguous even if the end frame itself was lost to EPIPE.
    let w = &mut link.sink_mut().w;
    let _ = write_end_frame(w, produced).and_then(|()| w.flush());
    let _ = stream.shutdown(Shutdown::Write);

    // Read the verdict back. Whatever went wrong on the way here (EPIPE
    // mid-stream included), the consumer may still have decided the run
    // and written its result before exiting — so always try. Bounded:
    // a hung daemon must not hang the producer.
    let _ = stream.set_read_timeout(Some(RESULT_TIMEOUT));
    let result = read_result(&mut BufReader::new(stream));
    let consumer_exit = guard.as_mut().and_then(ChildGuard::wait_exit);

    let cycles = dut.cycles();
    let instructions = dut.total_commits();
    let wall_s = start.elapsed().as_secs_f64();
    let report = match result {
        Ok(res) => {
            let outcome = if res.mismatch.is_some() {
                RunOutcome::Mismatch
            } else if let Some((kind, seq, core)) = res.link_error {
                RunOutcome::LinkError { kind, seq, core }
            } else {
                match res.verdict {
                    Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
                    Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
                    _ => RunOutcome::MaxCycles,
                }
            };
            metrics.phases = timer.times();
            metrics.phases.merge(&res.phases);
            metrics.counters.set("hw.cycles", cycles);
            metrics.counters.set("hw.instructions", instructions);
            metrics.counters.set("obs.transfers", res.obs_transfers);
            metrics.counters.set("obs.bytes", res.obs_bytes);
            metrics.counters.set("obs.items", res.items);
            metrics.set_gauge("reorder.buffered.max", res.g_reorder);
            metrics.set_gauge("checker.pending.max", res.g_pending);
            // One merged timeline: the producer's own track plus the
            // consumer process's tracks, already shifted onto this
            // clock via the wall-epoch exchanged in the handshake.
            let bufs: Vec<SpanBuf> = std::iter::once(producer_spans)
                .chain(res.spans)
                .filter(|b| !b.is_empty())
                .collect();
            crate::session::export_trace(session.tracer(), &bufs, &mut metrics);
            let flight = match outcome {
                RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
                    // Producer-side context (sends, fusion) first, then
                    // the consumer process's view of arrivals and the
                    // verdict — same ordering as the threaded runner.
                    let mut snap = rec.snapshot();
                    snap.append(&res.flight);
                    Some(snap)
                }
                _ => None,
            };
            SocketReport {
                common: RunCommon {
                    outcome,
                    mismatch: res.mismatch,
                    cycles,
                    instructions,
                    items: res.items,
                    link: res.link,
                    fault: fault_stats,
                    metrics,
                    flight,
                },
                wall_s,
                cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
                consumer_exit,
            }
        }
        Err(_) => {
            // The consumer process died without a verdict: everything it
            // had not acknowledged is gone. Typed link error, attributed
            // to the produced count (the last sequence we know left).
            let kind = LinkErrorKind::Gap;
            let mut link_stats = LinkStats::default();
            link_stats.note(kind);
            rec.record(FlightRecord {
                kind: FlightKind::LinkError,
                core: 0,
                seq: produced,
                cycle: cycles,
                value: kind as u64,
            });
            metrics.phases = timer.times();
            metrics.counters.set("hw.cycles", cycles);
            metrics.counters.set("hw.instructions", instructions);
            // No consumer result blob means no consumer spans; the
            // producer's side of the timeline is still worth keeping.
            let bufs: Vec<SpanBuf> = std::iter::once(producer_spans)
                .filter(|b| !b.is_empty())
                .collect();
            crate::session::export_trace(session.tracer(), &bufs, &mut metrics);
            SocketReport {
                common: RunCommon {
                    outcome: RunOutcome::LinkError {
                        kind,
                        seq: produced,
                        core: 0,
                    },
                    mismatch: None,
                    cycles,
                    instructions,
                    items: 0,
                    link: link_stats,
                    fault: fault_stats,
                    metrics,
                    flight: Some(rec.snapshot()),
                },
                wall_s,
                cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
                consumer_exit,
            }
        }
    };
    if let Err(e) = export_to_env(
        "socket",
        &report.common.metrics,
        report.common.flight.as_ref(),
    ) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }
    Ok(report)
}

/// The spawned consumer process: connect back and drive one
/// [`ProtoSession`] off the socket with blocking reads, then serialize
/// the verdict. Exit codes are diagnostics only (the producer treats
/// any missing/short result blob as a link error).
fn consumer_main() -> i32 {
    let Some(path) = std::env::var_os(PATH_ENV) else {
        return 2;
    };
    let Ok(mut stream) = UnixStream::connect(&path) else {
        return 3;
    };
    let Ok(result_handle) = stream.try_clone() else {
        return 3;
    };
    // A dead or wedged peer must not hang setup forever: bounded reads
    // until the handshake decodes, unbounded after (the producer may
    // legitimately compute for a long time between frames).
    if stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).is_err() {
        return 3;
    }
    let mut sess = ProtoSession::new();
    let mut buf = [0u8; 64 * 1024];
    let mut hello_handled = false;
    let outcome = loop {
        match stream.read(&mut buf) {
            Ok(0) => break sess.eof(),
            Ok(n) => {
                let step = match sess.feed(&buf[..n]) {
                    Ok(step) => step,
                    // Pre-hello protocol violation: nothing to report.
                    Err(_) => return 4,
                };
                match step {
                    MuxStep::Running => {
                        if !hello_handled && sess.hello_seen() {
                            hello_handled = true;
                            let _ = stream.set_read_timeout(None);
                        }
                    }
                    // Tuning knob: die abruptly mid-stream, exercising
                    // the producer's EPIPE/short-result handling.
                    MuxStep::Killed => std::process::exit(KILLED_EXIT),
                    MuxStep::Decided => {
                        // Early stop (mismatch/trap decided the run):
                        // half-close the read side so the producer's
                        // blocked frame writes fail with EPIPE instead
                        // of stuffing a dead pipe.
                        let _ = result_handle.shutdown(Shutdown::Read);
                        break MuxStep::Decided;
                    }
                    other => break other,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Handshake never arrived within the deadline.
                return 4;
            }
            // Peer vanished: decide with what arrived (the result write
            // below will usually fail, which is fine — exit codes are
            // diagnostics).
            Err(_) => break sess.eof(),
        }
    };
    if outcome == MuxStep::NoSession {
        return 4;
    }
    let Some(res) = sess.take_result() else {
        return 4;
    };
    let mut w = BufWriter::new(result_handle);
    if w.write_all(&res.blob).and_then(|()| w.flush()).is_err() {
        return 5;
    }
    0
}
