//! The acceleration unit and its software receiver.
//!
//! [`AccelUnit`] is the hardware-side pipeline selected by the
//! configuration:
//!
//! - **per-event** (baseline DiffTest): every captured event is its own
//!   DPI-style transfer,
//! - **batch**: tight packing into transmission packets (paper §4.2),
//! - **squash+batch**: order-decoupled fusion and differencing first, then
//!   tight packing (paper §4.3 + §4.2).
//!
//! [`SwUnit`] is the matching software-side decoder producing
//! [`WireItem`]s for the checker.

use difftest_event::wire::{append_crc_frame, verify_crc_frame, CodecError, Reader};
use difftest_event::{EventKind, EventRef, MonitoredEvent};

use crate::batch::{BatchUnit, PackStats, Packet, Unpacker, DEFAULT_POOL_SLOTS};
use crate::pool::{BufferPool, PoolStats, PooledBuf};
use crate::squash::{SquashStats, SquashUnit};
use crate::wire::{WireItem, WireItemRef};

/// One hardware→software transfer (one communication startup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// The raw bytes crossing the link. Pooled: dropping the transfer
    /// (after decode) recycles the buffer to its producing [`AccelUnit`].
    pub bytes: PooledBuf,
    /// Routing core for sharded checking: the DUT core whose events this
    /// transfer carries. Single-consumer runners ignore it; an unsharded
    /// multi-core [`AccelUnit`] stamps its configured route core
    /// (default 0) since its packets interleave all cores.
    pub core: u8,
    /// Communication invocations this transfer costs (always 1; kept
    /// explicit for clarity in the LogGP accounting).
    pub invokes: u64,
    /// Decoded wire items (count), for statistics.
    pub items: u32,
}

#[derive(Debug)]
enum HwMode {
    PerEvent,
    Batch(BatchUnit),
    SquashBatch(SquashUnit, BatchUnit),
}

/// The hardware-side acceleration unit.
#[derive(Debug)]
pub struct AccelUnit {
    mode: HwMode,
    item_buf: Vec<WireItem>,
    packet_buf: Vec<Packet>,
    /// Buffer pool for the per-event path (packed paths draw from the
    /// [`BatchUnit`]'s pool).
    event_pool: BufferPool,
    /// Core id stamped on produced transfers (see [`Transfer::core`]).
    route_core: u8,
}

impl AccelUnit {
    /// Baseline: one transfer per verification event.
    pub fn per_event() -> Self {
        AccelUnit {
            mode: HwMode::PerEvent,
            item_buf: Vec::new(),
            packet_buf: Vec::new(),
            event_pool: BufferPool::new(DEFAULT_POOL_SLOTS),
            route_core: 0,
        }
    }

    /// Batch only: tight packing of plain events.
    pub fn batch(cores: usize, packet_bytes: usize) -> Self {
        AccelUnit {
            mode: HwMode::Batch(BatchUnit::new(cores, packet_bytes)),
            item_buf: Vec::new(),
            packet_buf: Vec::new(),
            event_pool: BufferPool::new(DEFAULT_POOL_SLOTS),
            route_core: 0,
        }
    }

    /// Squash + Batch: fusion/differencing feeding the tight packer.
    pub fn squash_batch(
        cores: usize,
        packet_bytes: usize,
        fusion_window: u32,
        order_coupled: bool,
    ) -> Self {
        Self::squash_batch_with(cores, packet_bytes, fusion_window, order_coupled, true)
    }

    /// Squash + Batch with explicit differencing control (ablations).
    pub fn squash_batch_with(
        cores: usize,
        packet_bytes: usize,
        fusion_window: u32,
        order_coupled: bool,
        differencing: bool,
    ) -> Self {
        let mut squash = SquashUnit::new(cores, fusion_window);
        squash.set_order_coupled(order_coupled);
        squash.set_differencing(differencing);
        AccelUnit {
            mode: HwMode::SquashBatch(squash, BatchUnit::new(cores, packet_bytes)),
            item_buf: Vec::new(),
            packet_buf: Vec::new(),
            event_pool: BufferPool::new(DEFAULT_POOL_SLOTS),
            route_core: 0,
        }
    }

    /// Sets the core id stamped on every transfer this unit produces
    /// (see [`Transfer::core`]). Sharded runners dedicate one unit per
    /// core and stamp that core's id for O(1) routing.
    pub fn set_route_core(&mut self, core: u8) {
        self.route_core = core;
    }

    /// The pool transfers draw their payload buffers from.
    pub fn pool(&self) -> &BufferPool {
        match &self.mode {
            HwMode::PerEvent => &self.event_pool,
            HwMode::Batch(b) | HwMode::SquashBatch(_, b) => b.pool(),
        }
    }

    /// Buffer-recycling statistics of [`pool`](Self::pool).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool().stats()
    }

    /// Squash statistics, when the unit fuses.
    pub fn squash_stats(&self) -> Option<SquashStats> {
        match &self.mode {
            HwMode::SquashBatch(s, _) => Some(*s.stats()),
            _ => None,
        }
    }

    /// Packing statistics, when the unit packs.
    pub fn pack_stats(&self) -> Option<PackStats> {
        match &self.mode {
            HwMode::Batch(b) | HwMode::SquashBatch(_, b) => Some(*b.stats()),
            HwMode::PerEvent => None,
        }
    }

    /// Processes one DUT cycle's events, appending completed transfers.
    pub fn push_cycle(&mut self, events: &[MonitoredEvent], out: &mut Vec<Transfer>) {
        self.push_iter(events.iter(), out);
    }

    /// Like [`push_cycle`](Self::push_cycle), but only processes events
    /// belonging to this unit's route core (see
    /// [`set_route_core`](Self::set_route_core)). The sharded runner runs
    /// one unit per core over the full event stream; filtering by
    /// reference here avoids copying the (large) events into per-core
    /// staging buffers.
    pub fn push_cycle_for_route_core(
        &mut self,
        events: &[MonitoredEvent],
        out: &mut Vec<Transfer>,
    ) {
        let core = self.route_core;
        self.push_iter(events.iter().filter(move |ev| ev.core == core), out);
    }

    fn push_iter<'a>(
        &mut self,
        events: impl Iterator<Item = &'a MonitoredEvent>,
        out: &mut Vec<Transfer>,
    ) {
        match &mut self.mode {
            HwMode::PerEvent => {
                for ev in events {
                    let mut bytes = self.event_pool.acquire();
                    bytes.reserve(2 + ev.encoded_len() + 4);
                    bytes.push(ev.core);
                    bytes.push(ev.event.kind() as u8);
                    ev.event.encode_into(&mut bytes);
                    append_crc_frame(&mut bytes);
                    out.push(Transfer {
                        bytes,
                        // Single-event transfers carry exactly one core's
                        // event, so the routing core is the event's own —
                        // stamping the unit-wide route core here would lie
                        // for multi-core per-event streams.
                        core: ev.core,
                        invokes: 1,
                        items: 1,
                    });
                }
            }
            HwMode::Batch(batch) => {
                // Zero-materialization fast path: each event encodes
                // straight into the packer's payload buffer — no
                // WireItem staging, no event clone.
                for ev in events {
                    batch.push_plain(ev.core, &ev.event, &mut self.packet_buf);
                }
                drain_packets(&mut self.packet_buf, self.route_core, out);
            }
            HwMode::SquashBatch(squash, batch) => {
                self.item_buf.clear();
                for ev in events {
                    squash.push(ev, &mut self.item_buf);
                }
                squash.on_cycle_end(&mut self.item_buf);
                batch.push_cycle(&self.item_buf, &mut self.packet_buf);
                drain_packets(&mut self.packet_buf, self.route_core, out);
            }
        }
    }

    /// Flushes all buffered state (fusion windows, partial packets).
    pub fn flush(&mut self, out: &mut Vec<Transfer>) {
        match &mut self.mode {
            HwMode::PerEvent => {}
            HwMode::Batch(batch) => {
                batch.flush(&mut self.packet_buf);
                drain_packets(&mut self.packet_buf, self.route_core, out);
            }
            HwMode::SquashBatch(squash, batch) => {
                self.item_buf.clear();
                squash.flush_all(&mut self.item_buf);
                batch.push_cycle(&self.item_buf, &mut self.packet_buf);
                batch.flush(&mut self.packet_buf);
                drain_packets(&mut self.packet_buf, self.route_core, out);
            }
        }
    }
}

fn drain_packets(packets: &mut Vec<Packet>, core: u8, out: &mut Vec<Transfer>) {
    for p in packets.drain(..) {
        out.push(Transfer {
            invokes: 1,
            items: p.items,
            bytes: p.bytes,
            core,
        });
    }
}

#[derive(Debug)]
enum SwMode {
    PerEvent,
    Packed(Unpacker),
}

/// The software-side receiver matching an [`AccelUnit`].
#[derive(Debug)]
pub struct SwUnit {
    mode: SwMode,
}

impl SwUnit {
    /// Receiver for the per-event baseline.
    pub fn per_event() -> Self {
        SwUnit {
            mode: SwMode::PerEvent,
        }
    }

    /// Receiver for packed transfers (Batch with or without Squash).
    pub fn packed(cores: usize) -> Self {
        SwUnit {
            mode: SwMode::Packed(Unpacker::new(cores)),
        }
    }

    /// Packets held back waiting for a sequence gap (packed mode only).
    pub fn buffered_packets(&self) -> usize {
        match &self.mode {
            SwMode::PerEvent => 0,
            SwMode::Packed(u) => u.buffered_packets(),
        }
    }

    /// Next packet sequence number the receiver expects (packed mode
    /// only; per-event transfers carry no sequence numbers). Recovery
    /// paths use this to identify which packet a detected gap is
    /// waiting on.
    pub fn expected_seq(&self) -> Option<u32> {
        match &self.mode {
            SwMode::PerEvent => None,
            SwMode::Packed(u) => Some(u.expected_seq()),
        }
    }

    /// Decodes one transfer into wire items. Out-of-order packets are
    /// buffered and released once the sequence gap fills, so a call may
    /// legitimately return an empty batch (paper §4.5 ordered parsing).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed transfers or stale sequences.
    pub fn decode(&mut self, transfer: &Transfer) -> Result<Vec<WireItem>, CodecError> {
        let mut items = Vec::new();
        self.decode_into(transfer, &mut items)?;
        Ok(items)
    }

    /// Allocation-free variant of [`decode`](Self::decode): appends the
    /// transfer's wire items to `out` (which the caller clears and reuses
    /// across transfers) and returns how many were appended. The hot
    /// loops of the threaded runners use this so the steady state per
    /// transfer performs no heap allocation on the decode side either.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed transfers or stale sequences.
    /// Transfers are validated on admission, so `out` never holds a
    /// partial batch after an error.
    pub fn decode_into(
        &mut self,
        transfer: &Transfer,
        out: &mut Vec<WireItem>,
    ) -> Result<usize, CodecError> {
        let before = out.len();
        if let Some(body) = self.admit(transfer)? {
            self.visit_admitted(body, &mut |item: WireItemRef<'_>| {
                out.push(item.into_item());
                true
            })?;
        }
        Ok(out.len() - before)
    }

    /// Admits one transfer: CRC verification, sequence bookkeeping, and
    /// structural validation — everything that can fail — without
    /// materializing a single event. Returns the validated body for
    /// [`visit_admitted`](Self::visit_admitted), or `None` when a packed
    /// transfer arrived early and was buffered.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on corrupt, malformed, or stale transfers.
    pub fn admit<'a>(&mut self, transfer: &'a Transfer) -> Result<Option<&'a [u8]>, CodecError> {
        match &mut self.mode {
            SwMode::PerEvent => {
                let body = verify_crc_frame(&transfer.bytes)?;
                let mut r = Reader::new(body);
                let _core = r.u8()?;
                let kind = EventKind::from_u8(r.u8()?)?;
                r.bytes_dyn(kind.encoded_len())?;
                r.finish()?;
                Ok(Some(body))
            }
            SwMode::Packed(unpacker) => unpacker.admit(&transfer.bytes),
        }
    }

    /// Streams the admitted body's items through `visit` as borrowed
    /// [`WireItemRef`] views reading straight from the transfer bytes.
    /// `body` must be the slice [`admit`](Self::admit) just returned.
    /// Returns the number of items visited; `visit` returns `false` to
    /// stop early.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed bodies — unreachable for
    /// bodies that passed admission.
    pub fn visit_admitted<F>(&mut self, body: &[u8], visit: &mut F) -> Result<usize, CodecError>
    where
        F: FnMut(WireItemRef<'_>) -> bool,
    {
        match &mut self.mode {
            SwMode::PerEvent => {
                let mut r = Reader::new(body);
                let core = r.u8()?;
                let kind = EventKind::from_u8(r.u8()?)?;
                let payload = r.bytes_dyn(kind.encoded_len())?;
                r.finish()?;
                visit(WireItemRef::Plain {
                    core,
                    event: EventRef::parse(kind, payload)?,
                });
                Ok(1)
            }
            SwMode::Packed(unpacker) => unpacker.visit_admitted(body, visit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{Event, InstrCommit, OrderTag, Token};

    fn mev(core: u8, seq: u64, pc: u64) -> MonitoredEvent {
        MonitoredEvent {
            core,
            cycle: seq,
            order: OrderTag(seq),
            token: Token(seq),
            event: InstrCommit {
                pc,
                ..Default::default()
            }
            .into(),
        }
    }

    #[test]
    fn per_event_round_trip() {
        let mut hw = AccelUnit::per_event();
        let mut sw = SwUnit::per_event();
        let events = vec![mev(0, 0, 0x8000_0000), mev(1, 0, 0x8000_0004)];
        let mut transfers = Vec::new();
        hw.push_cycle(&events, &mut transfers);
        assert_eq!(transfers.len(), 2);
        let items = sw.decode(&transfers[1]).unwrap();
        assert_eq!(items.len(), 1);
        match &items[0] {
            WireItem::Plain { core, event } => {
                assert_eq!(*core, 1);
                assert_eq!(event.kind(), EventKind::InstrCommit);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn per_event_transfers_carry_event_core() {
        // Regression: per-event mode used to stamp the unit-wide route
        // core on every transfer, so `Transfer::core` lied for
        // multi-core Z-config streams.
        let mut hw = AccelUnit::per_event();
        hw.set_route_core(7);
        let events = vec![
            mev(0, 0, 0x8000_0000),
            mev(2, 0, 0x8000_0004),
            mev(1, 1, 0x8000_0008),
        ];
        let mut transfers = Vec::new();
        hw.push_cycle(&events, &mut transfers);
        let cores: Vec<u8> = transfers.iter().map(|t| t.core).collect();
        assert_eq!(cores, vec![0, 2, 1]);
    }

    #[test]
    fn per_event_corruption_detected() {
        let mut hw = AccelUnit::per_event();
        let mut sw = SwUnit::per_event();
        let mut transfers = Vec::new();
        hw.push_cycle(&[mev(0, 0, 0x8000_0000)], &mut transfers);
        let mut bad = transfers[0].clone();
        bad.bytes[3] ^= 0x40;
        assert!(matches!(
            sw.decode(&bad),
            Err(CodecError::CrcMismatch { .. })
        ));
        // The pristine transfer still decodes.
        assert_eq!(sw.decode(&transfers[0]).unwrap().len(), 1);
    }

    #[test]
    fn batch_round_trip_across_cycles() {
        let mut hw = AccelUnit::batch(1, 1024);
        let mut sw = SwUnit::packed(1);
        let mut transfers = Vec::new();
        let mut sent = Vec::new();
        for cycle in 0..100u64 {
            let evs = vec![mev(0, cycle, 0x8000_0000 + 4 * cycle)];
            sent.extend(evs.iter().map(|e| e.event.clone()));
            hw.push_cycle(&evs, &mut transfers);
        }
        hw.flush(&mut transfers);
        assert!(transfers.len() < 100, "packing must reduce transfers");
        let got: Vec<Event> = transfers
            .iter()
            .flat_map(|t| sw.decode(t).unwrap())
            .map(|i| match i {
                WireItem::Plain { event, .. } => event,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(got, sent);
    }

    #[test]
    fn squash_batch_reduces_bytes() {
        let mut plain = AccelUnit::batch(1, 4096);
        let mut squashed = AccelUnit::squash_batch(1, 4096, 32, false);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for cycle in 0..500u64 {
            let evs = vec![mev(0, cycle, 0x8000_0000 + 4 * cycle)];
            plain.push_cycle(&evs, &mut a);
            squashed.push_cycle(&evs, &mut b);
        }
        plain.flush(&mut a);
        squashed.flush(&mut b);
        let bytes = |ts: &[Transfer]| ts.iter().map(|t| t.bytes.len()).sum::<usize>();
        assert!(
            bytes(&b) * 4 < bytes(&a),
            "squash {} vs plain {}",
            bytes(&b),
            bytes(&a)
        );
    }
}
