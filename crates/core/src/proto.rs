//! The DTH wire protocol as a first-class layer: typed messages, an
//! incremental (non-blocking-read-safe) frame decoder, and the `DTHR`
//! result codec.
//!
//! The socket runner buried this format in its own module; extracting
//! it lets every transport speak the same bytes — the one-shot
//! [`crate::socket`] runner (spawn a consumer child per run) and the
//! persistent `difftest-serve` daemon (many concurrent sessions over
//! one poll loop) are both thin clients of this module.
//!
//! # Wire format
//!
//! A session is one client → server byte stream and one server → client
//! result blob:
//!
//! ```text
//! client → server   "DTH1" ver config cores kill trace epoch len words   (hello)
//!                   [ 0x00 core items len bytes ]*                       (transfer frames)
//!                   0x01 produced                                        (end frame)
//! server → client   "DTHR" verdict mismatch link-error items stats …     (result blob)
//! ```
//!
//! All integers are little-endian (shared helpers in
//! [`difftest_ref::wireio`]). Every length prefix is bounds-checked
//! *before* any allocation: frames against [`MAX_FRAME_BYTES`], hello
//! image words against [`MAX_HELLO_WORDS`], so a hostile or
//! desynchronized stream yields a typed [`ProtoError`], never a panic
//! or an unbounded buffer.
//!
//! The version byte ([`PROTO_VERSION`]) right after the magic is new
//! with this layer: both ends of a difftest build always agree on it,
//! and a daemon meeting a stream from a different build rejects it as
//! [`ProtoError::BadVersion`] instead of misparsing the fields that
//! follow.

use std::borrow::Cow;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;

use difftest_ref::wireio::{self, r_u32, r_u64, r_u8, w_str, w_u32, w_u64, w_u8};
use difftest_ref::Memory;
use difftest_stats::{
    FlightKind, FlightRecord, FlightSnapshot, Phase, PhaseTimes, SpanBuf, SpanEvent, SpanKind,
};

use crate::checker::{Mismatch, Verdict};
use crate::consume::ConsumerOutput;
use crate::fault::{LinkErrorKind, LinkStats};
use crate::pool::PooledBuf;
use crate::session::{DiffConfig, Session};
use crate::transport::Transfer;

/// Magic opening every client stream.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"DTH1";
/// Magic opening every result blob.
pub const RESULT_MAGIC: [u8; 4] = *b"DTHR";
/// Protocol revision carried right after the handshake magic. Version 2
/// is version 1 (the implicit, pre-extraction format) plus this very
/// byte.
pub const PROTO_VERSION: u8 = 2;

/// Frame type: a [`Transfer`] packet.
pub const FRAME_TRANSFER: u8 = 0;
/// Frame type: end of stream, carrying the pre-fault produced count.
pub const FRAME_END: u8 = 1;

/// Upper bound on any length-prefixed field (frames, strings); a larger
/// prefix means a desynchronized or hostile stream.
pub const MAX_FRAME_BYTES: usize = 1 << 24;
/// Upper bound on the hello's memory-image word count (the whole RAM).
pub const MAX_HELLO_WORDS: usize = (Memory::RAM_SIZE / 4) as usize;
/// Upper bound on the hello's advertised core count.
pub const MAX_CORES: u32 = 1024;

/// Fixed-size prefix of the hello: magic, version, config, cores,
/// kill-after, trace flag, wall epoch, image word count.
const HELLO_HEADER: usize = 4 + 1 + 1 + 4 + 4 + 1 + 8 + 4;
/// Fixed-size prefix of a transfer frame: type, core, items, byte length.
const TRANSFER_HEADER: usize = 1 + 1 + 4 + 4;

/// Environment variable naming an external daemon for the socket runner
/// to connect to instead of spawning a consumer child
/// (`unix:<path>` or `tcp:<host:port>`, see [`ServeAddr`]).
pub const SERVE_ADDR_ENV: &str = "DIFFTEST_SERVE_ADDR";

/// What the producer tells the consumer before any frame flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The optimization configuration both sides must agree on.
    pub config: DiffConfig,
    /// DUT core count (= reference models on the consumer).
    pub cores: u32,
    /// Consumer self-kill knob (0 = disabled): exit abruptly right
    /// after delivering the n-th transfer frame, exercising the
    /// producer's typed link-error path.
    pub kill_after: u32,
    /// Span tracing requested: the consumer records its own tracks and
    /// ships them back in the result blob.
    pub trace: bool,
    /// The producer's wall-clock nanoseconds at its trace clock origin;
    /// the consumer shifts its spans by the epoch delta so both
    /// processes land on one merged timeline.
    pub epoch_wall_ns: u64,
    /// The workload memory image, loaded at `Memory::RAM_BASE`.
    pub words: Vec<u32>,
}

impl Hello {
    /// The hello describing `session` (configuration, tracing) with the
    /// given workload image and kill knob.
    pub fn from_session(session: &Session, kill_after: u32, words: &[u32]) -> Hello {
        Hello {
            config: session.config(),
            cores: session.dut_cfg().cores,
            kill_after,
            trace: session.tracer().is_some(),
            epoch_wall_ns: session.tracer().map_or(0, |t| t.epoch_wall_ns()),
            words: words.to_vec(),
        }
    }
}

/// One decoded client → server message.
#[derive(Debug)]
pub enum ClientMsg {
    /// Session setup; always the stream's first message.
    Hello(Hello),
    /// One packet of the event stream.
    Transfer(Transfer),
    /// End of stream with the producer's pre-fault produced count (the
    /// consumer's tail-loss reference).
    End {
        /// Packets the producer handed to the link before faults.
        produced: u32,
    },
}

/// Why a client stream failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream does not start with [`HANDSHAKE_MAGIC`].
    BadMagic,
    /// The version byte does not match [`PROTO_VERSION`].
    BadVersion(u8),
    /// A field holds a value outside its domain (config byte, core
    /// count, frame type).
    BadValue(&'static str),
    /// A length prefix exceeds its pinned bound — rejected before any
    /// allocation.
    Oversize {
        /// Which length field lied.
        what: &'static str,
        /// The advertised length.
        len: u64,
        /// The bound it violated.
        max: u64,
    },
    /// An unknown frame-type byte.
    BadFrame(u8),
    /// A fixed-size field ended early (internal consistency guard; the
    /// incremental decoder normally reports "need more bytes" instead).
    Truncated,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadMagic => write!(f, "handshake magic mismatch"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtoError::BadValue(what) => write!(f, "bad {what}"),
            ProtoError::Oversize { what, len, max } => {
                write!(f, "{what} length {len} exceeds bound {max}")
            }
            ProtoError::BadFrame(b) => write!(f, "unknown frame type {b}"),
            ProtoError::Truncated => write!(f, "stream truncated mid-field"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<wireio::ShortRead> for ProtoError {
    fn from(_: wireio::ShortRead) -> Self {
        ProtoError::Truncated
    }
}

/// Incremental decoder for the client side of the stream: push bytes as
/// they arrive (any fragmentation), pull whole [`ClientMsg`]s out. Safe
/// to drive from a non-blocking read loop — a partial message is simply
/// "not yet", never an error.
///
/// Buffering is bounded by the protocol's pinned sizes: a length prefix
/// is validated the moment it is readable, so the internal buffer never
/// grows past the largest legal message.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    hello_done: bool,
    ended: bool,
}

impl FrameDecoder {
    /// A decoder expecting the start of a client stream.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends newly received bytes (already-consumed bytes are
    /// compacted away first, so the buffer tracks in-flight data only).
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a message.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the hello has been decoded.
    pub fn hello_seen(&self) -> bool {
        self.hello_done
    }

    /// Whether the end frame has been decoded (no more messages follow).
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// Decodes the next complete message, `Ok(None)` when more bytes
    /// are needed. After an `Err` the stream is desynchronized; callers
    /// must not keep decoding.
    pub fn next_msg(&mut self) -> Result<Option<ClientMsg>, ProtoError> {
        if self.ended {
            return Ok(None);
        }
        let avail = &self.buf[self.pos..];
        let parsed = if self.hello_done {
            parse_frame(avail)?
        } else {
            parse_hello(avail)?.map(|(h, used)| (ClientMsg::Hello(h), used))
        };
        let Some((msg, used)) = parsed else {
            return Ok(None);
        };
        self.pos += used;
        match &msg {
            ClientMsg::Hello(_) => self.hello_done = true,
            ClientMsg::End { .. } => self.ended = true,
            ClientMsg::Transfer(_) => {}
        }
        Ok(Some(msg))
    }
}

/// Parses a hello off the front of `avail`; `None` = need more bytes.
/// Validation is as eager as the bytes allow: a wrong magic prefix or
/// version byte is rejected without waiting for the rest.
fn parse_hello(avail: &[u8]) -> Result<Option<(Hello, usize)>, ProtoError> {
    let n = avail.len().min(4);
    if avail[..n] != HANDSHAKE_MAGIC[..n] {
        return Err(ProtoError::BadMagic);
    }
    if avail.len() >= 5 && avail[4] != PROTO_VERSION {
        return Err(ProtoError::BadVersion(avail[4]));
    }
    if avail.len() < HELLO_HEADER {
        return Ok(None);
    }
    let mut r = wireio::Reader::new(&avail[5..HELLO_HEADER]);
    let config = DiffConfig::from_wire(r.u8()?).ok_or(ProtoError::BadValue("config"))?;
    let cores = r.u32()?;
    if cores == 0 || cores > MAX_CORES {
        return Err(ProtoError::BadValue("core count"));
    }
    let kill_after = r.u32()?;
    let trace = r.u8()? != 0;
    let epoch_wall_ns = r.u64()?;
    let len = r.u32()? as usize;
    if len > MAX_HELLO_WORDS {
        return Err(ProtoError::Oversize {
            what: "hello image",
            len: len as u64,
            max: MAX_HELLO_WORDS as u64,
        });
    }
    let total = HELLO_HEADER + len * 4;
    if avail.len() < total {
        return Ok(None);
    }
    let mut words = Vec::with_capacity(len);
    let mut r = wireio::Reader::new(&avail[HELLO_HEADER..total]);
    for _ in 0..len {
        words.push(r.u32()?);
    }
    Ok(Some((
        Hello {
            config,
            cores,
            kill_after,
            trace,
            epoch_wall_ns,
            words,
        },
        total,
    )))
}

/// Parses a post-hello frame off the front of `avail`; `None` = need
/// more bytes.
fn parse_frame(avail: &[u8]) -> Result<Option<(ClientMsg, usize)>, ProtoError> {
    let Some(&ty) = avail.first() else {
        return Ok(None);
    };
    match ty {
        FRAME_TRANSFER => {
            if avail.len() < TRANSFER_HEADER {
                return Ok(None);
            }
            let mut r = wireio::Reader::new(&avail[1..TRANSFER_HEADER]);
            let core = r.u8()?;
            let items = r.u32()?;
            let len = r.u32()? as usize;
            if len > MAX_FRAME_BYTES {
                return Err(ProtoError::Oversize {
                    what: "transfer frame",
                    len: len as u64,
                    max: MAX_FRAME_BYTES as u64,
                });
            }
            let total = TRANSFER_HEADER + len;
            if avail.len() < total {
                return Ok(None);
            }
            let bytes = avail[TRANSFER_HEADER..total].to_vec();
            Ok(Some((
                ClientMsg::Transfer(Transfer {
                    bytes: PooledBuf::detached(bytes),
                    core,
                    invokes: 1,
                    items,
                }),
                total,
            )))
        }
        FRAME_END => {
            if avail.len() < 5 {
                return Ok(None);
            }
            let mut r = wireio::Reader::new(&avail[1..5]);
            let produced = r.u32()?;
            Ok(Some((ClientMsg::End { produced }, 5)))
        }
        b => Err(ProtoError::BadFrame(b)),
    }
}

/// Writes the hello that opens a client stream.
pub fn write_hello<W: Write>(w: &mut W, hello: &Hello) -> io::Result<()> {
    w.write_all(&HANDSHAKE_MAGIC)?;
    w_u8(w, PROTO_VERSION)?;
    w_u8(w, hello.config.to_wire())?;
    w_u32(w, hello.cores)?;
    w_u32(w, hello.kill_after)?;
    w_u8(w, u8::from(hello.trace))?;
    w_u64(w, hello.epoch_wall_ns)?;
    w_u32(w, hello.words.len() as u32)?;
    for &word in &hello.words {
        w_u32(w, word)?;
    }
    Ok(())
}

/// Writes one transfer frame.
pub fn write_transfer_frame<W: Write>(w: &mut W, t: &Transfer) -> io::Result<()> {
    w_u8(w, FRAME_TRANSFER)?;
    w_u8(w, t.core)?;
    w_u32(w, t.items)?;
    w_u32(w, t.bytes.len() as u32)?;
    w.write_all(&t.bytes)
}

/// Writes the end-of-stream frame.
pub fn write_end_frame<W: Write>(w: &mut W, produced: u32) -> io::Result<()> {
    w_u8(w, FRAME_END)?;
    w_u32(w, produced)
}

/// The consumer's serialized verdict, as the producer reconstructs it
/// from the `DTHR` blob.
#[derive(Debug)]
pub struct ConsumerResult {
    /// The verified halt, if the stream reached one.
    pub verdict: Option<Verdict>,
    /// The first detected DUT/REF divergence, if any.
    pub mismatch: Option<Mismatch>,
    /// The first unmaskable link failure, if any.
    pub link_error: Option<(LinkErrorKind, u32, u8)>,
    /// Wire items checked.
    pub items: u64,
    /// Link failure counters accumulated by the receive side.
    pub link: LinkStats,
    /// Consumer-side phase times, merged into the producer's.
    pub phases: PhaseTimes,
    /// Transfers the consumer observed.
    pub obs_transfers: u64,
    /// Bytes the consumer observed.
    pub obs_bytes: u64,
    /// High-water mark of the reorder buffer.
    pub g_reorder: u64,
    /// High-water mark of the checker's pending queue.
    pub g_pending: u64,
    /// The consumer's flight-recorder snapshot.
    pub flight: FlightSnapshot,
    /// Consumer-process span tracks (timestamps already shifted onto
    /// the producer's clock), empty when tracing was off.
    pub spans: Vec<SpanBuf>,
}

/// Serializes a finished consumer's output as the `DTHR` result blob.
pub fn write_result<W: Write>(w: &mut W, out: &ConsumerOutput) -> io::Result<()> {
    w.write_all(&RESULT_MAGIC)?;
    match out.verdict {
        Some(Verdict::Halt { core, good, pc }) => {
            w_u8(w, 1)?;
            w_u8(w, core)?;
            w_u8(w, u8::from(good))?;
            w_u64(w, pc)?;
        }
        // `Continue` and `None` both mean "no verified halt".
        _ => w_u8(w, 0)?,
    }
    match &out.mismatch {
        Some(m) => {
            w_u8(w, 1)?;
            w_u8(w, m.core)?;
            w_u64(w, m.seq)?;
            w_str(w, &m.check)?;
            w_str(w, &m.expected)?;
            w_str(w, &m.actual)?;
        }
        None => w_u8(w, 0)?,
    }
    match out.link_error {
        Some((kind, seq, core)) => {
            w_u8(w, 1)?;
            w_u8(w, kind as u8)?;
            w_u32(w, seq)?;
            w_u8(w, core)?;
        }
        None => w_u8(w, 0)?,
    }
    w_u64(w, out.items)?;
    for d in out.link.detected {
        w_u64(w, d)?;
    }
    w_u64(w, out.link.stale_dropped)?;
    w_u64(w, out.link.recovered)?;
    w_u64(w, out.link.retransmits)?;
    w_u64(w, out.link.retransmit_bytes)?;
    for (_, nanos) in out.metrics.phases.iter() {
        w_u64(w, nanos)?;
    }
    w_u64(w, out.metrics.counters.get("obs.transfers"))?;
    w_u64(w, out.metrics.counters.get("obs.bytes"))?;
    w_u64(w, out.metrics.gauge("reorder.buffered.max"))?;
    w_u64(w, out.metrics.gauge("checker.pending.max"))?;
    w_u32(w, out.flight.records.len() as u32)?;
    for r in &out.flight.records {
        w_u8(w, flight_kind_wire(r.kind))?;
        w_u8(w, r.core)?;
        w_u32(w, r.seq)?;
        w_u64(w, r.cycle)?;
        w_u64(w, r.value)?;
    }
    w_u64(w, out.flight.evicted)?;
    if out.spans.is_empty() {
        w_u32(w, 0)
    } else {
        w_u32(w, 1)?;
        write_span_buf(w, &out.spans)
    }
}

fn write_span_buf<W: Write>(w: &mut W, b: &SpanBuf) -> io::Result<()> {
    w_u32(w, b.pid)?;
    w_u32(w, b.tid)?;
    w_str(w, &b.process)?;
    w_str(w, &b.track)?;
    w_u64(w, b.recorded)?;
    w_u64(w, b.dropped)?;
    w_u32(w, b.events.len() as u32)?;
    for e in &b.events {
        w_u8(w, span_kind_wire(e.kind))?;
        w_str(w, &e.name)?;
        w_u64(w, e.ts_ns)?;
        w_u64(w, e.dur_ns)?;
        w_u64(w, e.id)?;
    }
    Ok(())
}

fn read_span_buf<R: Read>(r: &mut R) -> io::Result<SpanBuf> {
    let pid = r_u32(r)?;
    let tid = r_u32(r)?;
    let process = r_str(r)?;
    let track = r_str(r)?;
    let recorded = r_u64(r)?;
    let dropped = r_u64(r)?;
    let n = r_u32(r)? as usize;
    if n > MAX_FRAME_BYTES {
        return Err(bad("span count"));
    }
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(SpanEvent {
            kind: span_kind_from_wire(r_u8(r)?)?,
            name: Cow::Owned(r_str(r)?),
            ts_ns: r_u64(r)?,
            dur_ns: r_u64(r)?,
            id: r_u64(r)?,
        });
    }
    Ok(SpanBuf {
        pid,
        tid,
        process,
        track,
        events,
        recorded,
        dropped,
    })
}

fn span_kind_wire(k: SpanKind) -> u8 {
    match k {
        SpanKind::Span => 0,
        SpanKind::FlowOut => 1,
        SpanKind::FlowIn => 2,
        SpanKind::Counter => 3,
    }
}

fn span_kind_from_wire(b: u8) -> io::Result<SpanKind> {
    match b {
        0 => Ok(SpanKind::Span),
        1 => Ok(SpanKind::FlowOut),
        2 => Ok(SpanKind::FlowIn),
        3 => Ok(SpanKind::Counter),
        _ => Err(bad("span kind")),
    }
}

/// Reads a `DTHR` result blob back (the producer side). Any truncation
/// or domain violation is a typed [`io::ErrorKind::InvalidData`] /
/// `UnexpectedEof` error — the caller maps either onto its link-error
/// reporting.
pub fn read_result<R: Read>(r: &mut R) -> io::Result<ConsumerResult> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != RESULT_MAGIC {
        return Err(bad("result magic"));
    }
    let verdict = match r_u8(r)? {
        0 => None,
        _ => {
            let core = r_u8(r)?;
            let good = r_u8(r)? != 0;
            let pc = r_u64(r)?;
            Some(Verdict::Halt { core, good, pc })
        }
    };
    let mismatch = match r_u8(r)? {
        0 => None,
        _ => Some(Mismatch {
            core: r_u8(r)?,
            seq: r_u64(r)?,
            check: r_str(r)?,
            expected: r_str(r)?,
            actual: r_str(r)?,
        }),
    };
    let link_error = match r_u8(r)? {
        0 => None,
        _ => {
            let kind = link_error_kind_from_wire(r_u8(r)?)?;
            let seq = r_u32(r)?;
            let core = r_u8(r)?;
            Some((kind, seq, core))
        }
    };
    let items = r_u64(r)?;
    let mut link = LinkStats::default();
    for slot in &mut link.detected {
        *slot = r_u64(r)?;
    }
    link.stale_dropped = r_u64(r)?;
    link.recovered = r_u64(r)?;
    link.retransmits = r_u64(r)?;
    link.retransmit_bytes = r_u64(r)?;
    let mut phases = PhaseTimes::default();
    for p in Phase::ALL {
        phases.add(p, r_u64(r)?);
    }
    let obs_transfers = r_u64(r)?;
    let obs_bytes = r_u64(r)?;
    let g_reorder = r_u64(r)?;
    let g_pending = r_u64(r)?;
    let n = r_u32(r)? as usize;
    if n > MAX_FRAME_BYTES {
        return Err(bad("flight count"));
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(FlightRecord {
            kind: flight_kind_from_wire(r_u8(r)?)?,
            core: r_u8(r)?,
            seq: r_u32(r)?,
            cycle: r_u64(r)?,
            value: r_u64(r)?,
        });
    }
    let evicted = r_u64(r)?;
    let nbufs = r_u32(r)? as usize;
    if nbufs > 4096 {
        return Err(bad("span buf count"));
    }
    let mut spans = Vec::with_capacity(nbufs);
    for _ in 0..nbufs {
        spans.push(read_span_buf(r)?);
    }
    Ok(ConsumerResult {
        verdict,
        mismatch,
        link_error,
        items,
        link,
        phases,
        obs_transfers,
        obs_bytes,
        g_reorder,
        g_pending,
        flight: FlightSnapshot { records, evicted },
        spans,
    })
}

fn flight_kind_wire(k: FlightKind) -> u8 {
    match k {
        FlightKind::PacketSent => 0,
        FlightKind::PacketReceived => 1,
        FlightKind::Fusion => 2,
        FlightKind::Retransmit => 3,
        FlightKind::LinkError => 4,
        FlightKind::Mismatch => 5,
        FlightKind::Verdict => 6,
    }
}

fn flight_kind_from_wire(b: u8) -> io::Result<FlightKind> {
    match b {
        0 => Ok(FlightKind::PacketSent),
        1 => Ok(FlightKind::PacketReceived),
        2 => Ok(FlightKind::Fusion),
        3 => Ok(FlightKind::Retransmit),
        4 => Ok(FlightKind::LinkError),
        5 => Ok(FlightKind::Mismatch),
        6 => Ok(FlightKind::Verdict),
        _ => Err(bad("flight kind")),
    }
}

fn link_error_kind_from_wire(b: u8) -> io::Result<LinkErrorKind> {
    LinkErrorKind::ALL
        .get(b as usize)
        .copied()
        .ok_or_else(|| bad("link error kind"))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("dth wire: bad {what}"))
}

fn r_str<R: Read>(r: &mut R) -> io::Result<String> {
    wireio::r_str(r, MAX_FRAME_BYTES)
}

/// An address the verification service listens on (and a client
/// connects to): `unix:<path>` or `tcp:<host:port>`. This is the syntax
/// of both the [`SERVE_ADDR_ENV`] environment variable and the
/// `difftest-serve` CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket at the given filesystem path.
    Unix(PathBuf),
    /// A TCP endpoint (`host:port`).
    Tcp(String),
}

impl ServeAddr {
    /// Parses `unix:<path>` / `tcp:<host:port>`; `None` on anything else.
    pub fn parse(s: &str) -> Option<ServeAddr> {
        let s = s.trim();
        if let Some(path) = s.strip_prefix("unix:") {
            return (!path.is_empty()).then(|| ServeAddr::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return (!addr.is_empty()).then(|| ServeAddr::Tcp(addr.to_string()));
        }
        None
    }
}

impl fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use crate::transport::SwUnit;
    use difftest_dut::DutConfig;
    use difftest_ref::RefModel;
    use difftest_stats::{MonotonicClock, PID_CONSUMER};
    use difftest_workload::Workload;
    use std::sync::Arc;

    #[test]
    fn result_blob_round_trips() {
        let image = Memory::new();
        let consumer = crate::consume::Consumer::new(
            SwUnit::packed(1),
            Checker::new(vec![RefModel::new(image)], false),
        );
        let mut out = consumer.finish();
        out.items = 42;
        out.mismatch = Some(Mismatch {
            core: 1,
            seq: 7,
            check: "pc".into(),
            expected: "0x80000000".into(),
            actual: "0x80000004".into(),
        });
        out.link_error = Some((LinkErrorKind::Gap, 9, 1));
        out.link.note(LinkErrorKind::Gap);
        out.flight.records.push(FlightRecord {
            kind: FlightKind::Mismatch,
            core: 1,
            seq: 9,
            cycle: 1234,
            value: 7,
        });
        out.spans = SpanBuf {
            pid: PID_CONSUMER,
            tid: 0,
            process: "consumer".into(),
            track: "consumer".into(),
            events: vec![
                SpanEvent {
                    kind: SpanKind::FlowIn,
                    name: Cow::Borrowed("pkt"),
                    ts_ns: 10,
                    dur_ns: 0,
                    id: 3,
                },
                SpanEvent {
                    kind: SpanKind::Span,
                    name: Cow::Borrowed("unpack"),
                    ts_ns: 10,
                    dur_ns: 25,
                    id: 3,
                },
            ],
            recorded: 2,
            dropped: 0,
        };
        let mut blob = Vec::new();
        write_result(&mut blob, &out).unwrap();
        let res = read_result(&mut blob.as_slice()).unwrap();
        assert_eq!(res.items, 42);
        let m = res.mismatch.unwrap();
        assert_eq!((m.core, m.seq), (1, 7));
        assert_eq!(m.actual, "0x80000004");
        assert_eq!(res.link_error, Some((LinkErrorKind::Gap, 9, 1)));
        assert_eq!(res.link.count(LinkErrorKind::Gap), 1);
        assert_eq!(res.flight.records.len(), 1);
        assert_eq!(res.flight.records[0].kind, FlightKind::Mismatch);
        assert_eq!(res.flight.records[0].cycle, 1234);
        assert_eq!(res.spans, vec![out.spans]);
    }

    #[test]
    fn result_blob_omits_empty_span_section() {
        let image = Memory::new();
        let consumer = crate::consume::Consumer::new(
            SwUnit::packed(1),
            Checker::new(vec![RefModel::new(image)], false),
        );
        let out = consumer.finish();
        let mut blob = Vec::new();
        write_result(&mut blob, &out).unwrap();
        let res = read_result(&mut blob.as_slice()).unwrap();
        assert!(res.spans.is_empty());
    }

    #[test]
    fn hello_round_trips_through_the_decoder() {
        let w = Workload::microbench().seed(3).iterations(5).build();
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        );
        let hello = Hello::from_session(&session, 5, w.words());
        let mut blob = Vec::new();
        write_hello(&mut blob, &hello).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&blob);
        let Some(ClientMsg::Hello(hs)) = dec.next_msg().unwrap() else {
            panic!("expected a decoded hello");
        };
        assert_eq!(hs, hello);
        assert_eq!(hs.kill_after, 5);
        assert!(dec.hello_seen());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn hello_carries_trace_epoch() {
        let w = Workload::microbench().seed(3).iterations(5).build();
        let clock = Arc::new(MonotonicClock::default());
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        )
        .with_tracer(Some(difftest_stats::Tracer::with_clock(
            "/tmp/unused-trace.json",
            clock,
            123_456_789,
        )));
        let hello = Hello::from_session(&session, 0, w.words());
        let mut blob = Vec::new();
        write_hello(&mut blob, &hello).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&blob);
        let Some(ClientMsg::Hello(hs)) = dec.next_msg().unwrap() else {
            panic!("expected a decoded hello");
        };
        assert!(hs.trace);
        assert_eq!(hs.epoch_wall_ns, 123_456_789);
    }

    #[test]
    fn decoder_handles_arbitrary_fragmentation() {
        let w = Workload::microbench().seed(9).iterations(5).build();
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        );
        let mut stream = Vec::new();
        write_hello(&mut stream, &Hello::from_session(&session, 0, w.words())).unwrap();
        let t = Transfer {
            bytes: PooledBuf::detached(vec![1, 2, 3, 4, 5]),
            core: 0,
            invokes: 1,
            items: 2,
        };
        write_transfer_frame(&mut stream, &t).unwrap();
        write_end_frame(&mut stream, 1).unwrap();

        // Byte-at-a-time delivery must decode the identical messages.
        let mut dec = FrameDecoder::new();
        let mut msgs = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(m) = dec.next_msg().unwrap() {
                msgs.push(m);
            }
        }
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0], ClientMsg::Hello(_)));
        let ClientMsg::Transfer(ref got) = msgs[1] else {
            panic!("expected a transfer");
        };
        assert_eq!(
            (&got.bytes[..], got.core, got.items),
            (&[1, 2, 3, 4, 5][..], 0, 2)
        );
        assert!(matches!(msgs[2], ClientMsg::End { produced: 1 }));
        assert!(dec.ended());
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let mut blob = Vec::new();
        blob.extend_from_slice(&HANDSHAKE_MAGIC);
        blob.push(PROTO_VERSION + 1);
        let mut dec = FrameDecoder::new();
        dec.push(&blob);
        assert_eq!(
            dec.next_msg().unwrap_err(),
            ProtoError::BadVersion(PROTO_VERSION + 1)
        );
    }

    #[test]
    fn wrong_magic_is_rejected_on_the_first_byte() {
        let mut dec = FrameDecoder::new();
        dec.push(b"GET ");
        assert_eq!(dec.next_msg().unwrap_err(), ProtoError::BadMagic);
    }

    #[test]
    fn flight_kinds_survive_the_wire() {
        for k in [
            FlightKind::PacketSent,
            FlightKind::PacketReceived,
            FlightKind::Fusion,
            FlightKind::Retransmit,
            FlightKind::LinkError,
            FlightKind::Mismatch,
            FlightKind::Verdict,
        ] {
            assert_eq!(flight_kind_from_wire(flight_kind_wire(k)).unwrap(), k);
        }
        assert!(flight_kind_from_wire(7).is_err());
        for k in LinkErrorKind::ALL {
            assert_eq!(link_error_kind_from_wire(k as u8).unwrap(), k);
        }
        assert!(link_error_kind_from_wire(5).is_err());
    }

    #[test]
    fn serve_addr_parses_and_displays() {
        assert_eq!(
            ServeAddr::parse("unix:/tmp/x.sock"),
            Some(ServeAddr::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert_eq!(
            ServeAddr::parse("tcp:127.0.0.1:4100"),
            Some(ServeAddr::Tcp("127.0.0.1:4100".into()))
        );
        assert_eq!(ServeAddr::parse("udp:nope"), None);
        assert_eq!(ServeAddr::parse("unix:"), None);
        assert_eq!(
            ServeAddr::parse("tcp:h:1").map(|a| a.to_string()),
            Some("tcp:h:1".into())
        );
    }
}
