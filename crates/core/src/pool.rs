//! Lock-free buffer recycling for the hot transfer path.
//!
//! The threaded runners move packet payloads from a producer (DUT +
//! [`AccelUnit`](crate::AccelUnit)) to consumer checkers as owned byte
//! buffers. Allocating a fresh `Vec<u8>` per packet puts the allocator on
//! the critical path of every `tick → pack → send → decode` iteration.
//! [`BufferPool`] removes it: packet buffers are acquired from a shared
//! free list and returned automatically when the last owner drops the
//! [`PooledBuf`] — on whichever thread that happens — so the steady state
//! performs zero heap allocations for payload bytes.
//!
//! The free list is a fixed array of atomic slots rather than a linked
//! stack: `acquire` `swap`s a buffer pointer out and `release` stores one
//! into an empty slot. Every transfer of ownership is a single atomic
//! pointer exchange, so the pool is lock-free and immune to the ABA and
//! reclamation hazards of pointer-chasing designs. A full pool simply
//! drops returned buffers (the cap bounds retained memory), and an empty
//! pool falls back to the allocator — both recorded in [`PoolStats`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct PoolShared {
    /// Each slot is either null or a `Box<Vec<u8>>` leaked into the slot.
    slots: Box<[AtomicPtr<Vec<u8>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
}

impl PoolShared {
    fn take(&self) -> Option<Vec<u8>> {
        for slot in self.slots.iter() {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // We exclusively own `p` now: the swap removed it from the
                // pool before any other thread could observe it.
                return Some(*unsafe { Box::from_raw(p) });
            }
        }
        None
    }

    fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let p = Box::into_raw(Box::new(buf));
        for slot in self.slots.iter() {
            if slot
                .compare_exchange(ptr::null_mut(), p, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.returns.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Pool is at capacity: let the allocator have this one back.
        drop(unsafe { Box::from_raw(p) });
        self.discards.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// Counter snapshot of a [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served by a recycled buffer.
    pub hits: u64,
    /// Acquisitions that had to allocate.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Buffers dropped because the pool was at capacity.
    pub discards: u64,
}

impl PoolStats {
    /// Fraction of acquisitions served without allocating.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared, lock-free pool of recyclable byte buffers.
///
/// Cloning the pool clones a handle; all clones share the same free list
/// and counters.
#[derive(Debug, Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// Creates a pool retaining at most `slots` idle buffers.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a zero-slot pool can never recycle");
        BufferPool {
            shared: Arc::new(PoolShared {
                slots: (0..slots)
                    .map(|_| AtomicPtr::new(ptr::null_mut()))
                    .collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                discards: AtomicU64::new(0),
            }),
        }
    }

    /// Takes an empty buffer, recycling a returned one when available.
    /// The buffer's capacity from its previous life is retained, which is
    /// what makes the steady state allocation-free.
    pub fn acquire(&self) -> PooledBuf {
        let bytes = match self.shared.take() {
            Some(b) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        PooledBuf {
            bytes,
            pool: Some(self.shared.clone()),
        }
    }

    /// Idle buffers currently retained (racy; for tests and reporting).
    pub fn available(&self) -> usize {
        self.shared
            .slots
            .iter()
            .filter(|s| !s.load(Ordering::Acquire).is_null())
            .count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            returns: self.shared.returns.load(Ordering::Relaxed),
            discards: self.shared.discards.load(Ordering::Relaxed),
        }
    }

    /// Fraction of [`acquire`](Self::acquire) calls served by recycling.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }
}

/// An owned byte buffer that returns itself to its [`BufferPool`] on drop.
///
/// Dereferences to `Vec<u8>`, so existing code that indexes, truncates or
/// measures payload bytes keeps working unchanged. Buffers can also exist
/// detached from any pool (see [`PooledBuf::detached`]) — they then drop
/// like a plain `Vec<u8>`.
pub struct PooledBuf {
    bytes: Vec<u8>,
    pool: Option<Arc<PoolShared>>,
}

impl PooledBuf {
    /// Wraps a plain vector with no backing pool.
    pub fn detached(bytes: Vec<u8>) -> Self {
        PooledBuf { bytes, pool: None }
    }

    /// Detaches the bytes from the pool, consuming the handle. The pool
    /// does not get this buffer back.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.bytes)
    }

    /// Whether dropping this buffer returns it to a pool.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.bytes));
        }
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.bytes
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }
}

impl Clone for PooledBuf {
    /// Clones contents and pool association: the clone returns to the
    /// same pool when dropped.
    fn clone(&self) -> Self {
        PooledBuf {
            bytes: self.bytes.clone(),
            pool: self.pool.clone(),
        }
    }
}

impl Default for PooledBuf {
    fn default() -> Self {
        PooledBuf::detached(Vec::new())
    }
}

impl fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.bytes.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for PooledBuf {}

impl PartialEq<Vec<u8>> for PooledBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.bytes == other
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(bytes: Vec<u8>) -> Self {
        PooledBuf::detached(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_returned_capacity() {
        let pool = BufferPool::new(4);
        let mut b = pool.acquire();
        b.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let cap = b.capacity();
        assert!(cap >= 8);
        drop(b);
        assert_eq!(pool.available(), 1);

        let b2 = pool.acquire();
        assert!(b2.is_empty(), "recycled buffers come back cleared");
        assert!(b2.capacity() >= cap, "capacity survives the round trip");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
    }

    #[test]
    fn grows_past_capacity_and_discards_excess() {
        let pool = BufferPool::new(2);
        let bufs: Vec<PooledBuf> = (0..5).map(|_| pool.acquire()).collect();
        assert_eq!(pool.stats().misses, 5, "cold pool allocates");
        drop(bufs);
        let s = pool.stats();
        assert_eq!(s.returns, 2, "pool retains only its capacity");
        assert_eq!(s.discards, 3, "excess buffers go to the allocator");
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let pool = BufferPool::new(2);
        let d = PooledBuf::detached(vec![1, 2, 3]);
        assert!(!d.is_pooled());
        drop(d);
        assert_eq!(pool.available(), 0);

        let p = pool.acquire();
        let v = p.into_vec();
        assert!(v.is_empty());
        assert_eq!(pool.stats().returns, 0, "into_vec detaches");
    }

    #[test]
    fn clone_returns_to_the_same_pool() {
        let pool = BufferPool::new(4);
        let a = pool.acquire();
        let b = a.clone();
        assert!(b.is_pooled());
        drop(a);
        drop(b);
        assert_eq!(pool.stats().returns, 2);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn cross_thread_round_trip() {
        let pool = BufferPool::new(8);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let mut b = pool.acquire();
                        b.extend_from_slice(&i.to_le_bytes());
                        // Dropped here, possibly interleaved with other
                        // threads' acquires.
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4000);
        assert!(
            s.hit_rate() > 0.9,
            "steady state must recycle (hit rate {})",
            s.hit_rate()
        );
    }
}
