//! The receive-side state machine every runner drives: CRC verify →
//! unpack → check → bounded ARQ recovery.
//!
//! Before this module, each runner carried a private copy of the same
//! loop. [`Consumer`] is the single implementation: feed it transfers
//! with [`ingest`](Consumer::ingest), close the stream with
//! [`finish_stream`](Consumer::finish_stream), and read the verdict.
//! Transport differences stay outside — a runner only decides *where*
//! this state machine executes (in-line, on a thread, in another
//! process) and what [`ChargeObserver`] accounts each transfer (the
//! engine's LogGP virtual-time model; nothing for wall-clock runners).
//!
//! Recovery is opt-in: with a retention ring
//! ([`with_retention`](Consumer::with_retention)), decode failures and
//! terminal gaps first attempt redelivery of the pristine packet,
//! bounded by [`RECOVERY_BUDGET`] and [`MAX_REDELIVERY_DEPTH`]; without
//! one (threaded/sharded/socket), they surface directly as typed
//! [`RunOutcome::LinkError`](crate::RunOutcome::LinkError) material.

use difftest_event::wire::CodecError;
use difftest_stats::{
    FlightKind, FlightRecord, FlightRecorder, FlightSnapshot, GaugeId, HistogramId, Metrics, Phase,
    PhaseTimer, SpanBuf, SpanSink,
};

use crate::batch::peek_packet_seq;
use crate::checker::{CheckStats, Checker, Mismatch, Verdict};
use crate::fault::{LinkErrorKind, LinkStats};
use crate::link::LinkSource;
use crate::pool::PooledBuf;
use crate::replay::ReplayBuffer;
use crate::transport::{SwUnit, Transfer};

/// Retransmissions a run may issue before a link failure is reported
/// unrecoverable (bounds the cost a hostile schedule can impose).
pub const RECOVERY_BUDGET: u32 = 64;

/// Nested redeliveries a single decode failure may trigger (a
/// retransmitted packet failing again counts one level deeper).
pub const MAX_REDELIVERY_DEPTH: u32 = 4;

/// What one [`Consumer::ingest`] call decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep feeding transfers.
    Continue,
    /// The stream is decided — a halting trap was verified, a mismatch
    /// was detected, or the link failed unrecoverably. Stop feeding and
    /// read the verdict accessors.
    Stop,
}

/// Per-transfer accounting hook. The engine implements this to charge
/// LogGP virtual time (startup + transmission + software cost derived
/// from the checker-stats delta); wall-clock runners use [`NoCharge`].
pub trait ChargeObserver {
    /// Called once per transfer that crossed the link — after its items
    /// were checked, or after its decode failed (the damaged bytes
    /// crossed regardless). `before`/`after` bracket the checker stats.
    fn transfer_done(&mut self, t: &Transfer, before: &CheckStats, after: &CheckStats);
}

/// The no-op observer for runners that measure wall-clock time.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCharge;

impl ChargeObserver for NoCharge {
    fn transfer_done(&mut self, _t: &Transfer, _before: &CheckStats, _after: &CheckStats) {}
}

/// What a finished [`Consumer`] hands back to its runner.
#[derive(Debug)]
pub struct ConsumerOutput {
    /// Wire items checked.
    pub items: u64,
    /// Halting-trap verdict, if one was verified.
    pub verdict: Option<Verdict>,
    /// First detected mismatch, if any.
    pub mismatch: Option<Mismatch>,
    /// Unrecovered link failure, if any: `(kind, expected seq, core)`.
    pub link_error: Option<(LinkErrorKind, u32, u8)>,
    /// Link failure / recovery counters.
    pub link: LinkStats,
    /// The consumer's metrics (histograms, gauges, `obs.*` counters and
    /// its phase attribution).
    pub metrics: Metrics,
    /// Flight records, oldest first.
    pub flight: FlightSnapshot,
    /// Consume-side span buffer (empty when tracing is off).
    pub spans: SpanBuf,
}

/// The shared receive-side pipeline: decoder, checker, observability
/// and (optionally) the ARQ retention ring.
#[derive(Debug)]
pub struct Consumer {
    sw: SwUnit,
    checker: Checker,
    metrics: Metrics,
    h_bytes: HistogramId,
    h_items: HistogramId,
    g_reorder: GaugeId,
    g_pending: GaugeId,
    timer: PhaseTimer,
    flight: FlightRecorder,
    items: u64,
    obs_transfers: u64,
    obs_bytes: u64,
    verdict: Option<Verdict>,
    mismatch: Option<Mismatch>,
    link_error: Option<(LinkErrorKind, u32, u8)>,
    link: LinkStats,
    retention: Option<ReplayBuffer>,
    recovery_budget: u32,
    home_core: u8,
    spans: SpanSink,
}

impl Consumer {
    /// Builds the pipeline over a decoder and checker. Metrics
    /// (histograms `packet.bytes`/`packet.items`, gauges
    /// `reorder.buffered.max`/`checker.pending.max`), the phase timer
    /// and the flight ring are wired here — the setup every runner
    /// previously duplicated.
    pub fn new(sw: SwUnit, checker: Checker) -> Self {
        let mut metrics = Metrics::new();
        let h_bytes = metrics.register_histogram("packet.bytes");
        let h_items = metrics.register_histogram("packet.items");
        let g_reorder = metrics.register_gauge("reorder.buffered.max");
        let g_pending = metrics.register_gauge("checker.pending.max");
        Consumer {
            sw,
            checker,
            metrics,
            h_bytes,
            h_items,
            g_reorder,
            g_pending,
            timer: PhaseTimer::monotonic(),
            flight: FlightRecorder::default(),
            items: 0,
            obs_transfers: 0,
            obs_bytes: 0,
            verdict: None,
            mismatch: None,
            link_error: None,
            link: LinkStats::default(),
            retention: None,
            recovery_budget: RECOVERY_BUDGET,
            home_core: 0,
            spans: SpanSink::disabled(),
        }
    }

    /// Installs a span sink: every ingested transfer records a `pkt`
    /// flow target plus `unpack`/`check` spans keyed by its seq, and
    /// samples the reorder/pending occupancy as counter tracks.
    pub fn with_spans(mut self, spans: SpanSink) -> Self {
        self.spans = spans;
        self
    }

    /// The consume-side span sink (runners add their own samples, e.g.
    /// interval workers marking whole-job spans).
    pub fn spans_mut(&mut self) -> &mut SpanSink {
        &mut self.spans
    }

    /// Attaches a packet/event retention ring of `capacity` entries,
    /// enabling bounded ARQ recovery (and §4.4 replay for the engine).
    pub fn with_retention(mut self, capacity: usize) -> Self {
        self.retention = Some(ReplayBuffer::new(capacity));
        self
    }

    /// Sets the core terminal gaps are attributed to (sharded workers
    /// pass their shard's core; defaults to 0).
    pub fn with_home_core(mut self, core: u8) -> Self {
        self.home_core = core;
        self
    }

    /// Feeds one delivered transfer through decode → check → recover.
    /// `cycle` stamps flight records (0 on consumers without a cycle
    /// view); `obs` accounts the transfer once its fate is known.
    pub fn ingest<O: ChargeObserver>(&mut self, t: &Transfer, cycle: u64, obs: &mut O) -> Step {
        self.ingest_at(t, cycle, 0, obs)
    }

    fn ingest_at(
        &mut self,
        t: &Transfer,
        cycle: u64,
        depth: u32,
        obs: &mut dyn ChargeObserver,
    ) -> Step {
        let seq = peek_packet_seq(&t.bytes).unwrap_or(0);
        self.flight.record(FlightRecord {
            kind: FlightKind::PacketReceived,
            core: t.core,
            seq,
            cycle,
            value: t.bytes.len() as u64,
        });
        self.metrics.record(self.h_bytes, t.bytes.len() as u64);
        self.metrics.record(self.h_items, u64::from(t.items));
        self.obs_transfers += 1;
        self.obs_bytes += t.bytes.len() as u64;

        self.spans.flow_in("pkt", seq as u64);
        let before = *self.checker.stats();
        // Admission does everything that can fail — CRC, sequence
        // bookkeeping, structural validation — without materializing a
        // single event, so the checking pass below cannot observe a
        // malformed item and packets that fail decode leave no checker
        // effects behind.
        let t0 = self.timer.start();
        let s0 = self.spans.start();
        let admitted = self.sw.admit(t);
        self.spans.end("unpack", s0, seq as u64);
        self.timer.stop(Phase::Unpack, t0);
        let result = match admitted {
            Ok(None) => Ok(()), // buffered early packet: nothing to check yet
            Ok(Some(body)) => {
                let t0 = self.timer.start();
                let s0 = self.spans.start();
                // Stream the items through the checker as borrowed views
                // reading straight from the packet bytes — no `WireItem`
                // batch is ever built on this path.
                let Consumer {
                    sw,
                    checker,
                    flight,
                    items,
                    verdict,
                    mismatch,
                    ..
                } = self;
                let visited = sw.visit_admitted(body, &mut |item| {
                    *items += 1;
                    match checker.process_ref(item) {
                        Ok(Verdict::Continue) => true,
                        Ok(v @ Verdict::Halt { good, .. }) => {
                            flight.record(FlightRecord {
                                kind: FlightKind::Verdict,
                                core: t.core,
                                seq,
                                cycle,
                                value: u64::from(good),
                            });
                            *verdict = Some(v);
                            false
                        }
                        Err(m) => {
                            flight.record(FlightRecord {
                                kind: FlightKind::Mismatch,
                                core: m.core,
                                seq,
                                cycle,
                                value: m.seq,
                            });
                            *mismatch = Some(m);
                            false
                        }
                    }
                });
                self.spans.end("check", s0, seq as u64);
                self.timer.stop(Phase::Check, t0);
                visited.map(|_| ())
            }
            Err(e) => Err(e),
        };
        match result {
            Ok(()) => {
                // Occupancy high-water marks by handle: an indexed store
                // per transfer, no name lookup.
                self.metrics
                    .set_max(self.g_reorder, self.sw.buffered_packets() as u64);
                self.metrics
                    .set_max(self.g_pending, self.checker.pending_items() as u64);
                if self.spans.enabled() {
                    self.spans
                        .counter("reorder.buffered", self.sw.buffered_packets() as u64);
                    self.spans
                        .counter("checker.pending", self.checker.pending_items() as u64);
                }
                obs.transfer_done(t, &before, self.checker.stats());
                if self.verdict.is_some() || self.mismatch.is_some() {
                    Step::Stop
                } else {
                    Step::Continue
                }
            }
            Err(e) => {
                // The damaged bytes crossed the link regardless.
                obs.transfer_done(t, &before, &before);
                self.on_decode_error(t, &e, cycle, depth, obs)
            }
        }
    }

    /// Handles a transfer the decoder rejected: count it, drop stale
    /// duplicates, attempt ARQ redelivery, or fail the link.
    fn on_decode_error(
        &mut self,
        t: &Transfer,
        err: &CodecError,
        cycle: u64,
        depth: u32,
        obs: &mut dyn ChargeObserver,
    ) -> Step {
        let kind = LinkErrorKind::classify(err);
        self.link.note(kind);
        if kind == LinkErrorKind::Stale {
            // A duplicate of an already-delivered packet: dropping it
            // loses nothing (paper §4.5's window already delivered it).
            self.link.stale_dropped += 1;
            return Step::Continue;
        }
        // Identify the packet to re-request: a detected gap names the
        // missing sequence; for a damaged frame the embedded sequence
        // field is a best-effort guess from unverified bytes, validated
        // implicitly by the retention-ring lookup.
        let seq = match err {
            CodecError::ReorderOverflow { missing } => Some(*missing),
            _ => peek_packet_seq(&t.bytes),
        };
        if let Some(seq) = seq {
            if self.redeliver(seq, t.core, cycle, depth, obs) {
                return if self.stopped() {
                    Step::Stop
                } else {
                    Step::Continue
                };
            }
        }
        self.fail_link(kind, t.core, cycle);
        Step::Stop
    }

    /// Attempts to re-deliver packet `seq` from the retention ring; the
    /// redelivered transfer runs the full pipeline one level deeper
    /// (and is charged through `obs` like any other transfer). Returns
    /// `true` when a pristine copy was found and processed.
    fn redeliver(
        &mut self,
        seq: u32,
        core: u8,
        cycle: u64,
        depth: u32,
        obs: &mut dyn ChargeObserver,
    ) -> bool {
        if depth >= MAX_REDELIVERY_DEPTH || self.recovery_budget == 0 {
            return false;
        }
        let t0 = self.timer.start();
        let pristine = self
            .retention
            .as_ref()
            .and_then(|rb| rb.retransmit_packet(seq))
            .map(<[u8]>::to_vec);
        self.timer.stop(Phase::Arq, t0);
        let Some(pristine) = pristine else {
            return false;
        };
        self.recovery_budget -= 1;
        self.link.retransmits += 1;
        self.link.retransmit_bytes += pristine.len() as u64;
        self.flight.record(FlightRecord {
            kind: FlightKind::Retransmit,
            core,
            seq,
            cycle,
            value: pristine.len() as u64,
        });
        let rt = Transfer {
            bytes: PooledBuf::detached(pristine),
            core,
            invokes: 1,
            items: 0,
        };
        self.ingest_at(&rt, cycle, depth + 1, obs);
        if self.link_error.is_none() {
            self.link.recovered += 1;
        }
        true
    }

    /// Raises a typed link failure at the receiver's expected sequence.
    fn fail_link(&mut self, kind: LinkErrorKind, core: u8, cycle: u64) {
        let expected = self.sw.expected_seq().unwrap_or(0);
        self.flight.record(FlightRecord {
            kind: FlightKind::LinkError,
            core,
            seq: expected,
            cycle,
            value: kind as u64,
        });
        self.link_error = Some((kind, expected, core));
    }

    /// Closes the stream: any receive-side gap is now permanent —
    /// buffered successors still waiting, or (`produced` known) sent
    /// packets that never arrived. Gaps are recovered from the
    /// retention ring where possible, otherwise reported; an intact
    /// stream runs the checker's finalize.
    pub fn finish_stream<O: ChargeObserver>(
        &mut self,
        produced: Option<u32>,
        cycle: u64,
        obs: &mut O,
    ) {
        loop {
            if self.stopped() {
                return;
            }
            let Some(expected) = self.sw.expected_seq() else {
                // Per-event transfers carry no sequence numbers; drops
                // are undetectable at this layer.
                self.finalize_checker(cycle);
                return;
            };
            let tail_missing = produced.is_some_and(|sent| expected != sent);
            if self.sw.buffered_packets() == 0 && !tail_missing {
                self.finalize_checker(cycle);
                return;
            }
            self.link.note(LinkErrorKind::Gap);
            if !self.redeliver(expected, self.home_core, cycle, 0, obs) {
                self.fail_link(LinkErrorKind::Gap, self.home_core, cycle);
                return;
            }
        }
    }

    fn finalize_checker(&mut self, cycle: u64) {
        let t0 = self.timer.start();
        let fin = self.checker.finalize();
        self.timer.stop(Phase::Check, t0);
        match fin {
            Ok(v @ Verdict::Halt { good, .. }) => {
                self.flight.record(FlightRecord {
                    kind: FlightKind::Verdict,
                    core: self.home_core,
                    seq: 0,
                    cycle,
                    value: u64::from(good),
                });
                self.verdict = Some(v);
            }
            Ok(Verdict::Continue) => {}
            Err(m) => {
                self.flight.record(FlightRecord {
                    kind: FlightKind::Mismatch,
                    core: m.core,
                    seq: 0,
                    cycle,
                    value: m.seq,
                });
                self.mismatch = Some(m);
            }
        }
    }

    /// Whether the stream is decided (verdict, mismatch or link error).
    pub fn stopped(&self) -> bool {
        self.verdict.is_some() || self.mismatch.is_some() || self.link_error.is_some()
    }

    /// The verified halting trap, if any.
    pub fn verdict(&self) -> Option<Verdict> {
        self.verdict
    }

    /// The first detected mismatch, if any.
    pub fn mismatch(&self) -> Option<&Mismatch> {
        self.mismatch.as_ref()
    }

    /// The unrecovered link failure, if any.
    pub fn link_error(&self) -> Option<(LinkErrorKind, u32, u8)> {
        self.link_error
    }

    /// Wire items checked so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Link failure / recovery counters so far.
    pub fn link_stats(&self) -> LinkStats {
        self.link
    }

    /// The checker (statistics, per-core progress).
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// The retention ring, when recovery is enabled (the engine records
    /// pristine packets and monitored events into it).
    pub fn retention_mut(&mut self) -> Option<&mut ReplayBuffer> {
        self.retention.as_mut()
    }

    /// Events evicted from the retention ring before use.
    pub fn retention_dropped(&self) -> u64 {
        self.retention.as_ref().map_or(0, ReplayBuffer::dropped)
    }

    /// The flight ring (producer phases of single-threaded runners
    /// record into the same ring to keep records chronological).
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// The phase timer (shared with producer phases in single-threaded
    /// runners).
    pub fn timer_mut(&mut self) -> &mut PhaseTimer {
        &mut self.timer
    }

    /// Disjoint borrows for the engine's §4.4 replay flow: the checker
    /// (revert + replay), the retention ring (unfused retransmission)
    /// and the timer (Arq attribution) in one call.
    pub fn replay_parts(&mut self) -> (&mut Checker, Option<&mut ReplayBuffer>, &mut PhaseTimer) {
        (&mut self.checker, self.retention.as_mut(), &mut self.timer)
    }

    /// Snapshot of the flight ring.
    pub fn flight_snapshot(&self) -> FlightSnapshot {
        self.flight.snapshot()
    }

    /// The consumer's metrics with its deferred counters
    /// (`obs.transfers`/`obs.bytes`/`obs.items`), the REF execution-cache
    /// counters (`block.*`/`decode.*` plus the `block.len` build-length
    /// histogram) and phase attribution folded in. Non-consuming: the
    /// engine stays runnable.
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.metrics.clone();
        m.counters.set("obs.transfers", self.obs_transfers);
        m.counters.set("obs.bytes", self.obs_bytes);
        m.counters.set("obs.items", self.items);
        let (blocks, decode) = self.checker.ref_cache_stats();
        m.counters.set("block.hits", blocks.hits);
        m.counters.set("block.misses", blocks.misses);
        m.counters
            .set("block.store_invalidations", blocks.store_invalidations);
        m.counters.set("block.flushes", blocks.flushes);
        m.counters.set("block.early_exits", blocks.early_exits);
        m.counters.set("block.completed", blocks.completed);
        m.counters.set("block.uop_steps", blocks.uop_steps);
        m.counters.set("decode.hits", decode.hits);
        m.counters.set("decode.misses", decode.misses);
        m.counters
            .set("decode.store_invalidations", decode.store_invalidations);
        m.counters.set("decode.flushes", decode.flushes);
        // Built-block lengths arrive pre-bucketed from the REF; replayed
        // into the snapshot (not the live registry) so repeated snapshots
        // never double-count.
        let lens = m.register_histogram("block.len");
        for (len, &n) in self.checker.ref_block_len_counts().iter().enumerate() {
            m.record_n(lens, len as u64, n);
        }
        m.phases = self.timer.times();
        m
    }

    /// Tears the consumer down into its runner-facing output.
    pub fn finish(self) -> ConsumerOutput {
        let metrics = self.metrics_snapshot();
        ConsumerOutput {
            items: self.items,
            verdict: self.verdict,
            mismatch: self.mismatch,
            link_error: self.link_error,
            link: self.link,
            metrics,
            flight: self.flight.snapshot(),
            spans: self.spans.into_buf(),
        }
    }
}

/// Drives a consumer from a [`LinkSource`] until the stream ends or is
/// decided — the shared receive loop of the threaded, sharded and
/// socket runners. `on_stop` fires when the consumer decides the stream
/// early (runners broadcast their stop signal there). Returns whether
/// the source was exhausted (`false` = stopped early).
pub fn drive<S: LinkSource>(
    source: &mut S,
    consumer: &mut Consumer,
    mut on_stop: impl FnMut(),
) -> bool {
    while let Some(t) = source.recv() {
        if consumer.ingest(&t, 0, &mut NoCharge) == Step::Stop {
            on_stop();
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{DiffConfig, Session};
    use difftest_dut::DutConfig;
    use difftest_workload::Workload;

    /// Small workload + small packets: several sequenced transfers, yet
    /// few enough that none fall out of the packet-retention ring.
    fn session() -> Session {
        let w = Workload::microbench().seed(3).iterations(5).build();
        Session::new(
            DutConfig::nutshell(),
            DiffConfig::BN,
            &w,
            Vec::new(),
            200_000,
            8,
            None,
        )
        .with_packet_bytes(1024)
    }

    /// Runs the producer side to completion, collecting every packet.
    fn produce(session: &Session) -> Vec<Transfer> {
        let mut dut = session.dut();
        let mut accel = session.accel();
        let mut transfers = Vec::new();
        let mut events = Vec::new();
        while dut.halted().is_none() && dut.cycles() < session.max_cycles() {
            events.clear();
            dut.tick_into(&mut events);
            accel.push_cycle(&events, &mut transfers);
        }
        accel.flush(&mut transfers);
        transfers
    }

    #[test]
    fn tail_loss_is_reported_as_gap() {
        // Deliver everything but the last packet: the consumer must
        // flag the missing tail once the produced count says more.
        let s = session();
        let transfers = produce(&s);
        assert!(transfers.len() >= 3, "need several packets");
        let produced = transfers.len() as u32;
        let mut c = s.consumer();
        for t in &transfers[..transfers.len() - 1] {
            if c.ingest(t, 0, &mut NoCharge) == Step::Stop {
                break;
            }
        }
        if !c.stopped() {
            c.finish_stream(Some(produced), 0, &mut NoCharge);
        }
        let out = c.finish();
        match out.link_error {
            Some((LinkErrorKind::Gap, seq, _)) => assert_eq!(seq, produced - 1),
            other => panic!("expected tail gap, got {other:?} ({:?})", out.mismatch),
        }
        assert!(out.link.count(LinkErrorKind::Gap) > 0);
        assert!(
            out.flight
                .find(FlightKind::LinkError, produced - 1)
                .is_some(),
            "gap must leave a flight record"
        );
    }

    #[test]
    fn redelivery_recovers_a_dropped_packet() {
        let s = session();
        let transfers = produce(&s);
        assert!(transfers.len() >= 3);
        let mut c = s.consumer().with_retention(1 << 12);
        // Retain pristine copies like the engine's send path does.
        if let Some(rb) = c.retention_mut() {
            for t in &transfers {
                if let Some(seq) = peek_packet_seq(&t.bytes) {
                    rb.record_packet(seq, &t.bytes);
                }
            }
        }
        let produced = transfers.len() as u32;
        // Drop packet 1 in flight.
        for (i, t) in transfers.iter().enumerate() {
            if i == 1 {
                continue;
            }
            if c.ingest(t, 0, &mut NoCharge) == Step::Stop {
                break;
            }
        }
        if !c.stopped() {
            c.finish_stream(Some(produced), 0, &mut NoCharge);
        }
        let out = c.finish();
        assert_eq!(out.link_error, None, "{:?}", out.link);
        assert!(out.link.retransmits >= 1);
        assert!(out.link.recovered >= 1);
        assert!(out.mismatch.is_none(), "{:?}", out.mismatch);
    }

    #[test]
    fn snapshot_exports_ref_cache_counters() {
        let s = session();
        let transfers = produce(&s);
        let mut c = s.consumer();
        for t in &transfers {
            if c.ingest(t, 0, &mut NoCharge) == Step::Stop {
                break;
            }
        }
        let m = c.metrics_snapshot();
        let hits = m.counters.get("block.hits");
        let misses = m.counters.get("block.misses");
        assert!(hits > 0, "block cache never hit: {misses} misses");
        assert!(hits > misses, "microbench loops should be block-hot");
        assert!(m.counters.get("block.uop_steps") > hits);
        // With blocks on, the per-insn decode cache only sees spill
        // traffic, but its counters must still export.
        let lens = m.histogram("block.len").expect("block.len registered");
        assert_eq!(lens.count(), misses, "one length sample per build");
        assert!(lens.max() >= 1);
        // A second snapshot must not double-count the replayed histogram.
        let again = c.metrics_snapshot();
        assert_eq!(
            again.histogram("block.len").map(|h| h.count()),
            Some(misses)
        );
    }

    #[test]
    fn stale_duplicates_are_dropped_silently() {
        let s = session();
        let transfers = produce(&s);
        assert!(transfers.len() >= 2);
        let mut c = s.consumer();
        assert_eq!(c.ingest(&transfers[0], 0, &mut NoCharge), Step::Continue);
        // The same packet again: stale, dropped, not fatal.
        assert_eq!(c.ingest(&transfers[0], 0, &mut NoCharge), Step::Continue);
        let out = c.finish();
        assert_eq!(out.link.stale_dropped, 1);
        assert_eq!(out.link_error, None);
    }
}
