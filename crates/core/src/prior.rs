//! Models of prior hardware-accelerated co-simulation frameworks
//! (paper Table 7: IBI-check, SBS-check, Fromajo).
//!
//! We cannot run IBM AWAN or FireSim, so each prior framework is modeled by
//! its published communication *strategy* (verification state width,
//! per-instruction vs. digest-fused transfers, blocking behaviour) evaluated
//! through the same LogGP machinery as our engine, with platform constants
//! anchored to the numbers the respective papers report (see the
//! column notes of Table 7 and `DESIGN.md` §1).

use difftest_platform::LinkParams;

/// How a prior framework transfers verification state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorStrategy {
    /// One blocking transfer per retired instruction (IBI-check, Fromajo).
    PerInstruction,
    /// Digest fusion: one blocking transfer per `n` instructions
    /// (SBS-check's checksum digests, ArChiVED-style).
    DigestFused {
        /// Instructions per digest.
        n: u32,
    },
}

/// A prior co-simulation framework as published.
#[derive(Debug, Clone)]
pub struct PriorFramework {
    /// Framework name.
    pub name: &'static str,
    /// Host platform name.
    pub platform: &'static str,
    /// Number of verification state types covered.
    pub states: u32,
    /// Average verification bytes per retired instruction.
    pub bytes_per_instr: u32,
    /// DUT-only speed of the host platform in Hz.
    pub dut_only_hz: f64,
    /// Link model of the host platform.
    pub link: LinkParams,
    /// Software processing seconds per checked instruction.
    pub sw_per_instr_s: f64,
    /// Transfer strategy.
    pub strategy: PriorStrategy,
    /// Published area overhead (fraction of DUT), if known.
    pub area_overhead: Option<f64>,
}

impl PriorFramework {
    /// IBI-check on IBM AWAN: 2 state types, 7 B/instruction, blocking
    /// per-instruction checks; published ~20% communication overhead on a
    /// 100 KHz emulator (≈80 KHz co-simulation).
    pub fn ibi_check() -> Self {
        PriorFramework {
            name: "IBI-check",
            platform: "IBM AWAN",
            states: 2,
            bytes_per_instr: 7,
            dut_only_hz: 100e3,
            link: LinkParams::new(1.8e-6, 100e6),
            sw_per_instr_s: 0.4e-6,
            strategy: PriorStrategy::PerInstruction,
            area_overhead: Some(0.20),
        }
    }

    /// SBS-check (ArChiVED-style digests, estimated on gem5 by the authors):
    /// checksum fusion over ~64-instruction windows brings the overhead to
    /// ~2% on the same 100 KHz platform (≈98 KHz).
    pub fn sbs_check() -> Self {
        PriorFramework {
            name: "SBS-check",
            platform: "gem5 (est.)",
            states: 2,
            bytes_per_instr: 7,
            dut_only_hz: 100e3,
            link: LinkParams::new(1.8e-6, 100e6),
            sw_per_instr_s: 0.4e-6,
            strategy: PriorStrategy::DigestFused { n: 64 },
            area_overhead: Some(0.22),
        }
    }

    /// Fromajo on FireSim: 7 state types, 24 B/instruction, blocking
    /// per-instruction Dromajo checks over the FPGA bridge; published
    /// ~1 MHz on a 100 MHz FireSim design (99% overhead).
    pub fn fromajo() -> Self {
        PriorFramework {
            name: "Fromajo",
            platform: "FireSim",
            states: 7,
            bytes_per_instr: 24,
            dut_only_hz: 100e6,
            link: LinkParams::new(0.85e-6, 2e9),
            sw_per_instr_s: 0.12e-6,
            strategy: PriorStrategy::PerInstruction,
            area_overhead: None,
        }
    }

    /// All prior frameworks of Table 7.
    pub fn catalog() -> Vec<PriorFramework> {
        vec![Self::ibi_check(), Self::sbs_check(), Self::fromajo()]
    }

    /// Communication time charged per cycle at the given IPC (Eq. 1,
    /// blocking strategies).
    fn comm_per_cycle_s(&self, ipc: f64) -> f64 {
        match self.strategy {
            PriorStrategy::PerInstruction => {
                ipc * (self.link.transfer_time(self.bytes_per_instr as u64) + self.sw_per_instr_s)
            }
            PriorStrategy::DigestFused { n } => {
                let per_digest = self
                    .link
                    .transfer_time(self.bytes_per_instr as u64 * n as u64)
                    + self.sw_per_instr_s * n as f64 * 0.2; // digest check is cheaper
                ipc * per_digest / n as f64
            }
        }
    }

    /// Modeled co-simulation speed at the given IPC.
    pub fn cosim_speed_hz(&self, ipc: f64) -> f64 {
        let cycle = 1.0 / self.dut_only_hz;
        1.0 / (cycle + self.comm_per_cycle_s(ipc))
    }

    /// Modeled communication overhead fraction at the given IPC.
    pub fn comm_overhead(&self, ipc: f64) -> f64 {
        let cycle = 1.0 / self.dut_only_hz;
        let comm = self.comm_per_cycle_s(ipc);
        comm / (cycle + comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibi_matches_published_speed() {
        let f = PriorFramework::ibi_check();
        let speed = f.cosim_speed_hz(1.0);
        assert!((75e3..85e3).contains(&speed), "IBI speed {speed}");
        let ovh = f.comm_overhead(1.0);
        assert!((0.15..0.25).contains(&ovh), "IBI overhead {ovh}");
    }

    #[test]
    fn sbs_matches_published_speed() {
        let f = PriorFramework::sbs_check();
        let speed = f.cosim_speed_hz(1.0);
        assert!((95e3..100e3).contains(&speed), "SBS speed {speed}");
        assert!(f.comm_overhead(1.0) < 0.05);
    }

    #[test]
    fn fromajo_matches_published_speed() {
        let f = PriorFramework::fromajo();
        let speed = f.cosim_speed_hz(1.0);
        assert!((0.8e6..1.2e6).contains(&speed), "Fromajo speed {speed}");
        assert!(f.comm_overhead(1.0) > 0.97);
    }

    #[test]
    fn catalog_is_complete() {
        assert_eq!(PriorFramework::catalog().len(), 3);
    }
}
