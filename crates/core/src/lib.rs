//! DiffTest-H core: semantic-aware communication for hardware-accelerated
//! processor co-simulation.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates (`difftest-dut`, `difftest-ref`, `difftest-event`,
//! `difftest-platform`):
//!
//! - [`batch`]: **Batch** — tight packing of structurally diverse events
//!   with meta-guided dynamic unpacking (paper §4.2), plus the
//!   fixed-offset baseline of prior work,
//! - [`squash`]: **Squash** — order-decoupled fusion of instruction
//!   commits, NDE scheduling with order tags, and XOR differencing
//!   (paper §4.3), plus the order-coupled baseline,
//! - [`replay`]: **Replay** — token-ranged retransmission of unfused
//!   events and compensation-log REF revert for instruction-level
//!   debugging after fusion (paper §4.4),
//! - [`snapshot`]: the prior-work whole-DUT snapshot/re-execution baseline
//!   Replay is compared against (paper Fig. 10),
//! - [`checker`]: the ISA checker with non-deterministic-event
//!   synchronization and order restoration,
//! - [`engine`]: the co-simulation engine with LogGP virtual-time
//!   accounting, blocking and non-blocking (paper §4.5) transmission,
//! - [`threaded`]: the non-blocking architecture on real OS threads with a
//!   bounded queue (wall-clock hardware/software parallelism),
//! - [`prior`]: models of IBI-check, SBS-check and Fromajo for the
//!   Table 7 comparison.
//!
//! The runners share one transport-agnostic pipeline:
//!
//! - [`session`]: the shared setup layer ([`Session`]) plus the
//!   [`RunnerKind`]/[`run_runner`] dispatch entry point,
//! - [`link`]: the [`LinkSink`]/[`LinkSource`] transport seam and the
//!   shared fault-injecting send path ([`SendLink`]),
//! - [`consume`]: the receive-side state machine ([`Consumer`]: CRC
//!   verify → unpack → check → bounded ARQ recovery) every runner
//!   drives,
//! - [`proto`]: the DTH wire protocol itself — typed handshake/frame/
//!   result codecs with incremental, bounded-allocation decoding,
//! - [`mux`]: push-driven consumer sessions over that protocol and the
//!   [`SessionRegistry`] a multi-session service accounts them in,
//! - [`socket`]: the fourth runner — producer and consumer in separate
//!   OS processes speaking [`proto`] over a Unix-domain socket (or to a
//!   persistent `difftest-serve` daemon, Unix or TCP),
//! - [`intervals`]: the fifth runner — time-parallel interval
//!   verification: a recording pass snapshots the REF every K retired
//!   instructions and a worker pool re-verifies the checkpoint-delimited
//!   slices independently.
//!
//! # Quick start
//!
//! ```
//! use difftest_core::{CoSimulation, DiffConfig, RunOutcome};
//! use difftest_dut::DutConfig;
//! use difftest_platform::Platform;
//! use difftest_workload::Workload;
//!
//! let workload = Workload::microbench().seed(7).iterations(20).build();
//! let mut sim = CoSimulation::builder()
//!     .dut(DutConfig::nutshell())
//!     .platform(Platform::palladium())
//!     .config(DiffConfig::BNSD)
//!     .max_cycles(200_000)
//!     .build(&workload)?;
//! let report = sim.run();
//! assert_eq!(report.outcome, RunOutcome::GoodTrap);
//! assert!(report.speed_hz > 0.0);
//! # Ok::<(), difftest_core::BuildError>(())
//! ```

#![warn(missing_docs)]
// A panic in the decode/check path aborts a whole co-simulation; link
// faults must surface as typed outcomes instead. Non-test code is held
// to that bar mechanically (tests may still unwrap freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod checker;
pub mod consume;
pub mod engine;
pub mod fault;
pub mod intervals;
pub mod link;
pub mod mux;
pub mod pool;
pub mod prior;
pub mod proto;
pub mod replay;
pub mod session;
pub mod sharded;
pub mod snapshot;
pub mod socket;
pub mod squash;
pub mod threaded;
pub mod transport;
pub mod wire;

pub use checker::{CheckStats, Checker, Mismatch, Verdict};
pub use consume::{
    drive, ChargeObserver, Consumer, ConsumerOutput, NoCharge, Step, MAX_REDELIVERY_DEPTH,
    RECOVERY_BUDGET,
};
pub use engine::{BuildError, CoSimulation, CoSimulationBuilder, RunReport};
pub use fault::{FaultKind, FaultPlan, FaultStats, FaultyLink, LinkErrorKind, LinkStats};
pub use intervals::{
    run_intervals, run_intervals_faulty, run_intervals_session, run_intervals_tuned,
    IntervalTuning, IntervalsReport,
};
pub use link::{
    ChannelSink, ChannelSource, FusionWatch, LinkSink, LinkSource, QueueSink, SendLink,
};
pub use mux::{CloseReason, MuxStep, ProtoSession, SessionRegistry, SessionResult};
pub use pool::{BufferPool, PoolStats, PooledBuf};
pub use proto::{ClientMsg, FrameDecoder, Hello, ProtoError, ServeAddr, SERVE_ADDR_ENV};
pub use replay::{FailureReport, ReplayBuffer, Retransmission};
pub use session::{
    export_trace, run_runner, DiffConfig, RunCommon, RunOutcome, RunnerKind, RunnerReport, Session,
};
pub use sharded::{
    run_sharded, run_sharded_faulty, run_sharded_session, ShardedReport, WorkerReport,
};
pub use snapshot::{snapshot_debug_run, SnapshotReport};
pub use socket::{
    child_entry, run_socket, run_socket_at, run_socket_faulty, run_socket_tuned, SocketReport,
    SocketTuning, KILLED_EXIT,
};
pub use squash::{FusedCommit, SquashStats, SquashUnit};
pub use threaded::{run_threaded, run_threaded_faulty, run_threaded_session, ThreadedReport};
pub use transport::{AccelUnit, SwUnit, Transfer};
pub use wire::{WireItem, WireKind};
