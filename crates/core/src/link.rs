//! Transport seams: every runner's link is a [`LinkSink`] on the
//! producer side and a [`LinkSource`] on the consumer side.
//!
//! The paper's architecture keeps the verification pipeline
//! transport-agnostic: the same pack → transmit → unpack → check flow
//! runs whether the link is a virtual LogGP model, a bounded in-process
//! channel, or a real socket. These two single-method traits are that
//! seam. [`SendLink`] wraps any sink in the shared send path — the
//! produced-packet accounting, flight records and fault injection that
//! every runner previously hand-rolled (`feed_link` and its private
//! copies) — so a runner's transport is just an adapter:
//!
//! | runner | sink | source |
//! |---|---|---|
//! | engine | [`QueueSink`] (virtual link) | drained in-line |
//! | threaded | [`ChannelSink`] | [`ChannelSource`] |
//! | sharded | [`ChannelSink`] per core | [`ChannelSource`] per core |
//! | socket | `StreamSink` (Unix socket) | `StreamSource` |

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use difftest_stats::{FlightKind, FlightRecord, FlightRecorder, SpanBuf, SpanSink};

use crate::batch::peek_packet_seq;
use crate::fault::{FaultStats, FaultyLink};
use crate::transport::{AccelUnit, Transfer};

/// The producer side of a link: accepts transfers for delivery.
pub trait LinkSink {
    /// Offers one transfer to the link. Returns `false` once the
    /// receiver is gone (disconnected channel, broken pipe); the caller
    /// stops producing.
    fn send(&mut self, t: Transfer) -> bool;
}

/// The consumer side of a link: yields delivered transfers.
pub trait LinkSource {
    /// Receives the next transfer, blocking while the link is open.
    /// `None` means end of stream (producer closed the link).
    fn recv(&mut self) -> Option<Transfer>;
}

/// The engine's virtual link: transfers queue in memory, and the LogGP
/// [`Timing`](crate::engine) model charges their wire time. Always
/// accepts (the bounded in-flight queue is modelled in virtual time,
/// not here).
#[derive(Debug, Default)]
pub struct QueueSink {
    /// Delivered transfers awaiting in-line consumption.
    pub queue: Vec<Transfer>,
}

impl LinkSink for QueueSink {
    fn send(&mut self, t: Transfer) -> bool {
        self.queue.push(t);
        true
    }
}

/// Producer end of a bounded crossbeam channel (threaded/sharded
/// runners). A blocking send models the paper's sending queue with
/// backpressure.
pub struct ChannelSink(pub channel::Sender<Transfer>);

impl fmt::Debug for ChannelSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelSink").finish_non_exhaustive()
    }
}

impl LinkSink for ChannelSink {
    fn send(&mut self, t: Transfer) -> bool {
        self.0.send(t).is_ok()
    }
}

/// Consumer end of a bounded crossbeam channel.
pub struct ChannelSource(pub channel::Receiver<Transfer>);

impl fmt::Debug for ChannelSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelSource").finish_non_exhaustive()
    }
}

impl LinkSource for ChannelSource {
    fn recv(&mut self) -> Option<Transfer> {
        self.0.recv().ok()
    }
}

/// The shared send path in front of any [`LinkSink`]: counts every
/// packet *produced* (pre-fault, so the consumer can detect tail loss),
/// records `PacketSent` flight records, and perturbs the stream through
/// the optional [`FaultyLink`].
#[derive(Debug)]
pub struct SendLink<S: LinkSink> {
    sink: S,
    fault: Option<FaultyLink>,
    /// Packets offered to the link, counted before fault injection.
    produced: Arc<AtomicU32>,
    /// Scratch for what emerges on the far side of the fault model.
    wire: Vec<Transfer>,
    /// Producer-side span track; disabled (one branch per packet)
    /// unless a tracer is installed.
    spans: SpanSink,
}

impl<S: LinkSink> SendLink<S> {
    /// Wraps `sink`, injecting faults through `fault` when present.
    pub fn new(sink: S, fault: Option<FaultyLink>) -> Self {
        SendLink {
            sink,
            fault,
            produced: Arc::new(AtomicU32::new(0)),
            wire: Vec::new(),
            spans: SpanSink::disabled(),
        }
    }

    /// Installs a span sink: every packet fed through the link records
    /// a `pack` span and a `pkt` flow origin keyed by its seq.
    pub fn with_spans(mut self, spans: SpanSink) -> Self {
        self.spans = spans;
        self
    }

    /// Takes the producer-side span buffer (empty when tracing is off).
    pub fn take_spans(&mut self) -> SpanBuf {
        self.spans.take_buf()
    }

    /// Pushes produced transfers through the (possibly faulty) link into
    /// the sink, draining `transfers`. Returns `false` once the receiver
    /// is gone; undelivered transfers are discarded.
    pub fn feed(
        &mut self,
        transfers: &mut Vec<Transfer>,
        rec: &mut FlightRecorder,
        cycle: u64,
    ) -> bool {
        self.produced
            .fetch_add(transfers.len() as u32, Ordering::AcqRel);
        let mut ok = true;
        for t in transfers.drain(..) {
            let seq = peek_packet_seq(&t.bytes).unwrap_or(0);
            rec.record(FlightRecord {
                kind: FlightKind::PacketSent,
                core: t.core,
                seq,
                cycle,
                value: t.bytes.len() as u64,
            });
            let t0 = self.spans.start();
            match &mut self.fault {
                Some(l) => l.transmit(t, &mut self.wire),
                None => self.wire.push(t),
            }
            self.drain_wire(&mut ok);
            self.spans.end("pack", t0, seq as u64);
            self.spans.flow_out("pkt", seq as u64);
        }
        ok
    }

    /// End of stream: releases transfers the fault model still holds for
    /// reordering and delivers them. Returns `false` when the receiver
    /// is gone.
    pub fn finish(&mut self) -> bool {
        if let Some(l) = &mut self.fault {
            l.flush(&mut self.wire);
        }
        let mut ok = true;
        self.drain_wire(&mut ok);
        ok
    }

    fn drain_wire(&mut self, ok: &mut bool) {
        for t in self.wire.drain(..) {
            if *ok && !self.sink.send(t) {
                // Receiver gone: drop the rest of this batch.
                *ok = false;
            }
        }
    }

    /// Shared handle to the produced-packet counter (tail-loss
    /// detection on the consumer side).
    pub fn produced_handle(&self) -> Arc<AtomicU32> {
        Arc::clone(&self.produced)
    }

    /// Packets produced so far (pre-fault).
    pub fn produced(&self) -> u32 {
        self.produced.load(Ordering::Acquire)
    }

    /// Whether this link injects faults.
    pub fn is_faulty(&self) -> bool {
        self.fault.is_some()
    }

    /// The fault model, when injection is enabled.
    pub fn fault_link(&self) -> Option<&FaultyLink> {
        self.fault.as_ref()
    }

    /// Counters of faults injected so far (`None` on a clean link).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(FaultyLink::stats)
    }

    /// The wrapped sink (the engine drains its [`QueueSink`] through
    /// this).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }
}

/// Watches an [`AccelUnit`]'s fused-record watermark and emits one
/// `Fusion` flight record per batch that advanced it (not per cycle —
/// the ring holds failure context, not a full trace).
#[derive(Debug, Default)]
pub struct FusionWatch {
    last: u64,
}

impl FusionWatch {
    /// Records a fusion watermark advance, if any. `have_transfers`
    /// gates the record to batches that actually produced output, and
    /// `core` labels the record (the producing shard, 0 unsharded).
    pub fn observe(
        &mut self,
        accel: &AccelUnit,
        have_transfers: bool,
        core: u8,
        cycle: u64,
        rec: &mut FlightRecorder,
    ) {
        if !have_transfers {
            return;
        }
        if let Some(s) = accel.squash_stats() {
            if s.fused_records > self.last {
                self.last = s.fused_records;
                rec.record(FlightRecord {
                    kind: FlightKind::Fusion,
                    core,
                    seq: 0,
                    cycle,
                    value: s.fused_records,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::pool::PooledBuf;

    fn transfer(tag: u8) -> Transfer {
        Transfer {
            bytes: PooledBuf::detached(vec![tag; 16]),
            core: 0,
            invokes: 1,
            items: 1,
        }
    }

    #[test]
    fn clean_send_link_counts_and_delivers() {
        let mut link = SendLink::new(QueueSink::default(), None);
        let mut rec = FlightRecorder::default();
        let mut batch = vec![transfer(1), transfer(2)];
        assert!(link.feed(&mut batch, &mut rec, 7));
        assert!(batch.is_empty());
        assert_eq!(link.produced(), 2);
        assert_eq!(link.sink_mut().queue.len(), 2);
        assert_eq!(rec.len(), 2, "one PacketSent record per transfer");
        assert!(link.finish());
    }

    #[test]
    fn faulty_send_link_counts_pre_fault() {
        // An all-drop plan: everything is produced, nothing delivered.
        let mut plan = FaultPlan::clean(3);
        plan.drop_per_mille = 1000;
        let mut link = SendLink::new(QueueSink::default(), Some(FaultyLink::new(plan)));
        let mut rec = FlightRecorder::default();
        let mut batch = vec![transfer(1), transfer(2), transfer(3)];
        assert!(link.feed(&mut batch, &mut rec, 0));
        assert!(link.finish());
        assert_eq!(link.produced(), 3, "produced counts before the fault");
        assert_eq!(link.sink_mut().queue.len(), 0);
        assert_eq!(link.fault_stats().map(|s| s.dropped), Some(3));
    }

    #[test]
    fn finish_releases_reorder_holds() {
        let mut plan = FaultPlan::clean(5);
        plan.reorder_per_mille = 1000;
        plan.reorder_depth = 100;
        let mut link = SendLink::new(QueueSink::default(), Some(FaultyLink::new(plan)));
        let mut rec = FlightRecorder::default();
        let mut batch = vec![transfer(1)];
        assert!(link.feed(&mut batch, &mut rec, 0));
        assert_eq!(link.sink_mut().queue.len(), 0, "held for reordering");
        assert!(link.finish());
        assert_eq!(link.sink_mut().queue.len(), 1, "released at end of stream");
    }

    #[test]
    fn channel_adapters_round_trip_and_close() {
        let (tx, rx) = channel::bounded::<Transfer>(4);
        let mut sink = ChannelSink(tx);
        let mut source = ChannelSource(rx);
        assert!(sink.send(transfer(9)));
        let got = source.recv().unwrap();
        assert_eq!(got.bytes[0], 9);
        drop(sink);
        assert!(source.recv().is_none(), "closed channel ends the stream");
    }
}
