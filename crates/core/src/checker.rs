//! The ISA checker: drives the REF from the wire stream and compares.
//!
//! The checker consumes [`WireItem`]s in arrival order. In plain mode
//! (baseline / Batch-only) arrival order *is* checking order. In Squash
//! mode, order-decoupled items carry [`difftest_event::OrderTag`]s and are queued until the
//! fused commit covering their position arrives; the checker then restores
//! the required checking order (paper §4.3 "reordering"): for each fused
//! instruction it first applies/checks the *pre* events bound to that
//! sequence number (interrupt entries, MMIO skips, state dumps, TLB and
//! i-cache fills), steps the REF, then checks the *post* events (stores,
//! atomics, redirect-class checks).
//!
//! Checkpoints for the Replay mechanism are taken before each fused record
//! when replay support is enabled.

use std::collections::BTreeMap;
use std::fmt;

use difftest_event::{
    commit_flags, Event, EventKind, EventRef, InstrCommit, MonitoredEvent, Token,
};
use difftest_isa::csr::CsrIndex;
use difftest_isa::trap::Interrupt;
use difftest_ref::exec::Effect;
use difftest_ref::{BlockCacheStats, DecodeCacheStats, RefModel, StepOutcome, MAX_BLOCK_LEN};

use crate::squash::FusedCommit;
use crate::wire::{WireItem, WireItemRef};

/// A detected divergence between the DUT and the REF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Core on which the divergence was detected.
    pub core: u8,
    /// Instruction sequence number at detection.
    pub seq: u64,
    /// The check that failed (e.g. `"commit.pc"`, `"csr mstatus"`).
    pub check: String,
    /// Expected (REF) value rendering.
    pub expected: String,
    /// Actual (DUT) value rendering.
    pub actual: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} @ instruction {}: {} expected {} got {}",
            self.core, self.seq, self.check, self.expected, self.actual
        )
    }
}

/// Flow decision after processing an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep going.
    Continue,
    /// The simulation-terminating trap was verified.
    Halt {
        /// Core that trapped.
        core: u8,
        /// `true` for a good trap.
        good: bool,
        /// Trap PC.
        pc: u64,
    },
}

/// Checker-side statistics (drives the software-processing cost model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Events checked (all kinds).
    pub events: u64,
    /// REF instructions stepped.
    pub instructions: u64,
    /// MMIO skips synchronized.
    pub skips: u64,
    /// Interrupts synchronized.
    pub interrupts: u64,
    /// Exceptions verified.
    pub exceptions: u64,
    /// Fused records processed.
    pub fused_records: u64,
    /// Payload bytes compared.
    pub bytes: u64,
}

/// Whether an order-tagged event is checked *before* stepping its tagged
/// instruction (state it describes precedes the instruction) or *after*.
fn is_pre(event: &Event) -> bool {
    use EventKind as K;
    match event.kind() {
        K::ArchEvent
        | K::TrapEvent
        | K::VirtualInterrupt
        | K::GuestPageFault
        | K::ArchIntRegState
        | K::ArchFpRegState
        | K::CsrState
        | K::ArchVecRegState
        | K::VecCsrState
        | K::HypervisorCsrState
        | K::TriggerCsrState
        | K::DebugModeState
        | K::L1TlbEvent
        | K::L2TlbEvent
        | K::PtwEvent => true,
        K::LoadEvent | K::InstrCommit => event.is_nde(), // MMIO skips arm pre-step
        K::RefillEvent => matches!(event, Event::RefillEvent(r) if r.refill_type != 0),
        _ => false,
    }
}

#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    seq: u64,
    token: u64,
}

#[derive(Debug)]
struct CoreChecker {
    core: u8,
    refm: RefModel,
    /// Sequence number of the next instruction to check.
    seq: u64,
    last_effect: Option<Effect>,
    pending: BTreeMap<u64, Vec<(Token, Event)>>,
    token_watermark: u64,
    ckpt: Option<Checkpoint>,
    replay_support: bool,
}

macro_rules! mismatch {
    ($self:expr, $check:expr, $expected:expr, $actual:expr) => {
        return Err(Mismatch {
            core: $self.core,
            seq: $self.seq,
            check: $check.to_string(),
            expected: format!("{:#x}", $expected),
            actual: format!("{:#x}", $actual),
        })
    };
}

impl CoreChecker {
    fn ensure(
        &self,
        cond: bool,
        check: impl Into<String>,
        expected: impl fmt::LowerHex,
        actual: impl fmt::LowerHex,
    ) -> Result<(), Mismatch> {
        if cond {
            Ok(())
        } else {
            Err(Mismatch {
                core: self.core,
                seq: self.seq,
                check: check.into(),
                expected: format!("{expected:#x}"),
                actual: format!("{actual:#x}"),
            })
        }
    }

    /// Checks one plain instruction commit: PC, step, destination value.
    fn check_commit(&mut self, c: &InstrCommit, stats: &mut CheckStats) -> Result<(), Mismatch> {
        stats.events += 1;
        stats.bytes += InstrCommit::ENCODED_LEN as u64;
        self.ensure(
            self.refm.state().pc() == c.pc,
            "commit.pc",
            self.refm.state().pc(),
            c.pc,
        )?;

        if c.flags & commit_flags::SKIP != 0 && c.flags & commit_flags::LOAD != 0 {
            self.refm.skip_next(c.wdata);
            stats.skips += 1;
        }

        match self.refm.step() {
            StepOutcome::Retired { effect, .. } => {
                if c.wen != 0 {
                    let got = if c.flags & commit_flags::FP_WEN != 0 {
                        effect.fw.map(|(r, v)| (r.index() as u8, v))
                    } else {
                        effect.xw.map(|(r, v)| (r.index() as u8, v))
                    };
                    match got {
                        Some((rd, v)) => {
                            self.ensure(rd == c.wdest, "commit.wdest", rd, c.wdest)?;
                            self.ensure(v == c.wdata, "commit.wdata", v, c.wdata)?;
                        }
                        None => mismatch!(self, "commit.wen", 0u64, c.wen as u64),
                    }
                }
                self.last_effect = Some(effect);
            }
            StepOutcome::Skipped { .. } => {
                self.last_effect = None;
            }
            StepOutcome::Trapped { trap, .. } => {
                mismatch!(self, "commit.step: REF trapped", trap.mcause(), c.pc)
            }
        }
        stats.instructions += 1;
        self.seq += 1;
        Ok(())
    }

    /// Checks one non-commit event against the current REF state.
    fn check_event(
        &mut self,
        ev: &Event,
        stats: &mut CheckStats,
    ) -> Result<Option<Verdict>, Mismatch> {
        stats.events += 1;
        stats.bytes += ev.encoded_len() as u64;
        let refm = &self.refm;
        match ev {
            Event::InstrCommit(_) => {
                // Only order-tagged skip-commits reach this path; their
                // synchronization happened in `apply_nde_arming` and the
                // fused window performs the architectural step.
            }
            Event::TrapEvent(_) => {
                unreachable!("handled by dedicated paths")
            }
            Event::ArchEvent(a) => {
                if a.is_interrupt != 0 {
                    // NDE synchronization: force the REF to take the DUT's
                    // interrupt at this boundary.
                    self.ensure(
                        refm.state().pc() == a.pc,
                        "interrupt.pc",
                        refm.state().pc(),
                        a.pc,
                    )?;
                    let code = a.cause & 0x3ff;
                    let Some(intr) = Interrupt::from_code(code) else {
                        mismatch!(self, "interrupt.cause (unknown)", 7u64, code);
                    };
                    self.refm.raise_interrupt(intr);
                    stats.interrupts += 1;
                } else {
                    // Exception: the REF must trap identically.
                    match self.refm.step() {
                        StepOutcome::Trapped { pc, trap } => {
                            self.ensure(pc == a.pc, "exception.pc", pc, a.pc)?;
                            self.ensure(
                                trap.mcause() == a.cause,
                                "exception.cause",
                                trap.mcause(),
                                a.cause,
                            )?;
                            self.ensure(
                                trap.mtval() == a.tval,
                                "exception.tval",
                                trap.mtval(),
                                a.tval,
                            )?;
                        }
                        other => {
                            mismatch!(
                                self,
                                format!("exception: REF outcome {other:?}"),
                                a.cause,
                                0u64
                            )
                        }
                    }
                    stats.exceptions += 1;
                }
            }
            // The state-dump loops below compare first and only render the
            // check name on failure — an eager `format!` per register would
            // put 32+ heap allocations on the hot path of every dump event.
            Event::ArchIntRegState(s) => {
                for (i, (got, want)) in s.regs.iter().zip(refm.state().xregs()).enumerate() {
                    if got != want {
                        self.ensure(false, format!("xreg x{i}"), *want, *got)?;
                    }
                }
            }
            Event::ArchFpRegState(s) => {
                for (i, (got, want)) in s.regs.iter().zip(refm.state().fregs()).enumerate() {
                    if got != want {
                        self.ensure(false, format!("freg f{i}"), *want, *got)?;
                    }
                }
            }
            Event::CsrState(s) => {
                for (i, (got, want)) in s.csrs.iter().zip(refm.state().csrs()).enumerate() {
                    if got != want {
                        let name = CsrIndex::from_dense(i).map(|c| c.name()).unwrap_or("?");
                        self.ensure(false, format!("csr {name}"), *want, *got)?;
                    }
                }
            }
            Event::ArchVecRegState(s) => {
                // Vector state is architecturally zero in this model on both
                // sides; any non-zero reading is a monitor/datapath fault.
                for (i, got) in s.regs.iter().enumerate() {
                    if *got != 0 {
                        self.ensure(false, format!("vreg half {i}"), 0u64, *got)?;
                    }
                }
            }
            Event::VecCsrState(s) => {
                let st = refm.state();
                self.ensure(
                    s.vstart == st.csr(CsrIndex::Vstart),
                    "vstart",
                    st.csr(CsrIndex::Vstart),
                    s.vstart,
                )?;
                self.ensure(
                    s.vl == st.csr(CsrIndex::Vl),
                    "vl",
                    st.csr(CsrIndex::Vl),
                    s.vl,
                )?;
                self.ensure(
                    s.vtype == st.csr(CsrIndex::Vtype),
                    "vtype",
                    st.csr(CsrIndex::Vtype),
                    s.vtype,
                )?;
                self.ensure(
                    s.vcsr == st.csr(CsrIndex::Vcsr),
                    "vcsr",
                    st.csr(CsrIndex::Vcsr),
                    s.vcsr,
                )?;
            }
            Event::HypervisorCsrState(s) => {
                let st = refm.state();
                self.ensure(
                    s.csrs[0] == st.csr(CsrIndex::Hstatus),
                    "hstatus",
                    st.csr(CsrIndex::Hstatus),
                    s.csrs[0],
                )?;
                self.ensure(
                    s.csrs[1] == st.csr(CsrIndex::Hedeleg),
                    "hedeleg",
                    st.csr(CsrIndex::Hedeleg),
                    s.csrs[1],
                )?;
            }
            Event::TriggerCsrState(s) => {
                self.ensure(s.tselect == 0, "tselect", 0u64, s.tselect)?;
            }
            Event::DebugModeState(s) => {
                self.ensure(s.debug_mode == 0, "debug_mode", 0u8, s.debug_mode)?;
            }
            Event::IntWriteback(w) => {
                let want = refm.state().xreg(difftest_isa::Reg::new(w.idx));
                if w.data != want {
                    self.ensure(false, format!("int writeback x{}", w.idx), want, w.data)?;
                }
            }
            Event::FpWriteback(w) => {
                let want = refm.state().freg(difftest_isa::FReg::new(w.idx));
                if w.data != want {
                    self.ensure(false, format!("fp writeback f{}", w.idx), want, w.data)?;
                }
            }
            Event::LoadEvent(l) => {
                if l.is_mmio != 0 {
                    // Plain mode: the commit's SKIP flag already armed and
                    // consumed the synchronization; the event itself is
                    // informational here. (In Squash mode MMIO loads arrive
                    // through the tagged path, which arms the skip before
                    // dispatching here — see `apply_nde_arming`.)
                } else if let Some(eff) = &self.last_effect {
                    if let Some(m) = eff.memr {
                        self.ensure(l.addr == m.addr, "load.addr", m.addr, l.addr)?;
                    }
                    if let Some((_, v)) = eff.xw.or(eff
                        .fw
                        .map(|(r, v)| (difftest_isa::Reg::new(r.index() as u8), v)))
                    {
                        self.ensure(l.data == v, "load.data", v, l.data)?;
                    }
                }
            }
            Event::StoreEvent(s) => {
                let Some(w) = self.last_effect.as_ref().and_then(|e| e.memw) else {
                    mismatch!(self, "store event without REF store", 0u64, s.addr);
                };
                let base = w.addr & !7;
                let off = (w.addr - base) as u32;
                let mask = (((1u16 << w.len) - 1) as u8) << off;
                let data = w.value << (8 * off);
                self.ensure(s.addr == base, "store.addr", base, s.addr)?;
                self.ensure(s.mask == mask, "store.mask", mask, s.mask)?;
                // Compare only the bytes the mask enables.
                let mut bitmask = 0u64;
                for b in 0..8 {
                    if mask & (1 << b) != 0 {
                        bitmask |= 0xffu64 << (8 * b);
                    }
                }
                self.ensure(
                    s.data & bitmask == data & bitmask,
                    "store.data",
                    data & bitmask,
                    s.data & bitmask,
                )?;
            }
            Event::AtomicEvent(a) => {
                let Some(w) = self.last_effect.as_ref().and_then(|e| e.memw) else {
                    mismatch!(self, "atomic event without REF store", 0u64, a.addr);
                };
                self.ensure(a.addr == w.addr, "atomic.addr", w.addr, a.addr)?;
                if let Some((_, v)) = self.last_effect.as_ref().and_then(|e| e.xw) {
                    self.ensure(a.out == v, "atomic.out", v, a.out)?;
                }
            }
            Event::LrScEvent(l) => {
                if l.valid != 0 {
                    let want = self
                        .last_effect
                        .as_ref()
                        .and_then(|e| e.xw)
                        .map(|(_, v)| (v == 0) as u8)
                        .unwrap_or(0);
                    self.ensure(l.success == want, "sc.success", want, l.success)?;
                }
            }
            Event::SbufferEvent(s) => {
                for b in 0..64u64 {
                    if s.mask & (1 << b) != 0 {
                        let want = self.refm.mem().read_u8(s.addr + b);
                        let got = s.data[b as usize];
                        if got != want {
                            self.ensure(false, format!("sbuffer byte {b}"), want, got)?;
                        }
                    } else if s.data[b as usize] != 0 {
                        self.ensure(
                            false,
                            format!("sbuffer bubble {b}"),
                            0u8,
                            s.data[b as usize],
                        )?;
                    }
                }
            }
            Event::RefillEvent(r) => {
                let line = r.addr & !63;
                for (i, beat) in r.data.iter().enumerate() {
                    let want = self.refm.mem().read(line + 8 * i as u64, 8);
                    if *beat != want {
                        self.ensure(false, format!("refill beat {i}"), want, *beat)?;
                    }
                }
            }
            Event::L1TlbEvent(t) => {
                if t.valid != 0 {
                    self.ensure(t.ppn == t.vpn, "l1tlb identity", t.vpn, t.ppn)?;
                    let satp = self.refm.state().csr(CsrIndex::Satp);
                    self.ensure(t.satp == satp, "l1tlb.satp", satp, t.satp)?;
                }
            }
            Event::L2TlbEvent(t) => {
                if t.valid != 0 {
                    for (i, p) in t.ppns.iter().enumerate() {
                        if *p != t.vpn + i as u64 {
                            self.ensure(false, format!("l2tlb ppn {i}"), t.vpn + i as u64, *p)?;
                        }
                    }
                }
            }
            Event::PtwEvent(p) => {
                self.ensure(p.pf == 0, "ptw.pf", 0u8, p.pf)?;
                self.ensure(p.levels[3] == p.vpn, "ptw leaf", p.vpn, p.levels[3])?;
            }
            Event::Redirect(r) => {
                let want = self.refm.state().pc();
                self.ensure(r.target == want, "redirect.target", want, r.target)?;
            }
            Event::RunaheadEvent(r) => {
                if r.valid != 0 {
                    let want = (self.seq.wrapping_sub(1) & 0xffff) as u16;
                    self.ensure(
                        r.checkpoint_id == want,
                        "runahead.id",
                        want,
                        r.checkpoint_id,
                    )?;
                }
            }
            Event::FpCsrUpdate(u) => {
                let want = self.refm.state().csr(CsrIndex::Fcsr);
                self.ensure(u.data == want, "fcsr.data", want, u.data)?;
                self.ensure(
                    u.fflags as u64 == want & 0x1f,
                    "fcsr.fflags",
                    want & 0x1f,
                    u.fflags as u64,
                )?;
            }
            Event::VecConfig(v) => {
                let st = refm.state();
                self.ensure(
                    v.vl == st.csr(CsrIndex::Vl),
                    "vecconfig.vl",
                    st.csr(CsrIndex::Vl),
                    v.vl,
                )?;
                self.ensure(
                    v.vtype == st.csr(CsrIndex::Vtype),
                    "vecconfig.vtype",
                    st.csr(CsrIndex::Vtype),
                    v.vtype,
                )?;
            }
            Event::HCsrUpdate(h) => {
                if let Some(c) = CsrIndex::from_address(h.addr) {
                    let want = self.refm.state().csr(c);
                    self.ensure(h.data == want, format!("hcsr {}", c.name()), want, h.data)?;
                }
            }
            // Rarely-emitted extension events: structural validity only.
            Event::VecWriteback(_) | Event::VecLoad(_) | Event::VecStore(_) => {}
            Event::VirtualInterrupt(v) => {
                self.ensure(
                    v.valid == 0,
                    "virtual interrupt (unsupported)",
                    0u8,
                    v.valid,
                )?;
            }
            Event::GuestPageFault(g) => {
                self.ensure(
                    g.fault_type == 0,
                    "guest page fault (unsupported)",
                    0u8,
                    g.fault_type,
                )?;
            }
        }
        Ok(None)
    }

    /// Handles a trap event (simulation end).
    fn check_trap(
        &mut self,
        t: &difftest_event::TrapEvent,
        stats: &mut CheckStats,
    ) -> Result<Verdict, Mismatch> {
        stats.events += 1;
        self.ensure(
            self.refm.state().pc() == t.pc,
            "trap.pc",
            self.refm.state().pc(),
            t.pc,
        )?;
        Ok(Verdict::Halt {
            core: self.core,
            good: t.code == 0,
            pc: t.pc,
        })
    }

    /// Arms NDE synchronization carried by an order-tagged event before it
    /// is dispatched for checking: an MMIO load's observed value becomes the
    /// skip value of the instruction it is tagged to. Arming only applies
    /// when the tagged instruction is the next to step; a stale event (the
    /// instruction already stepped) must not poison a later one.
    fn apply_nde_arming(&mut self, event: &Event, tag: u64, stats: &mut CheckStats) {
        if tag != self.seq {
            return;
        }
        match event {
            Event::LoadEvent(l) if l.is_mmio != 0 => {
                self.refm.skip_next(l.data);
                stats.skips += 1;
            }
            Event::InstrCommit(c)
                if c.flags & commit_flags::SKIP != 0 && c.flags & commit_flags::LOAD != 0 =>
            {
                self.refm.skip_next(c.wdata);
                stats.skips += 1;
            }
            _ => {}
        }
    }

    /// Accepts an order-tagged item: checks it now when its position has
    /// been reached, queues it otherwise.
    fn accept_tagged(
        &mut self,
        tag: u64,
        token: Token,
        event: Event,
        stats: &mut CheckStats,
    ) -> Result<Option<Verdict>, Mismatch> {
        self.token_watermark = self.token_watermark.max(token.0);
        // Pre events tagged `t` become checkable once seq reaches the tag;
        // post events once instruction `t` has stepped (seq > t). Always
        // enqueue first so same-tag events are checked in capture (token)
        // order — a newly arrived event must not jump ahead of earlier
        // pending ones (e.g. an interrupt entry must not be applied before
        // the state dumps captured ahead of it are compared).
        let pre = is_pre(&event);
        let ready = if pre { tag <= self.seq } else { tag < self.seq };
        self.pending.entry(tag).or_default().push((token, event));
        if ready {
            if let Some(v) = self.drain_pending(tag, true, stats)? {
                return Ok(Some(v));
            }
            if tag < self.seq {
                if let Some(v) = self.drain_pending(tag, false, stats)? {
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    /// Drains due pending events. `pre` selects the phase relative to the
    /// instruction with sequence `seq`.
    fn drain_pending(
        &mut self,
        seq: u64,
        pre: bool,
        stats: &mut CheckStats,
    ) -> Result<Option<Verdict>, Mismatch> {
        let Some(mut entries) = self.pending.remove(&seq) else {
            return Ok(None);
        };
        let mut rest = Vec::new();
        for (token, event) in entries.drain(..) {
            if is_pre(&event) == pre {
                if let Event::TrapEvent(t) = &event {
                    return self.check_trap(t, stats).map(Some);
                }
                self.apply_nde_arming(&event, seq, stats);
                if let Some(v) = self.check_event(&event, stats)? {
                    return Ok(Some(v));
                }
            } else {
                rest.push((token, event));
            }
        }
        if !rest.is_empty() {
            self.pending.insert(seq, rest);
        }
        Ok(None)
    }

    /// Processes one fused commit record (Squash mode).
    fn process_fused(
        &mut self,
        f: &FusedCommit,
        stats: &mut CheckStats,
    ) -> Result<Option<Verdict>, Mismatch> {
        stats.fused_records += 1;
        stats.events += 1;
        stats.bytes += f.encoded_len() as u64;
        self.token_watermark = self.token_watermark.max(f.token_last);

        if self.replay_support {
            self.refm.checkpoint();
            let min_pending = self
                .pending
                .values()
                .flat_map(|v| v.iter().map(|(t, _)| t.0))
                .min()
                .unwrap_or(u64::MAX);
            self.ckpt = Some(Checkpoint {
                seq: self.seq,
                token: f.token_first.min(min_pending),
            });
        }

        self.ensure(
            f.first_seq == self.seq,
            "fused.first_seq",
            self.seq,
            f.first_seq,
        )?;

        for _ in 0..f.count {
            // Order-tagged events are the exception, not the rule: the
            // common window has nothing pending, and `pending` can only
            // shrink while this loop runs (`accept_tagged` is the only
            // grower), so one emptiness check hoists both per-instruction
            // BTreeMap probes out of the batch-stepping path.
            if !self.pending.is_empty() {
                if let Some(v) = self.drain_pending(self.seq, true, stats)? {
                    return Ok(Some(v));
                }
            }
            match self.refm.step() {
                StepOutcome::Retired { effect, .. } => self.last_effect = Some(effect),
                StepOutcome::Skipped { .. } => {
                    // The arming LoadEvent already counted the skip.
                    self.last_effect = None;
                }
                StepOutcome::Trapped { trap, .. } => {
                    mismatch!(self, "fused.step: REF trapped", trap.mcause(), self.seq)
                }
            }
            stats.instructions += 1;
            self.seq += 1;
            if !self.pending.is_empty() {
                if let Some(v) = self.drain_pending(self.seq - 1, false, stats)? {
                    return Ok(Some(v));
                }
            }
        }

        if f.final_pc != 0 {
            self.ensure(
                self.refm.state().pc() == f.final_pc,
                "fused.final_pc",
                self.refm.state().pc(),
                f.final_pc,
            )?;
        }
        for (r, v) in &f.int_writes {
            let want = self.refm.state().xreg(difftest_isa::Reg::new(*r));
            if want != *v {
                self.ensure(false, format!("fused write x{r}"), want, *v)?;
            }
        }
        for (r, v) in &f.fp_writes {
            let want = self.refm.state().freg(difftest_isa::FReg::new(*r));
            if want != *v {
                self.ensure(false, format!("fused write f{r}"), want, *v)?;
            }
        }

        if self.replay_support {
            self.refm.prune_checkpoints(2);
        }
        Ok(None)
    }

    /// Checks one plain (unfused, untagged) event by reference. Shared by
    /// [`Checker::process`] and the replay path, which re-checks monitored
    /// events it does not own.
    fn process_plain(
        &mut self,
        event: &Event,
        stats: &mut CheckStats,
    ) -> Result<Verdict, Mismatch> {
        match event {
            Event::InstrCommit(c) => {
                self.check_commit(c, stats)?;
                Ok(Verdict::Continue)
            }
            Event::TrapEvent(t) => self.check_trap(t, stats),
            other => Ok(self.check_event(other, stats)?.unwrap_or(Verdict::Continue)),
        }
    }

    /// Checks one plain item through its borrowed wire view — the
    /// zero-materialization fast path. Commits and traps copy their
    /// small fixed struct off the wire; the big state dumps compare the
    /// packet bytes against the REF lazily and only materialize when a
    /// register actually diverges (to render the precise [`Mismatch`]);
    /// the remaining kinds materialize their (small) owned struct and
    /// take the standard path.
    fn process_plain_ref(
        &mut self,
        event: &EventRef<'_>,
        stats: &mut CheckStats,
    ) -> Result<Verdict, Mismatch> {
        match event {
            EventRef::InstrCommit(c) => {
                let c = (*c).to_owned();
                self.check_commit(&c, stats)?;
                Ok(Verdict::Continue)
            }
            EventRef::TrapEvent(t) => {
                let t = (*t).to_owned();
                self.check_trap(&t, stats)
            }
            EventRef::ArchIntRegState(s) => {
                let diverges = s
                    .regs()
                    .iter()
                    .zip(self.refm.state().xregs())
                    .any(|(got, want)| got != *want);
                if diverges {
                    return self.process_plain(&(*s).to_owned().into(), stats);
                }
                stats.events += 1;
                stats.bytes += s.wire_bytes().len() as u64;
                Ok(Verdict::Continue)
            }
            EventRef::ArchFpRegState(s) => {
                let diverges = s
                    .regs()
                    .iter()
                    .zip(self.refm.state().fregs())
                    .any(|(got, want)| got != *want);
                if diverges {
                    return self.process_plain(&(*s).to_owned().into(), stats);
                }
                stats.events += 1;
                stats.bytes += s.wire_bytes().len() as u64;
                Ok(Verdict::Continue)
            }
            EventRef::CsrState(s) => {
                let diverges = s
                    .csrs()
                    .iter()
                    .zip(self.refm.state().csrs())
                    .any(|(got, want)| got != *want);
                if diverges {
                    return self.process_plain(&(*s).to_owned().into(), stats);
                }
                stats.events += 1;
                stats.bytes += s.wire_bytes().len() as u64;
                Ok(Verdict::Continue)
            }
            EventRef::ArchVecRegState(s) => {
                // Architecturally zero on both sides; any non-zero half
                // is a monitor/datapath fault.
                if s.regs().iter().any(|got| got != 0) {
                    return self.process_plain(&(*s).to_owned().into(), stats);
                }
                stats.events += 1;
                stats.bytes += s.wire_bytes().len() as u64;
                Ok(Verdict::Continue)
            }
            other => {
                let ev = other.to_event();
                self.process_plain(&ev, stats)
            }
        }
    }
}

/// The multi-core ISA checker.
///
/// A checker owns a contiguous range of core ids starting at its *core
/// base* (0 for [`Checker::new`]): items whose [`WireItem::core`] falls in
/// `core_base .. core_base + cores` are checked, anything else is reported
/// as a transport fault. [`Checker::single`] builds a one-core checker
/// with a non-zero base, which is how the sharded runner gives each worker
/// its own core without renumbering items on the wire.
#[derive(Debug)]
pub struct Checker {
    cores: Vec<CoreChecker>,
    stats: CheckStats,
    core_base: u8,
}

impl Checker {
    /// Creates a checker over one REF per core. `replay_support` enables
    /// journaling and checkpointing for the Replay mechanism.
    pub fn new(refs: Vec<RefModel>, replay_support: bool) -> Self {
        let cores = refs
            .into_iter()
            .enumerate()
            .map(|(i, mut refm)| {
                refm.set_journal_enabled(replay_support);
                CoreChecker {
                    core: i as u8,
                    refm,
                    seq: 0,
                    last_effect: None,
                    pending: BTreeMap::new(),
                    token_watermark: 0,
                    ckpt: None,
                    replay_support,
                }
            })
            .collect();
        Checker {
            cores,
            stats: CheckStats::default(),
            core_base: 0,
        }
    }

    /// Creates a single-core checker responsible for exactly `core`.
    ///
    /// Items for any other core id are rejected as mismatches, so a
    /// sharded topology (one checker per worker thread) detects routing
    /// faults the same way the monolithic checker detects corrupted core
    /// bytes. `replay_support` is as in [`Checker::new`].
    pub fn single(core: u8, mut refm: RefModel, replay_support: bool) -> Self {
        refm.set_journal_enabled(replay_support);
        Checker {
            cores: vec![CoreChecker {
                core,
                refm,
                seq: 0,
                last_effect: None,
                pending: BTreeMap::new(),
                token_watermark: 0,
                ckpt: None,
                replay_support,
            }],
            stats: CheckStats::default(),
            core_base: core,
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// Aggregated REF instruction-cache counters across all cores: the
    /// block trace cache and the per-insn decode cache. Feeds the
    /// `block.*` / `decode.*` observability counters.
    pub fn ref_cache_stats(&self) -> (BlockCacheStats, DecodeCacheStats) {
        let mut blocks = BlockCacheStats::default();
        let mut decode = DecodeCacheStats::default();
        for c in &self.cores {
            blocks.merge(&c.refm.block_cache_stats());
            decode.merge(&c.refm.decode_cache_stats());
        }
        (blocks, decode)
    }

    /// Aggregated built-block length distribution across all cores,
    /// indexed by length in micro-ops.
    pub fn ref_block_len_counts(&self) -> [u64; MAX_BLOCK_LEN + 1] {
        let mut counts = [0u64; MAX_BLOCK_LEN + 1];
        for c in &self.cores {
            for (acc, n) in counts.iter_mut().zip(c.refm.block_len_counts()) {
                *acc += n;
            }
        }
        counts
    }

    /// Borrows the per-core REF states and progress for an external snapshot
    /// (the prior-work debugging strategy compared in `crate::snapshot`).
    /// Callers that need the state beyond the borrow clone at the call
    /// site; the checker itself never copies a `RefModel`.
    ///
    /// # Panics
    ///
    /// Panics if order-tagged items are still pending — snapshots must be
    /// taken at quiesced points (flush the acceleration unit and process
    /// everything first).
    pub fn snapshot_refs(&self) -> Vec<(&RefModel, u64)> {
        assert_eq!(
            self.pending_items(),
            0,
            "snapshot requires a quiesced checker"
        );
        self.cores.iter().map(|c| (&c.refm, c.seq)).collect()
    }

    /// Rebuilds a single-core checker mid-stream: responsible for exactly
    /// `core` (as [`Checker::single`]) but starting at sequence `seq`
    /// instead of 0 (as [`Checker::resume`]). The interval runner seeds
    /// each worker this way from a REF checkpoint taken at an interval
    /// boundary, so fused records whose `first_seq` continues the recorded
    /// stream line up with the restored checker.
    pub fn resume_single(core: u8, mut refm: RefModel, seq: u64, replay_support: bool) -> Self {
        refm.set_journal_enabled(replay_support);
        Checker {
            cores: vec![CoreChecker {
                core,
                refm,
                seq,
                last_effect: None,
                pending: BTreeMap::new(),
                token_watermark: 0,
                ckpt: None,
                replay_support,
            }],
            stats: CheckStats::default(),
            core_base: core,
        }
    }

    /// Rebuilds a checker from snapshotted REF states and progress.
    pub fn resume(refs: Vec<(RefModel, u64)>, replay_support: bool) -> Self {
        let cores = refs
            .into_iter()
            .enumerate()
            .map(|(i, (mut refm, seq))| {
                refm.set_journal_enabled(replay_support);
                CoreChecker {
                    core: i as u8,
                    refm,
                    seq,
                    last_effect: None,
                    pending: BTreeMap::new(),
                    token_watermark: 0,
                    ckpt: None,
                    replay_support,
                }
            })
            .collect();
        Checker {
            cores,
            stats: CheckStats::default(),
            core_base: 0,
        }
    }

    /// Instructions checked so far on `core`.
    pub fn seq(&self, core: u8) -> u64 {
        self.cores[(core - self.core_base) as usize].seq
    }

    /// Processes one wire item (owned: tagged and differenced payloads are
    /// queued without copying).
    ///
    /// # Errors
    ///
    /// Returns the [`Mismatch`] that aborted checking.
    pub fn process(&mut self, item: WireItem) -> Result<Verdict, Mismatch> {
        let idx = (item.core() as usize).wrapping_sub(self.core_base as usize);
        let Some(core) = self.cores.get_mut(idx) else {
            // A corrupted transport can smuggle an out-of-range core id;
            // surface it as a checkable failure instead of panicking.
            return Err(Mismatch {
                core: item.core(),
                seq: 0,
                check: "wire.core out of range".to_owned(),
                expected: format!("{:#x}", self.cores.len()),
                actual: format!("{:#x}", item.core()),
            });
        };
        let stats = &mut self.stats;
        match item {
            WireItem::Plain { event, .. } => core.process_plain(&event, stats),
            WireItem::Tagged {
                tag, token, event, ..
            }
            | WireItem::Diff {
                tag, token, event, ..
            } => Ok(core
                .accept_tagged(tag.0, token, event, stats)?
                .unwrap_or(Verdict::Continue)),
            WireItem::Fused { fused, .. } => Ok(core
                .process_fused(&fused, stats)?
                .unwrap_or(Verdict::Continue)),
        }
    }

    /// Processes one borrowed wire item straight off the packet bytes —
    /// the zero-materialization fast path of the streaming consumer.
    /// Plain payloads are checked in place (see `process_plain_ref`);
    /// order-tagged payloads materialize because the pending queue must
    /// own them until their checking position is reached.
    ///
    /// # Errors
    ///
    /// Returns the [`Mismatch`] that aborted checking.
    pub fn process_ref(&mut self, item: WireItemRef<'_>) -> Result<Verdict, Mismatch> {
        let idx = (item.core() as usize).wrapping_sub(self.core_base as usize);
        let Some(core) = self.cores.get_mut(idx) else {
            return Err(Mismatch {
                core: item.core(),
                seq: 0,
                check: "wire.core out of range".to_owned(),
                expected: format!("{:#x}", self.cores.len()),
                actual: format!("{:#x}", item.core()),
            });
        };
        let stats = &mut self.stats;
        match item {
            WireItemRef::Plain { event, .. } => core.process_plain_ref(&event, stats),
            WireItemRef::Tagged {
                tag, token, event, ..
            } => Ok(core
                .accept_tagged(tag.0, token, event.to_event(), stats)?
                .unwrap_or(Verdict::Continue)),
            WireItemRef::Diff {
                tag, token, event, ..
            } => Ok(core
                .accept_tagged(tag.0, token, event, stats)?
                .unwrap_or(Verdict::Continue)),
            WireItemRef::Fused { fused, .. } => Ok(core
                .process_fused(&fused, stats)?
                .unwrap_or(Verdict::Continue)),
        }
    }

    /// Drains pending items whose position has been reached (called after
    /// the final flush). Returns a halt verdict if the trap event was
    /// pending.
    ///
    /// # Errors
    ///
    /// Returns the [`Mismatch`] that aborted checking.
    pub fn finalize(&mut self) -> Result<Verdict, Mismatch> {
        for i in 0..self.cores.len() {
            let core = &mut self.cores[i];
            let due: Vec<u64> = core.pending.range(..=core.seq).map(|(k, _)| *k).collect();
            for seq in due {
                for pre in [true, false] {
                    if let Some(v) = core.drain_pending(seq, pre, &mut self.stats)? {
                        return Ok(v);
                    }
                }
            }
        }
        Ok(Verdict::Continue)
    }

    /// Number of pending (not yet checkable) items across cores.
    pub fn pending_items(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.pending.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Reverts `core`'s REF to the last checkpoint for a replay pass,
    /// clearing its pending queue. Returns the token range
    /// `(checkpoint, watermark)` to retransmit, or `None` when no
    /// checkpoint exists (the mismatch is already precise).
    pub fn revert_for_replay(&mut self, core: u8) -> Option<(u64, u64)> {
        let c = &mut self.cores[(core - self.core_base) as usize];
        let ckpt = c.ckpt.take()?;
        if !c.refm.revert() {
            return None;
        }
        c.seq = ckpt.seq;
        c.last_effect = None;
        c.pending.clear();
        Some((ckpt.token, c.token_watermark))
    }

    /// Reprocesses retransmitted, unfused events in plain mode after a
    /// revert, returning the precise mismatch if one reproduces.
    pub fn replay_unfused(&mut self, core: u8, events: &[MonitoredEvent]) -> Option<Mismatch> {
        let idx = (core as usize).wrapping_sub(self.core_base as usize);
        let stats = &mut self.stats;
        let c = self.cores.get_mut(idx)?;
        for ev in events.iter().filter(|e| e.core == core) {
            // Monitored events are borrowed from the replay window, not
            // re-owned: the checker only ever reads them.
            if let Err(m) = c.process_plain(&ev.event, stats) {
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{ArchEvent, OrderTag};
    use difftest_isa::{encode, Reg};
    use difftest_ref::Memory;

    fn ref_with(words: &[u32]) -> RefModel {
        let mut mem = Memory::new();
        mem.load_words(Memory::RAM_BASE, words);
        RefModel::new(mem)
    }

    fn commit(pc: u64, instr: u32, wdest: u8, wdata: u64) -> InstrCommit {
        InstrCommit {
            pc,
            instr,
            wen: 1,
            wdest,
            wdata,
            flags: 0,
            rob_idx: 0,
        }
    }

    #[test]
    fn plain_commit_checks_pass_and_fail() {
        let w = encode::addi(Reg::A0, Reg::ZERO, 7);
        let mut ck = Checker::new(vec![ref_with(&[w, w])], false);
        let ok = WireItem::Plain {
            core: 0,
            event: commit(Memory::RAM_BASE, w, 10, 7).into(),
        };
        assert_eq!(ck.process(ok).unwrap(), Verdict::Continue);

        let bad = WireItem::Plain {
            core: 0,
            event: commit(Memory::RAM_BASE + 4, w, 10, 8).into(),
        };
        let m = ck.process(bad).unwrap_err();
        assert_eq!(m.check, "commit.wdata");
        assert_eq!(m.seq, 1);
    }

    #[test]
    fn fused_window_steps_and_verifies_write_set() {
        let words = [
            encode::addi(Reg::A0, Reg::ZERO, 1),
            encode::addi(Reg::A1, Reg::A0, 2),
            encode::addi(Reg::A0, Reg::A1, 3),
        ];
        let mut ck = Checker::new(vec![ref_with(&words)], false);
        let fused = FusedCommit {
            first_seq: 0,
            count: 3,
            final_pc: Memory::RAM_BASE + 12,
            int_writes: vec![(10, 6), (11, 3)],
            ..Default::default()
        };
        let item = WireItem::Fused { core: 0, fused };
        assert_eq!(ck.process(item).unwrap(), Verdict::Continue);
        assert_eq!(ck.seq(0), 3);
    }

    #[test]
    fn fused_write_set_mismatch_detected() {
        let words = [encode::addi(Reg::A0, Reg::ZERO, 1)];
        let mut ck = Checker::new(vec![ref_with(&words)], false);
        let fused = FusedCommit {
            first_seq: 0,
            count: 1,
            final_pc: 0,
            int_writes: vec![(10, 99)],
            ..Default::default()
        };
        let m = ck.process(WireItem::Fused { core: 0, fused }).unwrap_err();
        assert_eq!(m.check, "fused write x10");
    }

    #[test]
    fn tagged_nde_reorders_into_fused_window() {
        // Instruction 1 is an MMIO load; its LoadEvent is transmitted ahead
        // with tag 1 and must arm the skip inside the fused window.
        let words = [
            encode::addi(Reg::A1, Reg::ZERO, 0x100),
            encode::lw(Reg::A0, Reg::A1, 0), // a1 = 0x100 -> MMIO
            encode::addi(Reg::A2, Reg::A0, 1),
        ];
        let mut ck = Checker::new(vec![ref_with(&words)], false);
        let nde = WireItem::Tagged {
            core: 0,
            tag: OrderTag(1),
            token: Token(1),
            event: difftest_event::LoadEvent {
                pc: Memory::RAM_BASE + 4,
                addr: 0x100,
                data: 0xab,
                len: 4,
                is_mmio: 1,
                fu_type: 0,
                op_type: 0,
            }
            .into(),
        };
        assert_eq!(ck.process(nde).unwrap(), Verdict::Continue);
        assert_eq!(ck.pending_items(), 1);

        let fused = FusedCommit {
            first_seq: 0,
            count: 3,
            final_pc: Memory::RAM_BASE + 12,
            int_writes: vec![(11, 0x100), (10, 0xab), (12, 0xac)],
            ..Default::default()
        };
        assert_eq!(
            ck.process(WireItem::Fused { core: 0, fused }).unwrap(),
            Verdict::Continue
        );
        assert_eq!(ck.pending_items(), 0);
        assert_eq!(ck.stats().skips, 1);
    }

    #[test]
    fn interrupt_event_syncs_ref() {
        let words = [encode::nop(), encode::nop()];
        let mut r = ref_with(&words);
        r.state_mut()
            .set_csr(CsrIndex::Mtvec, Memory::RAM_BASE + 0x40);
        let mut ck = Checker::new(vec![r], false);
        let intr = WireItem::Plain {
            core: 0,
            event: ArchEvent {
                pc: Memory::RAM_BASE,
                cause: (1 << 63) | 7,
                tval: 0,
                is_interrupt: 1,
            }
            .into(),
        };
        assert_eq!(ck.process(intr).unwrap(), Verdict::Continue);
        assert_eq!(ck.stats().interrupts, 1);
    }

    #[test]
    fn trap_event_halts() {
        let words = [encode::ebreak()];
        let mut ck = Checker::new(vec![ref_with(&words)], false);
        let trap = WireItem::Plain {
            core: 0,
            event: difftest_event::TrapEvent {
                pc: Memory::RAM_BASE,
                code: 0,
                has_trap: 1,
                cycle: 5,
            }
            .into(),
        };
        assert_eq!(
            ck.process(trap).unwrap(),
            Verdict::Halt {
                core: 0,
                good: true,
                pc: Memory::RAM_BASE
            }
        );
    }

    #[test]
    fn revert_for_replay_restores_checkpoint() {
        let words = [
            encode::addi(Reg::A0, Reg::ZERO, 1),
            encode::addi(Reg::A0, Reg::A0, 1),
        ];
        let mut ck = Checker::new(vec![ref_with(&words)], true);
        let fused = FusedCommit {
            first_seq: 0,
            count: 2,
            final_pc: 0,
            token_first: 5,
            token_last: 6,
            int_writes: vec![(10, 2)],
            ..Default::default()
        };
        ck.process(WireItem::Fused { core: 0, fused }).unwrap();
        assert_eq!(ck.seq(0), 2);
        let (from, _to) = ck.revert_for_replay(0).expect("checkpoint exists");
        assert_eq!(from, 5);
        assert_eq!(ck.seq(0), 0);
    }
}
