//! Deterministic fault injection for the host↔accelerator link.
//!
//! The runners normally assume a perfect transport; real accelerator
//! links (PCIe DMA rings, network-attached emulators) drop, duplicate,
//! reorder, truncate, and corrupt transfers. [`FaultyLink`] sits between
//! the [`AccelUnit`](crate::AccelUnit) producer and the
//! [`SwUnit`](crate::SwUnit) consumer and perturbs the transfer stream
//! according to a seeded [`FaultPlan`], so every failure mode the
//! recovery machinery must survive can be reproduced bit-for-bit from a
//! single `u64` seed.
//!
//! Faults are detected downstream by the CRC32 frame trailer
//! ([`difftest_event::wire::verify_crc_frame`]) and the packed
//! transport's sequence numbers, surfacing as typed
//! [`CodecError`]s which the runners classify into [`LinkErrorKind`]s.

use difftest_event::wire::CodecError;

use crate::transport::Transfer;

/// One kind of link-level fault [`FaultyLink`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The transfer silently disappears.
    Drop,
    /// The transfer is delivered twice.
    Duplicate,
    /// The transfer is held back and delivered `reorder_depth` transfers
    /// late.
    Reorder,
    /// The payload loses its tail (delivered shorter than sent).
    Truncate,
    /// A single payload bit is flipped in flight.
    Corrupt,
}

/// Seeded schedule of link faults, expressed as independent per-mille
/// probabilities per transfer. At most one fault applies to any given
/// transfer; the per-mille fields are cumulative slices of a single
/// 0..1000 roll, so their sum must stay ≤ 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// RNG seed; equal seeds reproduce the exact fault schedule.
    pub seed: u64,
    /// Probability (‰) a transfer is dropped.
    pub drop_per_mille: u16,
    /// Probability (‰) a transfer is duplicated.
    pub duplicate_per_mille: u16,
    /// Probability (‰) a transfer is delayed behind later ones.
    pub reorder_per_mille: u16,
    /// Probability (‰) a transfer is truncated.
    pub truncate_per_mille: u16,
    /// Probability (‰) a single payload bit is flipped.
    pub corrupt_per_mille: u16,
    /// How many subsequent transfers overtake a reordered one. Depths
    /// beyond the receiver's reassembly window turn a reorder into an
    /// unrecoverable gap ([`CodecError::ReorderOverflow`]).
    pub reorder_depth: u32,
}

impl FaultPlan {
    /// A schedule that injects nothing (useful for overhead baselines).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            truncate_per_mille: 0,
            corrupt_per_mille: 0,
            reorder_depth: 4,
        }
    }

    /// A schedule giving every fault kind the same per-mille rate.
    pub fn uniform(seed: u64, per_mille: u16) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: per_mille,
            duplicate_per_mille: per_mille,
            reorder_per_mille: per_mille,
            truncate_per_mille: per_mille,
            corrupt_per_mille: per_mille,
            reorder_depth: 4,
        }
    }

    /// Sum of all per-mille rates (must stay ≤ 1000).
    pub fn total_per_mille(&self) -> u32 {
        self.drop_per_mille as u32
            + self.duplicate_per_mille as u32
            + self.reorder_per_mille as u32
            + self.truncate_per_mille as u32
            + self.corrupt_per_mille as u32
    }

    /// Whether this plan can inject any fault at all.
    pub fn is_clean(&self) -> bool {
        self.total_per_mille() == 0
    }
}

/// Counters of faults a [`FaultyLink`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transfers that crossed the link unharmed.
    pub delivered: u64,
    /// Transfers silently discarded.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Transfers delivered out of order.
    pub reordered: u64,
    /// Transfers delivered with their tail cut off.
    pub truncated: u64,
    /// Transfers delivered with a flipped bit.
    pub corrupted: u64,
}

impl FaultStats {
    /// Total faults of any kind injected.
    pub fn total_faults(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.truncated + self.corrupted
    }
}

/// SplitMix64: tiny, deterministic, and statistically adequate for a
/// fault schedule. Kept private so the schedule format can evolve.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A deterministic lossy link between producer and consumer.
///
/// Feed transfers through [`transmit`](Self::transmit); they come out
/// the other side possibly dropped, duplicated, delayed, truncated, or
/// corrupted, per the plan's seeded schedule. Call
/// [`flush`](Self::flush) at end-of-stream to release any transfers
/// still held back for reordering.
#[derive(Debug)]
pub struct FaultyLink {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Transfers held back for reordering: `(due_index, transfer)`.
    held: Vec<(u64, Transfer)>,
    /// Index of the next transfer offered to the link.
    index: u64,
    stats: FaultStats,
}

impl FaultyLink {
    /// Creates a link following `plan`'s schedule.
    ///
    /// # Panics
    ///
    /// Panics if the plan's per-mille rates sum above 1000.
    pub fn new(plan: FaultPlan) -> Self {
        assert!(
            plan.total_per_mille() <= 1000,
            "fault plan rates sum to {}‰ (> 1000‰)",
            plan.total_per_mille()
        );
        FaultyLink {
            rng: SplitMix64(plan.seed ^ 0xD1FF_7E57_0000_0001),
            plan,
            held: Vec::new(),
            index: 0,
            stats: FaultStats::default(),
        }
    }

    /// The schedule this link follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Rolls the schedule for this transfer: `None` = deliver clean.
    fn roll(&mut self) -> Option<FaultKind> {
        let total = self.plan.total_per_mille();
        if total == 0 {
            return None;
        }
        let r = self.rng.below(1000) as u32;
        let mut edge = self.plan.drop_per_mille as u32;
        if r < edge {
            return Some(FaultKind::Drop);
        }
        edge += self.plan.duplicate_per_mille as u32;
        if r < edge {
            return Some(FaultKind::Duplicate);
        }
        edge += self.plan.reorder_per_mille as u32;
        if r < edge {
            return Some(FaultKind::Reorder);
        }
        edge += self.plan.truncate_per_mille as u32;
        if r < edge {
            return Some(FaultKind::Truncate);
        }
        edge += self.plan.corrupt_per_mille as u32;
        if r < edge {
            return Some(FaultKind::Corrupt);
        }
        None
    }

    /// Releases held transfers whose due index has arrived.
    fn release_due(&mut self, out: &mut Vec<Transfer>) {
        let index = self.index;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= index {
                let (_, t) = self.held.remove(i);
                self.stats.delivered += 1;
                out.push(t);
            } else {
                i += 1;
            }
        }
    }

    /// Passes one transfer through the link, appending whatever emerges
    /// on the far side (zero, one, or two transfers — plus any earlier
    /// reordered transfers that become due).
    pub fn transmit(&mut self, mut t: Transfer, out: &mut Vec<Transfer>) {
        let fault = self.roll();
        self.index += 1;
        match fault {
            None => {
                self.stats.delivered += 1;
                out.push(t);
            }
            Some(FaultKind::Drop) => {
                self.stats.dropped += 1;
            }
            Some(FaultKind::Duplicate) => {
                // Both copies cross the link.
                self.stats.delivered += 2;
                self.stats.duplicated += 1;
                out.push(t.clone());
                out.push(t);
            }
            Some(FaultKind::Reorder) => {
                self.stats.reordered += 1;
                let due = self.index + self.plan.reorder_depth as u64;
                self.held.push((due, t));
            }
            Some(FaultKind::Truncate) => {
                self.stats.delivered += 1;
                self.stats.truncated += 1;
                if !t.bytes.is_empty() {
                    let keep = self.rng.below(t.bytes.len() as u64) as usize;
                    t.bytes.truncate(keep);
                }
                out.push(t);
            }
            Some(FaultKind::Corrupt) => {
                self.stats.delivered += 1;
                self.stats.corrupted += 1;
                if !t.bytes.is_empty() {
                    let bit = self.rng.below(t.bytes.len() as u64 * 8);
                    t.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                out.push(t);
            }
        }
        self.release_due(out);
    }

    /// Releases every transfer still held for reordering (end of
    /// stream). Held transfers are delivered in due order.
    pub fn flush(&mut self, out: &mut Vec<Transfer>) {
        self.held.sort_by_key(|(due, _)| *due);
        for (_, t) in self.held.drain(..) {
            self.stats.delivered += 1;
            out.push(t);
        }
    }

    /// Transfers currently held back for reordering.
    pub fn held_transfers(&self) -> usize {
        self.held.len()
    }
}

/// Classification of a link failure for [`RunOutcome::LinkError`]
/// reporting and per-kind counters.
///
/// [`RunOutcome::LinkError`]: crate::RunOutcome::LinkError
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkErrorKind {
    /// CRC trailer mismatch: payload corrupted in flight.
    Corrupt = 0,
    /// A sequence number older than the receive window (duplicate or
    /// replayed packet).
    Stale = 1,
    /// A sequence gap that never filled (packet loss / reorder beyond
    /// the reassembly window).
    Gap = 2,
    /// The transfer ended before its fixed layout was complete.
    Truncated = 3,
    /// Structurally invalid contents (bad discriminant, trailing
    /// bytes, …) that nonetheless passed the CRC — host-side logic
    /// error or adversarial input.
    Malformed = 4,
}

impl LinkErrorKind {
    /// Every kind, in counter-index order.
    pub const ALL: [LinkErrorKind; 5] = [
        LinkErrorKind::Corrupt,
        LinkErrorKind::Stale,
        LinkErrorKind::Gap,
        LinkErrorKind::Truncated,
        LinkErrorKind::Malformed,
    ];
    /// Maps a decode error onto the link-failure taxonomy.
    pub fn classify(err: &CodecError) -> Self {
        match err {
            CodecError::CrcMismatch { .. } => LinkErrorKind::Corrupt,
            CodecError::StaleSequence { .. } => LinkErrorKind::Stale,
            CodecError::ReorderOverflow { .. } => LinkErrorKind::Gap,
            CodecError::UnexpectedEnd { .. } => LinkErrorKind::Truncated,
            CodecError::BadKind(_) | CodecError::TrailingBytes(_) | CodecError::Malformed(_) => {
                LinkErrorKind::Malformed
            }
        }
    }

    /// Stable counter-key suffix (`link.<name>`).
    pub fn counter_name(&self) -> &'static str {
        match self {
            LinkErrorKind::Corrupt => "corrupt",
            LinkErrorKind::Stale => "stale",
            LinkErrorKind::Gap => "gap",
            LinkErrorKind::Truncated => "truncated",
            LinkErrorKind::Malformed => "malformed",
        }
    }
}

impl std::fmt::Display for LinkErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.counter_name())
    }
}

/// Receive-side link-health counters a runner accumulates: what was
/// detected, what recovery masked, and what the retransmissions cost.
/// Exported as `link.err.<kind>` / `link.recovered` /
/// `link.retransmits` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Decode failures detected, indexed by [`LinkErrorKind`].
    pub detected: [u64; 5],
    /// Stale (duplicate) transfers silently discarded.
    pub stale_dropped: u64,
    /// Detected failures masked by a successful retransmission.
    pub recovered: u64,
    /// Retransmission requests issued.
    pub retransmits: u64,
    /// Bytes re-sent across the link by retransmissions.
    pub retransmit_bytes: u64,
}

impl LinkStats {
    /// Records one detected failure of `kind`.
    pub fn note(&mut self, kind: LinkErrorKind) {
        self.detected[kind as usize] += 1;
    }

    /// Detected failures of `kind`.
    pub fn count(&self, kind: LinkErrorKind) -> u64 {
        self.detected[kind as usize]
    }

    /// Detected failures of every kind.
    pub fn total_detected(&self) -> u64 {
        self.detected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PooledBuf;

    fn transfer(tag: u8, len: usize) -> Transfer {
        Transfer {
            bytes: PooledBuf::detached(vec![tag; len]),
            core: 0,
            invokes: 1,
            items: 1,
        }
    }

    fn run_schedule(plan: FaultPlan, n: usize) -> (Vec<Transfer>, FaultStats) {
        let mut link = FaultyLink::new(plan);
        let mut out = Vec::new();
        for i in 0..n {
            link.transmit(transfer(i as u8, 32), &mut out);
        }
        link.flush(&mut out);
        (out, link.stats())
    }

    #[test]
    fn clean_plan_is_identity() {
        let (out, stats) = run_schedule(FaultPlan::clean(1), 100);
        assert_eq!(out.len(), 100);
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.total_faults(), 0);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.bytes[0], i as u8);
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        let plan = FaultPlan::uniform(42, 50);
        let (a, sa) = run_schedule(plan, 500);
        let (b, sb) = run_schedule(plan, 500);
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(&*x.bytes, &*y.bytes);
        }
        // A different seed produces a different schedule.
        let (_, sc) = run_schedule(FaultPlan::uniform(43, 50), 500);
        assert_ne!(sa, sc);
    }

    #[test]
    fn faults_actually_inject() {
        let (out, stats) = run_schedule(FaultPlan::uniform(7, 40), 2000);
        assert!(stats.dropped > 0, "{stats:?}");
        assert!(stats.duplicated > 0, "{stats:?}");
        assert!(stats.reordered > 0, "{stats:?}");
        assert!(stats.truncated > 0, "{stats:?}");
        assert!(stats.corrupted > 0, "{stats:?}");
        // Conservation: delivered = sent - dropped + duplicated, and
        // everything held for reorder was flushed.
        assert_eq!(out.len() as u64, 2000 - stats.dropped + stats.duplicated);
        assert_eq!(stats.delivered, out.len() as u64);
    }

    #[test]
    fn reorder_delays_by_depth() {
        let mut plan = FaultPlan::clean(9);
        plan.reorder_per_mille = 1000;
        plan.reorder_depth = 2;
        let mut link = FaultyLink::new(plan);
        let mut out = Vec::new();
        // Every transfer is held; none can emerge until its due index.
        link.transmit(transfer(0, 8), &mut out);
        assert!(out.is_empty());
        link.transmit(transfer(1, 8), &mut out);
        link.transmit(transfer(2, 8), &mut out);
        // Transfer 0 was due at index 1 + 2 = 3 — emitted now.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bytes[0], 0);
        link.flush(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "fault plan rates")]
    fn oversubscribed_plan_rejected() {
        FaultyLink::new(FaultPlan::uniform(0, 250));
    }

    #[test]
    fn classification_covers_codec_errors() {
        use CodecError as E;
        assert_eq!(
            LinkErrorKind::classify(&E::CrcMismatch {
                expected: 1,
                got: 2
            }),
            LinkErrorKind::Corrupt
        );
        assert_eq!(
            LinkErrorKind::classify(&E::StaleSequence {
                expected: 5,
                got: 2
            }),
            LinkErrorKind::Stale
        );
        assert_eq!(
            LinkErrorKind::classify(&E::ReorderOverflow { missing: 3 }),
            LinkErrorKind::Gap
        );
        assert_eq!(
            LinkErrorKind::classify(&E::UnexpectedEnd {
                needed: 4,
                available: 0
            }),
            LinkErrorKind::Truncated
        );
        assert_eq!(
            LinkErrorKind::classify(&E::BadKind(99)),
            LinkErrorKind::Malformed
        );
    }
}
