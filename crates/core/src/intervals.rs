//! Time-parallel interval verification over REF checkpoints: the fifth
//! runner.
//!
//! The other parallel runners ([`crate::threaded`], [`crate::sharded`],
//! [`crate::socket`]) parallelize *across cores* — on a single-core DUT
//! they all collapse to one producer and one checking thread, and the
//! checker (unpack → order-restore → REF step → compare) is the
//! bottleneck. This module parallelizes *across time* instead
//! (FERIVer-style):
//!
//! 1. **Recording pass** — one thread runs the DUT and, per core, packs
//!    the event stream through a per-interval [`AccelUnit`] while
//!    *fast-forwarding* a recording [`RefModel`] over the same events:
//!    plain commits step the REF, MMIO skip-commits arm
//!    [`RefModel::skip_next`] with the DUT's value first (the only
//!    non-deterministic input), and `ArchEvent`s replay interrupt/
//!    exception boundaries. Fast-forwarding performs no comparisons and
//!    runs on the basic-block compiled path, so it is much cheaper than
//!    checking. Every `interval_insns` retired instructions the stream
//!    is cut at a cycle boundary: the acceleration unit is flushed, the
//!    REF is snapshotted into a byte image
//!    ([`difftest_ref::checkpoint::save`]), and the (checkpoint,
//!    event-slice) pair is dispatched as an [`IntervalJob`] — full
//!    snapshots for now; a dirty-page delta against the previous
//!    boundary is future work.
//! 2. **Worker pool** — `workers` threads drain the job queue. Each job
//!    seeds a fresh single-core checker from its checkpoint
//!    ([`crate::Checker::resume_single`] at the interval's start
//!    sequence) and verifies its slice independently through the shared
//!    [`Consumer`](crate::consume::Consumer) pipeline. Intervals are
//!    self-contained: packet sequence numbers, differencing baselines
//!    and fusion windows all restart at each cut, and fused records
//!    carry absolute first-sequence tags, so a resumed checker lines up
//!    without any cross-interval state.
//! 3. **Aggregation** — worker verdicts merge under the sharded
//!    coordinator's deterministic first-failure rule: the mismatch with
//!    the lowest `(seq, core)` wins, link errors rank by `(core,
//!    interval)`, and a genuine mismatch outranks a link error.
//!
//! The report measures per-thread busy time (CPU clocks, so blocked
//! queue waits cost nothing) and exposes the schedule's critical path
//! as [`IntervalsReport::span_s`]: recording pass + busiest worker,
//! the wall clock the run converges to once every thread has its own
//! core — the honest speedup figure on an oversubscribed bench host.
//!
//! Correctness notes:
//!
//! - The recording REF retires its *own* computed values (only NDE skip
//!   values come from the DUT), so checkpoints taken after a DUT bug
//!   remain REF-correct: the worker holding the bug's interval reports
//!   the serial checker's divergence — same core and failing register,
//!   with the sequence pinned to within one squash fusion window, since
//!   re-cut windows only expose the *last* write to a register and may
//!   surface a squashed intermediate write a few commits away — and any
//!   later worker's divergence carries a strictly higher sequence and
//!   loses the aggregation (proptested in
//!   `tests/intervals_equivalence.rs`).
//! - Jobs are dispatched in increasing per-core sequence order, and a
//!   stop request flushes the partial tail intervals before closing the
//!   queue, so everything up to the stopping point is verified.
//! - Under an injected fault plan each `(core, interval)` gets an
//!   independent deterministic link, so runs replay from their seed;
//!   because the per-interval re-packing shifts packet boundaries, the
//!   *typed* fault outcome can legitimately differ from the engine's
//!   (see `tests/intervals_equivalence.rs` for the weaker contract).
//
// Seam rule: runner modules build on `session`/`link`/`consume` only —
// never on another runner's internals (enforced by `make ci`'s grep).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel;
use difftest_dut::{BugSpec, DutConfig};
use difftest_event::{commit_flags, Event};
use difftest_isa::trap::Interrupt;
use difftest_ref::{checkpoint, RefModel};
use difftest_stats::{
    export_to_env, FlightRecorder, FlightSnapshot, Metrics, Phase, PhaseTimer, SpanBuf,
    PID_CONSUMER, PID_PRODUCER,
};
use difftest_workload::Workload;

use crate::checker::{Mismatch, Verdict};
use crate::consume::{NoCharge, Step};
use crate::fault::{FaultPlan, FaultStats, LinkErrorKind, LinkStats};
use crate::link::{FusionWatch, QueueSink, SendLink};
use crate::pool::PoolStats;
use crate::session::{DiffConfig, RunCommon, RunOutcome, Session};
use crate::transport::{AccelUnit, Transfer};

/// Per-thread busy-time meter for the span accounting.
///
/// Prefers the thread's cumulative CPU clock (`/proc/thread-self/stat`
/// utime+stime on Linux; blocked channel waits cost nothing there, so a
/// worker's reading is exactly its verification work), falling back to
/// monotonic wall time where the proc file is unavailable — correct
/// when each thread has a core to itself, pessimistic when the host is
/// oversubscribed.
struct ThreadCpuTimer {
    cpu0: Option<f64>,
    wall0: Instant,
}

impl ThreadCpuTimer {
    fn start() -> Self {
        ThreadCpuTimer {
            cpu0: thread_cpu_s(),
            wall0: Instant::now(),
        }
    }

    fn elapsed_s(&self) -> f64 {
        match (self.cpu0, thread_cpu_s()) {
            (Some(t0), Some(t1)) => (t1 - t0).max(0.0),
            _ => self.wall0.elapsed().as_secs_f64(),
        }
    }
}

/// Cumulative CPU seconds (user + system) consumed by the calling
/// thread. utime/stime are fields 14/15 of the stat line, counted in
/// USER_HZ ticks — fixed at 100 by the userspace ABI.
fn thread_cpu_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // The comm field may contain spaces; parse after its closing paren.
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut fields = rest.split_whitespace().skip(11);
    let utime: u64 = fields.next()?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Tuning knobs of the interval runner.
#[derive(Debug, Clone, Copy)]
pub struct IntervalTuning {
    /// Target interval length in retired instructions per core. The cut
    /// happens at the first cycle boundary at or past this count, so
    /// actual intervals run slightly long on wide cores. Clamped to 1.
    pub interval_insns: u64,
    /// Verification worker threads draining the job queue. Clamped to 1.
    pub workers: usize,
}

impl Default for IntervalTuning {
    fn default() -> Self {
        IntervalTuning {
            interval_insns: 8_192,
            workers: 4,
        }
    }
}

/// One dispatched unit of verification work: a REF checkpoint at the
/// interval's start plus the packed event slice covering it.
struct IntervalJob {
    core: u8,
    index: u64,
    start_seq: u64,
    commits: u64,
    checkpoint: Vec<u8>,
    transfers: Vec<Transfer>,
    /// Packets produced for this interval, pre-fault (tail-loss bound).
    produced: u32,
}

/// What one verified interval hands back to the coordinator.
struct JobOutcome {
    core: u8,
    index: u64,
    commits: u64,
    items: u64,
    checked: u64,
    verdict: Option<Verdict>,
    mismatch: Option<Mismatch>,
    link_error: Option<(LinkErrorKind, u32, u8)>,
    link: LinkStats,
    metrics: Metrics,
    flight: FlightSnapshot,
}

/// Result of an interval run: the shared [`RunCommon`] core plus the
/// interval/checkpoint accounting.
#[derive(Debug, Clone)]
pub struct IntervalsReport {
    /// The report core shared by every runner. The mismatch is the
    /// winning one across intervals (first-failure semantics); link
    /// counters aggregate all workers.
    pub common: RunCommon,
    /// Host wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Aggregate items per wall-clock second across workers.
    pub items_per_sec: f64,
    /// Intervals dispatched (across all cores).
    pub intervals: u64,
    /// Total bytes of checkpoint images shipped to workers.
    pub checkpoint_bytes: u64,
    /// Instructions re-verified by workers (equals
    /// [`RunCommon::instructions`] on a clean run: every commit is
    /// checked exactly once).
    pub instructions_checked: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// High-water mark of simultaneously busy workers.
    pub max_workers_busy: u64,
    /// Busy seconds of the recording pass (producer thread): DUT tick +
    /// pack + REF fast-forward + checkpoint serialization. Thread CPU
    /// time where available (see [`ThreadCpuTimer`]).
    pub recording_cpu_s: f64,
    /// Busy seconds of the busiest verification worker.
    pub worker_cpu_max_s: f64,
    /// Total busy seconds across all verification workers — the serial
    /// checking work the pool divided up.
    pub worker_cpu_total_s: f64,
    /// Aggregate buffer-pool statistics across per-interval producers.
    pub pool: PoolStats,
}

impl Deref for IntervalsReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        &self.common
    }
}

impl DerefMut for IntervalsReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        &mut self.common
    }
}

impl IntervalsReport {
    /// Exports the run as [`difftest_stats::Counters`] for the shared
    /// table-rendering toolkit.
    pub fn counters(&self) -> difftest_stats::Counters {
        let mut c = difftest_stats::Counters::new();
        c.set("hw.cycles", self.cycles);
        c.set("hw.instructions", self.instructions);
        c.set("sw.items_checked", self.items);
        c.set("host.items_per_sec", self.items_per_sec as u64);
        c.set("host.cycles_per_sec", self.cycles_per_sec as u64);
        c.set("interval.count", self.intervals);
        c.set("interval.checkpoint_bytes", self.checkpoint_bytes);
        c.set("interval.instructions_checked", self.instructions_checked);
        c.set("interval.workers", self.workers as u64);
        c.set("interval.workers_busy.max", self.max_workers_busy);
        c.set(
            "interval.recording_cpu_us",
            (self.recording_cpu_s * 1e6) as u64,
        );
        c.set(
            "interval.worker_cpu_max_us",
            (self.worker_cpu_max_s * 1e6) as u64,
        );
        c.set(
            "interval.worker_cpu_total_us",
            (self.worker_cpu_total_s * 1e6) as u64,
        );
        for kind in LinkErrorKind::ALL {
            c.set(
                format!("link.err.{}", kind.counter_name()),
                self.link.count(kind),
            );
        }
        c.set("link.stale_dropped", self.link.stale_dropped);
        c
    }

    /// Critical path of the interval schedule in seconds: the recording
    /// pass plus the busiest worker, i.e. the wall clock this run
    /// converges to once every thread has a core of its own. On an
    /// oversubscribed host (the extreme being a single-core container,
    /// where [`wall_s`](Self::wall_s) degenerates to the *sum* of all
    /// threads' work) this is the honest measure of the time-parallel
    /// win; it is still conservative, since it ignores that workers
    /// overlap the producer. Compare against a serial checker's wall
    /// clock — see the `intervals/batch/clean` bench headline.
    pub fn span_s(&self) -> f64 {
        self.recording_cpu_s + self.worker_cpu_max_s
    }
}

/// Advances the recording REF over one monitored event, mirroring the
/// checker's NDE synchronization without any comparison: skip-commits
/// arm the DUT's value, interrupts are raised at the same boundary,
/// exceptions step into the trap. Returns `true` when the event was an
/// instruction commit (the interval length unit — commit order tags and
/// checker sequence numbers count exactly these).
fn fast_forward(refm: &mut RefModel, ev: &Event) -> bool {
    match ev {
        Event::InstrCommit(c) => {
            if c.flags & commit_flags::SKIP != 0 && c.flags & commit_flags::LOAD != 0 {
                refm.skip_next(c.wdata);
            }
            let _ = refm.step();
            true
        }
        Event::ArchEvent(a) => {
            if a.is_interrupt != 0 {
                if let Some(intr) = Interrupt::from_code(a.cause & 0x3ff) {
                    refm.raise_interrupt(intr);
                }
                // An unknown code is a monitor fault; the worker holding
                // this slice reports it as a mismatch.
            } else {
                // Exception: the REF traps on its own at this step.
                let _ = refm.step();
            }
            false
        }
        // Everything else is compare-only: stores, writebacks, cache and
        // TLB traffic never drive the REF. TrapEvent ends the stream and
        // is verified (not applied) by the final interval's worker.
        _ => false,
    }
}

/// Per-core recording state: the fast-forwarded REF, the current
/// interval's acceleration unit + link, and the checkpoint image taken
/// at the interval's start.
struct CoreRecorder {
    core: u8,
    refm: RefModel,
    accel: AccelUnit,
    link: SendLink<QueueSink>,
    fusion: FusionWatch,
    /// Checkpoint image captured at the current interval's start.
    ckpt: Vec<u8>,
    index: u64,
    start_seq: u64,
    commits_total: u64,
    commits_in_interval: u64,
    /// Recording-track span buffer: the short-lived per-interval link
    /// sinks are absorbed here at every cut.
    spans: SpanBuf,
}

/// Producer-side accumulators folded at every cut (per-interval accels
/// and links are replaced, so their stats must be banked first).
#[derive(Default)]
struct Folds {
    pool: PoolStats,
    fault: FaultStats,
    checkpoint_bytes: u64,
}

impl Folds {
    fn bank(&mut self, accel: &AccelUnit, link: &SendLink<QueueSink>) {
        let p = accel.pool_stats();
        self.pool.hits += p.hits;
        self.pool.misses += p.misses;
        self.pool.returns += p.returns;
        self.pool.discards += p.discards;
        if let Some(f) = link.fault_stats() {
            self.fault.delivered += f.delivered;
            self.fault.dropped += f.dropped;
            self.fault.duplicated += f.duplicated;
            self.fault.reordered += f.reordered;
            self.fault.truncated += f.truncated;
            self.fault.corrupted += f.corrupted;
        }
    }
}

/// Cuts `r`'s current interval: flushes the acceleration unit, banks the
/// per-interval stats, snapshots the REF as the *next* interval's seed,
/// and dispatches the job. Returns `false` when the job queue is gone
/// (every worker died) — the producer stops.
#[allow(clippy::too_many_arguments)]
fn cut_interval(
    r: &mut CoreRecorder,
    session: &Session,
    jobs: &channel::Sender<IntervalJob>,
    transfers: &mut Vec<Transfer>,
    folds: &mut Folds,
    timer: &mut PhaseTimer,
    rec: &mut FlightRecorder,
    cycle: u64,
) -> bool {
    let t0 = timer.start();
    r.accel.flush(transfers);
    timer.stop(Phase::Pack, t0);
    let t0 = timer.start();
    r.link.feed(transfers, rec, cycle);
    // Release transfers the fault model still holds for reordering:
    // per-interval links never carry holds across a cut.
    r.link.finish();
    timer.stop(Phase::Transport, t0);

    let produced = r.link.produced();
    let slice = std::mem::take(&mut r.link.sink_mut().queue);
    let commits = r.commits_in_interval;
    if slice.is_empty() && commits == 0 && produced == 0 {
        // Nothing happened since the last boundary; keep the current
        // interval open instead of dispatching an empty job.
        return true;
    }
    folds.bank(&r.accel, &r.link);

    // Boundary housekeeping on the recording REF: the compensation log
    // accumulated inside the finished interval can never be replayed
    // again, so take a journal checkpoint and prune everything behind it
    // (`prune(0)` — the keep-nothing path), keeping recording memory
    // bounded. Then snapshot the byte image seeding the next interval.
    let t0 = timer.start();
    r.refm.checkpoint();
    r.refm.prune_checkpoints(0);
    let next_ckpt = checkpoint::save(&r.refm);
    timer.stop(Phase::Monitor, t0);

    let job = IntervalJob {
        core: r.core,
        index: r.index,
        start_seq: r.start_seq,
        commits,
        checkpoint: std::mem::replace(&mut r.ckpt, next_ckpt),
        transfers: slice,
        produced,
    };
    folds.checkpoint_bytes += job.checkpoint.len() as u64;
    r.index += 1;
    r.start_seq = r.commits_total;
    r.commits_in_interval = 0;
    r.spans.absorb(r.link.take_spans());
    r.accel = session.accel_for_core(r.core);
    r.link = session
        .send_link_for_interval(r.core, r.index, QueueSink::default())
        .with_spans(session.span_sink(
            PID_PRODUCER,
            u32::from(r.core),
            "producer",
            &format!("record-core{}", r.core),
        ));
    r.fusion = FusionWatch::default();
    jobs.send(job).is_ok()
}

/// Runs a co-simulation with time-parallel interval verification: a
/// recording pass snapshots the REF every
/// [`IntervalTuning::interval_insns`] retired instructions and a worker
/// pool re-verifies the intervals independently. The signature mirrors
/// [`crate::run_sharded`]; the verdict is equivalent to the serial
/// runners' (proptested in `tests/intervals_equivalence.rs`).
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour.
pub fn run_intervals(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> IntervalsReport {
    run_intervals_tuned(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
        IntervalTuning::default(),
    )
}

/// [`run_intervals`] with an optional fault-injecting link. Each
/// `(core, interval)` slice gets an independent deterministic
/// [`crate::fault::FaultyLink`] derived from the plan's seed, so runs
/// replay exactly while the slices fail differently.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_intervals_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> IntervalsReport {
    run_intervals_tuned(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
        IntervalTuning::default(),
    )
}

/// The fully tunable entry point behind [`run_intervals`] /
/// [`run_intervals_faulty`].
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
#[allow(clippy::too_many_arguments)]
pub fn run_intervals_tuned(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
    tuning: IntervalTuning,
) -> IntervalsReport {
    run_intervals_session(
        Session::new(
            dut_cfg,
            config,
            workload,
            bugs,
            max_cycles,
            queue_depth,
            fault,
        ),
        tuning,
    )
}

/// [`run_intervals_tuned`] on a pre-built [`Session`] — the entry point
/// tests use to inject a [`Tracer`](difftest_stats::Tracer) (via
/// [`Session::with_tracer`]) without touching process environment.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_intervals_session(session: Session, tuning: IntervalTuning) -> IntervalsReport {
    session.require_nonblock("intervals");
    let max_cycles = session.max_cycles();
    let cores = session.cores();
    let interval_insns = tuning.interval_insns.max(1);
    let worker_count = tuning.workers.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let busy = Arc::new(AtomicU64::new(0));
    let busy_max = Arc::new(AtomicU64::new(0));
    // Bounded job queue: at most `queue_depth` checkpoints + slices in
    // flight — the sending-queue model applied to whole intervals.
    let (jobs_tx, jobs_rx) = channel::bounded::<IntervalJob>(session.queue_depth());

    let start = Instant::now();

    let producer = {
        let session = session.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let cpu = ThreadCpuTimer::start();
            let mut dut = session.dut();
            let mut recs: Vec<CoreRecorder> = (0..cores)
                .map(|k| {
                    let mut refm = RefModel::new(session.image().clone());
                    // Fast-forwarding is the hot loop of the recording
                    // pass: run it on the basic-block compiled path, with
                    // the journal on so interval boundaries exercise the
                    // checkpoint + prune path they will later rely on for
                    // dirty-page deltas.
                    refm.set_block_mode(true);
                    refm.set_journal_enabled(true);
                    CoreRecorder {
                        core: k as u8,
                        ckpt: checkpoint::save(&refm),
                        refm,
                        accel: session.accel_for_core(k as u8),
                        link: session
                            .send_link_for_interval(k as u8, 0, QueueSink::default())
                            .with_spans(session.span_sink(
                                PID_PRODUCER,
                                k as u32,
                                "producer",
                                &format!("record-core{k}"),
                            )),
                        fusion: FusionWatch::default(),
                        index: 0,
                        start_seq: 0,
                        commits_total: 0,
                        commits_in_interval: 0,
                        spans: SpanBuf::default(),
                    }
                })
                .collect();
            let mut folds = Folds::default();
            let mut events = Vec::new();
            let mut transfers = Vec::new();
            let mut timer = PhaseTimer::monotonic();
            let mut rec = FlightRecorder::default();
            let mut alive = true;
            'run: while dut.halted().is_none() && dut.cycles() < max_cycles {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let t0 = timer.start();
                events.clear();
                dut.tick_into(&mut events);
                timer.stop(Phase::Tick, t0);
                for r in recs.iter_mut() {
                    let t0 = timer.start();
                    for m in events.iter().filter(|m| m.core == r.core) {
                        if fast_forward(&mut r.refm, &m.event) {
                            r.commits_total += 1;
                            r.commits_in_interval += 1;
                        }
                    }
                    timer.stop(Phase::Monitor, t0);
                    let t0 = timer.start();
                    r.accel.push_cycle_for_route_core(&events, &mut transfers);
                    timer.stop(Phase::Pack, t0);
                    r.fusion.observe(
                        &r.accel,
                        !transfers.is_empty(),
                        r.core,
                        dut.cycles(),
                        &mut rec,
                    );
                    let t0 = timer.start();
                    r.link.feed(&mut transfers, &mut rec, dut.cycles());
                    timer.stop(Phase::Transport, t0);
                    if r.commits_in_interval >= interval_insns
                        && !cut_interval(
                            r,
                            &session,
                            &jobs_tx,
                            &mut transfers,
                            &mut folds,
                            &mut timer,
                            &mut rec,
                            dut.cycles(),
                        )
                    {
                        alive = false;
                        break 'run;
                    }
                }
            }
            if alive {
                // Flush the partial tails — on a halt they hold the trap
                // event; on a stop request they complete the verified
                // prefix up to the stopping point.
                for r in recs.iter_mut() {
                    if !cut_interval(
                        r,
                        &session,
                        &jobs_tx,
                        &mut transfers,
                        &mut folds,
                        &mut timer,
                        &mut rec,
                        dut.cycles(),
                    ) {
                        break;
                    }
                }
            }
            drop(jobs_tx); // closes the queue: end of work
            let fault_stats = session.fault_plan().is_some().then_some(folds.fault);
            let spans: Vec<SpanBuf> = recs
                .into_iter()
                .map(|mut r| {
                    // The final cut left a fresh (possibly idle) link
                    // behind; fold whatever it recorded too.
                    let tail = r.link.take_spans();
                    r.spans.absorb(tail);
                    r.spans
                })
                .collect();
            (
                dut.cycles(),
                dut.total_commits(),
                folds.pool,
                folds.checkpoint_bytes,
                fault_stats,
                timer.times(),
                rec.snapshot(),
                cpu.elapsed_s(),
                spans,
            )
        })
    };

    let workers: Vec<thread::JoinHandle<(Vec<JobOutcome>, f64, SpanBuf)>> = (0..worker_count)
        .map(|w| {
            let session = session.clone();
            let stop = Arc::clone(&stop);
            let jobs = jobs_rx.clone();
            let busy = Arc::clone(&busy);
            let busy_max = Arc::clone(&busy_max);
            thread::spawn(move || {
                let cpu = ThreadCpuTimer::start();
                let mut outs = Vec::new();
                // This worker's track: one "interval" span per job
                // (tagged by the interval index), pool-occupancy counter
                // samples, and the per-job consumers' unpack/check
                // spans, all folded into one buffer.
                let mut sink =
                    session.span_sink(PID_CONSUMER, w as u32, "consumer", &format!("worker-{w}"));
                let mut track = SpanBuf::default();
                while let Ok(job) = jobs.recv() {
                    let now_busy = busy.fetch_add(1, Ordering::AcqRel) + 1;
                    busy_max.fetch_max(now_busy, Ordering::AcqRel);
                    let s0 = sink.start();
                    if sink.enabled() {
                        sink.counter("interval.workers_busy", now_busy);
                    }
                    let refm = match checkpoint::restore(&job.checkpoint) {
                        Ok(m) => m,
                        // The image never left this process; failure here
                        // is a checkpoint-codec bug, not a link fault.
                        Err(e) => unreachable!("in-process checkpoint failed to restore: {e}"),
                    };
                    let mut consumer = session
                        .consumer_for_interval(job.core, refm, job.start_seq)
                        .with_spans(session.span_sink(
                            PID_CONSUMER,
                            w as u32,
                            "consumer",
                            &format!("worker-{w}"),
                        ));
                    let mut stopped = false;
                    for t in &job.transfers {
                        if consumer.ingest(t, 0, &mut NoCharge) == Step::Stop {
                            // Decided streams stop the recording pass;
                            // already-dispatched intervals still complete
                            // so the aggregation stays deterministic.
                            stop.store(true, Ordering::Release);
                            stopped = true;
                            break;
                        }
                    }
                    if !stopped {
                        // The slice is complete: a packet still awaited
                        // was lost in flight.
                        consumer.finish_stream(Some(job.produced), 0, &mut NoCharge);
                        if consumer.stopped() {
                            stop.store(true, Ordering::Release);
                        }
                    }
                    let checked = consumer.checker().seq(job.core) - job.start_seq;
                    let out = consumer.finish();
                    sink.end("interval", s0, job.index);
                    track.absorb(out.spans);
                    let still_busy = busy.fetch_sub(1, Ordering::AcqRel) - 1;
                    if sink.enabled() {
                        sink.counter("interval.workers_busy", still_busy);
                    }
                    outs.push(JobOutcome {
                        core: job.core,
                        index: job.index,
                        commits: job.commits,
                        items: out.items,
                        checked,
                        verdict: out.verdict,
                        mismatch: out.mismatch,
                        link_error: out.link_error,
                        link: out.link,
                        metrics: out.metrics,
                        flight: out.flight,
                    });
                }
                track.absorb(sink.into_buf());
                (outs, cpu.elapsed_s(), track)
            })
        })
        .collect();
    // The workers hold their own receiver clones; dropping ours lets a
    // producer `send` fail fast (instead of blocking forever) should the
    // whole pool die.
    drop(jobs_rx);

    let (
        cycles,
        instructions,
        pool,
        checkpoint_bytes,
        fault_stats,
        producer_times,
        producer_flight,
        recording_cpu_s,
        recording_spans,
    ) = match producer.join() {
        Ok(v) => v,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut worker_spans: Vec<SpanBuf> = Vec::new();
    let mut worker_cpu_max_s = 0.0f64;
    let mut worker_cpu_total_s = 0.0f64;
    for w in workers {
        match w.join() {
            Ok((mut o, cpu_s, spans)) => {
                outcomes.append(&mut o);
                worker_spans.push(spans);
                worker_cpu_max_s = worker_cpu_max_s.max(cpu_s);
                worker_cpu_total_s += cpu_s;
            }
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    outcomes.sort_by_key(|o| (o.core, o.index));

    // First-failure semantics across intervals: the lowest instruction
    // count wins, core id breaks ties deterministically (the sharded
    // coordinator's rule). A genuine mismatch outranks a link error (the
    // stream prefix it was found on was intact); link errors rank by
    // (core, interval).
    let mismatch = outcomes
        .iter()
        .filter_map(|o| o.mismatch.clone())
        .min_by_key(|m| (m.seq, m.core));
    let link_error = outcomes.iter().filter_map(|o| o.link_error).next();
    let verdict = outcomes.iter().filter_map(|o| o.verdict).next();
    let link = outcomes.iter().fold(LinkStats::default(), |mut a, o| {
        for kind in LinkErrorKind::ALL {
            a.detected[kind as usize] += o.link.count(kind);
        }
        a.stale_dropped += o.link.stale_dropped;
        a
    });

    let outcome = if mismatch.is_some() {
        RunOutcome::Mismatch
    } else if let Some((kind, seq, core)) = link_error {
        RunOutcome::LinkError { kind, seq, core }
    } else {
        match verdict {
            Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
            Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
            _ => RunOutcome::MaxCycles,
        }
    };

    let items: u64 = outcomes.iter().map(|o| o.items).sum();
    let instructions_checked: u64 = outcomes.iter().map(|o| o.checked).sum();
    let intervals = outcomes.len() as u64;
    let max_workers_busy = busy_max.load(Ordering::Acquire);

    // Deterministic aggregation: producer phases first, then every
    // interval's registry in (core, interval) order (outcomes are
    // already sorted), so the merged metrics are independent of worker
    // scheduling.
    let mut metrics = Metrics::new();
    metrics.phases.merge(&producer_times);
    let h_len = metrics.register_histogram("interval.len");
    for o in &outcomes {
        metrics.record(h_len, o.commits);
        metrics.merge(&o.metrics);
    }
    metrics.counters.set("hw.cycles", cycles);
    metrics.counters.set("hw.instructions", instructions);
    metrics.counters.set("interval.count", intervals);
    metrics
        .counters
        .set("interval.checkpoint_bytes", checkpoint_bytes);
    metrics
        .counters
        .set("interval.instructions_checked", instructions_checked);
    metrics
        .counters
        .set("interval.workers", worker_count as u64);
    metrics.set_gauge("interval.workers_busy.max", max_workers_busy);
    // Busy-time accounting in µs: recording pass, busiest worker, and
    // the total checking work the pool divided up. recording + max is
    // the schedule's critical path (span) — see
    // [`IntervalsReport::span_s`].
    metrics
        .counters
        .set("interval.recording_cpu_us", (recording_cpu_s * 1e6) as u64);
    metrics.counters.set(
        "interval.worker_cpu_max_us",
        (worker_cpu_max_s * 1e6) as u64,
    );
    metrics.counters.set(
        "interval.worker_cpu_total_us",
        (worker_cpu_total_s * 1e6) as u64,
    );
    // Recording tracks in core order, then worker tracks in spawn order
    // (workers joined in spawn order), so the merged trace layout is
    // schedule-independent even though span timing is not.
    let bufs: Vec<SpanBuf> = recording_spans
        .into_iter()
        .chain(worker_spans)
        .filter(|b| !b.is_empty())
        .collect();
    crate::session::export_trace(session.tracer(), &bufs, &mut metrics);

    // Attach producer context plus the failing interval's view; the
    // interval whose verdict decided the outcome wins.
    let flight = match outcome {
        RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
            let mut snap = producer_flight;
            let failing = outcomes
                .iter()
                .find(|o| o.mismatch.is_some() && o.mismatch == mismatch)
                .or_else(|| {
                    outcomes
                        .iter()
                        .find(|o| o.link_error.is_some() && o.link_error == link_error)
                })
                .or_else(|| {
                    outcomes
                        .iter()
                        .find(|o| o.mismatch.is_some() || o.link_error.is_some())
                });
            if let Some(o) = failing {
                snap.append(&o.flight);
            }
            Some(snap)
        }
        _ => None,
    };
    if let Err(e) = export_to_env("intervals", &metrics, flight.as_ref()) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }

    IntervalsReport {
        common: RunCommon {
            outcome,
            mismatch,
            cycles,
            instructions,
            items,
            link,
            fault: fault_stats,
            metrics,
            flight,
        },
        wall_s,
        cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
        items_per_sec: items as f64 / wall_s.max(1e-9),
        intervals,
        checkpoint_bytes,
        instructions_checked,
        workers: worker_count,
        max_workers_busy,
        recording_cpu_s,
        worker_cpu_max_s,
        worker_cpu_total_s,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_dut::BugKind;

    fn tuned(insns: u64, workers: usize) -> IntervalTuning {
        IntervalTuning {
            interval_insns: insns,
            workers,
        }
    }

    #[test]
    fn intervals_run_reaches_good_trap() {
        let w = Workload::microbench().seed(2).iterations(50).build();
        let r = run_intervals_tuned(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
            None,
            tuned(64, 2),
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert!(r.intervals > 1, "short intervals must fan out");
        assert!(r.items > 0);
        assert!(r.checkpoint_bytes > 0);
        assert_eq!(
            r.instructions_checked, r.instructions,
            "every commit verified exactly once"
        );
    }

    #[test]
    fn intervals_run_detects_bugs() {
        let w = Workload::linux_boot().seed(2).iterations(300).build();
        let r = run_intervals_tuned(
            DutConfig::xiangshan_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
            None,
            tuned(256, 3),
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    fn single_giant_interval_degenerates_to_serial() {
        let w = Workload::microbench().seed(7).iterations(30).build();
        let r = run_intervals_tuned(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
            None,
            tuned(u64::MAX, 2),
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert_eq!(r.intervals, 1, "one interval covers the whole run");
        assert_eq!(r.max_workers_busy, 1);
    }

    #[test]
    fn dual_core_good_trap() {
        let mut cfg = DutConfig::xiangshan_minimal();
        cfg.cores = 2;
        let w = Workload::microbench().seed(5).iterations(40).build();
        let r = run_intervals_tuned(
            cfg,
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
            None,
            tuned(128, 3),
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert_eq!(r.instructions_checked, r.instructions);
    }

    #[test]
    #[should_panic(expected = "non-blocking")]
    fn intervals_run_rejects_blocking_configs() {
        let w = Workload::microbench().seed(2).iterations(5).build();
        let _ = run_intervals(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
        );
    }

    #[test]
    fn counters_export_interval_stats() {
        let w = Workload::microbench().seed(2).iterations(40).build();
        let r = run_intervals_tuned(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
            None,
            tuned(64, 2),
        );
        let c = r.counters();
        assert_eq!(c.get("interval.count"), r.intervals);
        assert_eq!(c.get("interval.checkpoint_bytes"), r.checkpoint_bytes);
        assert!(r.max_workers_busy >= 1 && r.max_workers_busy <= 2);
        assert_eq!(r.metrics.counters.get("interval.count"), r.intervals);
        assert!(
            r.metrics
                .histogram("interval.len")
                .is_some_and(|h| h.count() == r.intervals),
            "interval-length histogram records one entry per interval"
        );
    }

    #[test]
    fn span_accounting_is_consistent() {
        let w = Workload::microbench().seed(9).iterations(40).build();
        let r = run_intervals_tuned(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
            None,
            tuned(128, 3),
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        // CPU clocks tick at 10ms granularity, so short runs may read
        // zero busy time — the invariants below must hold regardless.
        assert!(r.recording_cpu_s >= 0.0);
        assert!(
            r.worker_cpu_max_s <= r.worker_cpu_total_s + 1e-9,
            "busiest worker cannot exceed the pool total"
        );
        let span = r.span_s();
        assert!((span - (r.recording_cpu_s + r.worker_cpu_max_s)).abs() < 1e-12);
        assert_eq!(
            r.metrics.counters.get("interval.recording_cpu_us"),
            (r.recording_cpu_s * 1e6) as u64
        );
        assert_eq!(
            r.metrics.counters.get("interval.worker_cpu_max_us"),
            (r.worker_cpu_max_s * 1e6) as u64
        );
    }
}
