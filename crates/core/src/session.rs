//! The shared session layer: one place that owns the setup every runner
//! needs, so the transport substrates stay thin.
//!
//! The paper's architecture is a single receive-side pipeline (unpack →
//! fuse-resolve → check → recover) behind interchangeable transports.
//! [`Session`] captures everything that pipeline needs before a single
//! byte moves — the workload image, per-core reference models, the
//! acceleration unit matching a [`DiffConfig`], the fault schedule — and
//! hands each runner pre-wired components:
//!
//! - [`Session::dut`] / [`Session::accel`] build the producer side,
//! - [`Session::send_link`] wraps any [`LinkSink`](crate::link::LinkSink)
//!   in the shared fault-injection / flight-recording send path,
//! - [`Session::consumer`] builds the receive-side state machine
//!   ([`Consumer`](crate::consume::Consumer)) that performs the actual
//!   CRC verify → unpack → check → recover loop.
//!
//! Runners ([`crate::engine`], [`crate::threaded`], [`crate::sharded`],
//! [`crate::socket`]) differ only in *where* those components run —
//! one virtual timeline, two threads, N+1 threads, or two processes —
//! and in what they report on top of the shared [`RunCommon`] core.

use std::fmt;
use std::ops::{Deref, DerefMut};

use difftest_dut::{BugSpec, Dut, DutConfig};
use difftest_ref::{Memory, RefModel};
use difftest_stats::{chrometrace, FlightSnapshot, Metrics, SpanBuf, SpanSink, Tracer};
use difftest_workload::Workload;

use crate::checker::{Checker, Mismatch};
use crate::consume::Consumer;
use crate::fault::{FaultPlan, FaultStats, FaultyLink, LinkErrorKind, LinkStats};
use crate::link::{LinkSink, SendLink};
use crate::transport::{AccelUnit, SwUnit};

/// The optimization configurations of the artifact appendix (`DIFF_CONFIG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffConfig {
    /// Baseline: per-event blocking transfers.
    Z,
    /// +Batch: tight packing, still blocking.
    B,
    /// +Batch +NonBlock: packed, non-blocking transfers.
    BN,
    /// +Batch +NonBlock +Squash(+Differencing): the full DiffTest-H.
    BNSD,
}

impl DiffConfig {
    /// All configurations in Table 5 order.
    pub const ALL: [DiffConfig; 4] = [
        DiffConfig::Z,
        DiffConfig::B,
        DiffConfig::BN,
        DiffConfig::BNSD,
    ];

    /// Tight packing enabled.
    pub fn batch(self) -> bool {
        self != DiffConfig::Z
    }

    /// Non-blocking transmission enabled.
    pub fn nonblock(self) -> bool {
        matches!(self, DiffConfig::BN | DiffConfig::BNSD)
    }

    /// Fusion + differencing enabled.
    pub fn squash(self) -> bool {
        self == DiffConfig::BNSD
    }

    /// Table 5 row label.
    pub fn label(self) -> &'static str {
        match self {
            DiffConfig::Z => "Baseline",
            DiffConfig::B => "+Batch",
            DiffConfig::BN => "+NonBlock",
            DiffConfig::BNSD => "+Squash",
        }
    }

    /// Stable single-byte encoding for cross-process handshakes.
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            DiffConfig::Z => 0,
            DiffConfig::B => 1,
            DiffConfig::BN => 2,
            DiffConfig::BNSD => 3,
        }
    }

    /// Inverse of [`to_wire`](Self::to_wire).
    pub(crate) fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(DiffConfig::Z),
            1 => Some(DiffConfig::B),
            2 => Some(DiffConfig::BN),
            3 => Some(DiffConfig::BNSD),
            _ => None,
        }
    }
}

impl fmt::Display for DiffConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The workload reached its good trap and every check passed.
    GoodTrap,
    /// The workload signalled failure.
    BadTrap,
    /// A DUT/REF divergence was detected.
    Mismatch,
    /// The cycle budget was exhausted without a trap.
    MaxCycles,
    /// The link failed in a way bounded recovery could not mask.
    LinkError {
        /// Failure classification.
        kind: LinkErrorKind,
        /// Packet sequence involved (the receiver's expected sequence
        /// at detection; 0 for unsequenced per-event transfers).
        seq: u32,
        /// Routing core of the offending transfer.
        core: u8,
    },
}

/// The report core every runner shares: verdict, volume, link health and
/// observability. Runner-specific reports ([`RunReport`](crate::RunReport),
/// [`ThreadedReport`](crate::ThreadedReport), …) embed one and `Deref` to
/// it, so `report.outcome` reads the same across all four runners.
#[derive(Debug, Clone)]
pub struct RunCommon {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// The first detected divergence, if any (for the engine this is the
    /// coarse checker mismatch; the localized one lives in its
    /// [`FailureReport`](crate::FailureReport)).
    pub mismatch: Option<Mismatch>,
    /// DUT cycles simulated.
    pub cycles: u64,
    /// Instructions committed by the DUT.
    pub instructions: u64,
    /// Wire items checked.
    pub items: u64,
    /// Link failure counters accumulated by the receive side.
    pub link: LinkStats,
    /// Faults the injected link model applied (`None` on a clean link).
    pub fault: Option<FaultStats>,
    /// The run's observability registry (counters, histograms, phase
    /// times). Exported as JSONL when `DIFFTEST_OBS=<path>` is set.
    pub metrics: Metrics,
    /// Flight-recorder snapshot attached on [`RunOutcome::Mismatch`] and
    /// [`RunOutcome::LinkError`], `None` on clean runs.
    pub flight: Option<FlightSnapshot>,
}

/// One co-simulation session: the transport-independent setup shared by
/// every runner. Cloneable and `Send`, so threaded runners can move one
/// copy into each thread and build their components locally.
#[derive(Debug, Clone)]
pub struct Session {
    dut_cfg: DutConfig,
    config: DiffConfig,
    image: Memory,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
    packet_bytes: usize,
    fusion_window: u32,
    order_coupled: bool,
    differencing: bool,
    tracer: Option<Tracer>,
}

impl Session {
    /// Creates a session over a workload with the default pipeline
    /// tuning (4 KiB packets, 32-commit fusion window, order-decoupled,
    /// differencing on) — what every runner other than the fully
    /// configurable engine uses.
    pub fn new(
        dut_cfg: DutConfig,
        config: DiffConfig,
        workload: &Workload,
        bugs: Vec<BugSpec>,
        max_cycles: u64,
        queue_depth: usize,
        fault: Option<FaultPlan>,
    ) -> Session {
        let mut image = Memory::new();
        image.load_words(Memory::RAM_BASE, workload.words());
        Session::from_image(dut_cfg, config, image, bugs, max_cycles, queue_depth, fault)
    }

    /// Creates a session over an already-loaded memory image. This is
    /// the entry point for receive-only processes (the socket consumer)
    /// that get the image over the wire instead of from a [`Workload`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_image(
        dut_cfg: DutConfig,
        config: DiffConfig,
        image: Memory,
        bugs: Vec<BugSpec>,
        max_cycles: u64,
        queue_depth: usize,
        fault: Option<FaultPlan>,
    ) -> Session {
        Session {
            dut_cfg,
            config,
            image,
            bugs,
            max_cycles,
            queue_depth: queue_depth.max(1),
            fault,
            packet_bytes: 4096,
            fusion_window: 32,
            order_coupled: false,
            differencing: true,
            tracer: Tracer::from_env(),
        }
    }

    /// Overrides the span tracer (default: [`Tracer::from_env`], i.e.
    /// `DIFFTEST_TRACE=<path>`). Pass `None` to force tracing off — the
    /// socket consumer process does this so the inherited environment
    /// never makes the child clobber the producer's merged trace file.
    pub fn with_tracer(mut self, tracer: Option<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The session's span tracer, when tracing is on.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// A span sink on the named track — enabled when the session has a
    /// tracer, a single-branch no-op otherwise.
    pub fn span_sink(&self, pid: u32, tid: u32, process: &str, track: &str) -> SpanSink {
        match &self.tracer {
            Some(t) => t.sink(pid, tid, process, track),
            None => SpanSink::disabled(),
        }
    }

    /// Finishes a traced run: folds `trace.spans_recorded` /
    /// `trace.spans_dropped` into `metrics` and writes the gathered
    /// buffers as Chrome trace-event JSON to the tracer's path. No-op
    /// when tracing is off. Runners call this exactly once, after all
    /// producer/consumer/worker buffers are gathered (counters are
    /// *added*, so sharded metric merges stay consistent).
    pub fn export_trace(&self, bufs: &[SpanBuf], metrics: &mut Metrics) {
        export_trace(self.tracer.as_ref(), bufs, metrics);
    }

    /// Overrides the transmission packet capacity in bytes.
    pub fn with_packet_bytes(mut self, bytes: usize) -> Self {
        self.packet_bytes = bytes;
        self
    }

    /// Overrides the fusion window in commits.
    pub fn with_fusion_window(mut self, commits: u32) -> Self {
        self.fusion_window = commits;
        self
    }

    /// Uses the order-coupled fusion baseline of prior work.
    pub fn with_order_coupled(mut self, coupled: bool) -> Self {
        self.order_coupled = coupled;
        self
    }

    /// Enables or disables differencing within Squash.
    pub fn with_differencing(mut self, on: bool) -> Self {
        self.differencing = on;
        self
    }

    /// The selected optimization configuration.
    pub fn config(&self) -> DiffConfig {
        self.config
    }

    /// The DUT configuration.
    pub fn dut_cfg(&self) -> &DutConfig {
        &self.dut_cfg
    }

    /// Number of DUT cores (= reference models = shards).
    pub fn cores(&self) -> usize {
        self.dut_cfg.cores as usize
    }

    /// The simulated-cycle budget.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// The bounded in-flight queue depth (per shard where sharded).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The fault schedule, when injection is enabled.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// The loaded workload memory image.
    pub fn image(&self) -> &Memory {
        &self.image
    }

    /// Asserts the configuration suits a genuinely parallel runner.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is blocking (`Z`/`B`): those
    /// semantics would serialize producer and consumer anyway.
    pub fn require_nonblock(&self, runner: &str) {
        assert!(
            self.config.nonblock(),
            "{runner} runner requires a non-blocking configuration"
        );
    }

    /// Builds the design under test (with the session's injected bugs).
    pub fn dut(&self) -> Dut {
        Dut::new(self.dut_cfg.clone(), &self.image, self.bugs.clone())
    }

    /// Builds the hardware-side acceleration unit for this
    /// configuration, packing all cores into one stream.
    pub fn accel(&self) -> AccelUnit {
        self.accel_inner(self.cores())
    }

    /// Builds a per-core acceleration unit that filters and routes one
    /// core's events (sharded producers run one per core).
    pub fn accel_for_core(&self, core: u8) -> AccelUnit {
        let mut a = self.accel_inner(self.cores());
        a.set_route_core(core);
        a
    }

    fn accel_inner(&self, cores: usize) -> AccelUnit {
        match self.config {
            DiffConfig::Z => AccelUnit::per_event(),
            DiffConfig::B | DiffConfig::BN => AccelUnit::batch(cores, self.packet_bytes),
            DiffConfig::BNSD => AccelUnit::squash_batch_with(
                cores,
                self.packet_bytes,
                self.fusion_window,
                self.order_coupled,
                self.differencing,
            ),
        }
    }

    /// Builds the software-side decoder matching [`accel`](Self::accel).
    pub fn sw_unit(&self) -> SwUnit {
        match self.config {
            DiffConfig::Z => SwUnit::per_event(),
            _ => SwUnit::packed(self.cores()),
        }
    }

    /// Builds the multi-core checker (one [`RefModel`] per core).
    /// `replay` enables compensation logging for instruction-level
    /// replay after fusion (paper §4.4).
    pub fn checker(&self, replay: bool) -> Checker {
        let refs: Vec<RefModel> = (0..self.cores())
            .map(|_| RefModel::new(self.image.clone()))
            .collect();
        Checker::new(refs, replay)
    }

    /// Builds a single-core checker for shard `core`.
    pub fn checker_for_core(&self, core: u8) -> Checker {
        Checker::single(core, RefModel::new(self.image.clone()), false)
    }

    /// Builds the receive-side pipeline ([`Consumer`]) for a
    /// single-consumer runner: full-width decoder and checker, no
    /// retention ring (report-only link-error handling).
    pub fn consumer(&self) -> Consumer {
        Consumer::new(self.sw_unit(), self.checker(false))
    }

    /// Builds the receive-side pipeline for shard `core`: the decoder
    /// still tracks the shared sequence space, the checker owns just
    /// this core's reference model, and tail gaps are attributed to the
    /// shard.
    pub fn consumer_for_core(&self, core: u8) -> Consumer {
        Consumer::new(self.sw_unit(), self.checker_for_core(core)).with_home_core(core)
    }

    /// Builds the receive-side pipeline for one *interval* of shard
    /// `core`: the checker resumes mid-stream at `seq` over a REF
    /// restored from a checkpoint image, so fused records whose absolute
    /// first-sequence tags continue the recorded stream line up without
    /// cross-interval state (the interval runner's worker side).
    pub fn consumer_for_interval(&self, core: u8, refm: RefModel, seq: u64) -> Consumer {
        Consumer::new(
            self.sw_unit(),
            Checker::resume_single(core, refm, seq, false),
        )
        .with_home_core(core)
    }

    /// Builds the engine's receive-side pipeline: checker compensation
    /// logging per `replay`, plus a packet/event retention ring of
    /// `ring` entries enabling bounded ARQ recovery and §4.4 replay.
    pub fn consumer_with_retention(&self, replay: bool, ring: usize) -> Consumer {
        Consumer::new(self.sw_unit(), self.checker(replay)).with_retention(ring)
    }

    /// Wraps a transport sink in the shared send path (fault injection
    /// per the session's plan, produced-packet accounting, flight
    /// records).
    pub fn send_link<S: LinkSink>(&self, sink: S) -> SendLink<S> {
        SendLink::new(sink, self.fault.map(FaultyLink::new))
    }

    /// Per-shard variant of [`send_link`](Self::send_link): each shard
    /// gets an independent deterministic link derived from the plan's
    /// seed (`seed + core`), so a multi-core schedule stays reproducible
    /// while the shards fail differently.
    pub fn send_link_for_core<S: LinkSink>(&self, core: u8, sink: S) -> SendLink<S> {
        let link = self.fault.map(|p| {
            FaultyLink::new(FaultPlan {
                seed: p.seed.wrapping_add(core as u64),
                ..p
            })
        });
        SendLink::new(sink, link)
    }

    /// Per-interval variant of
    /// [`send_link_for_core`](Self::send_link_for_core): each `(core,
    /// interval)` slice gets an independent deterministic link, so the
    /// interval runner's schedule replays exactly while consecutive
    /// slices fail differently. The interval index is spread with a
    /// 64-bit odd multiplier so neighbouring `(core, interval)` pairs
    /// never collide with plain `seed + core` derivations.
    pub fn send_link_for_interval<S: LinkSink>(
        &self,
        core: u8,
        interval: u64,
        sink: S,
    ) -> SendLink<S> {
        let link = self.fault.map(|p| {
            FaultyLink::new(FaultPlan {
                seed: p
                    .seed
                    .wrapping_add(core as u64)
                    .wrapping_add(interval.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ..p
            })
        });
        SendLink::new(sink, link)
    }
}

/// Free-function form of [`Session::export_trace`] for runners that
/// keep only the [`Tracer`] after setup (the engine). Counters are
/// added only when tracing is on, so dormant runs stay byte-identical.
pub fn export_trace(tracer: Option<&Tracer>, bufs: &[SpanBuf], metrics: &mut Metrics) {
    let Some(tracer) = tracer else {
        return;
    };
    let recorded: u64 = bufs.iter().map(|b| b.recorded).sum();
    let dropped: u64 = bufs.iter().map(|b| b.dropped).sum();
    metrics.counters.add("trace.spans_recorded", recorded);
    metrics.counters.add("trace.spans_dropped", dropped);
    if let Err(e) = chrometrace::write_trace(tracer.path(), bufs) {
        eprintln!(
            "difftest: failed to write trace {}: {e}",
            tracer.path().display()
        );
    }
}

/// Which transport substrate runs the shared pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerKind {
    /// Virtual-time LogGP engine (one timeline, simulated speed).
    Engine,
    /// Producer + single consumer on OS threads (wall-clock).
    Threaded,
    /// Producer + one consumer thread per DUT core (wall-clock).
    Sharded,
    /// Producer and consumer in separate OS processes over a
    /// Unix-domain socket (wall-clock, real bytes across a real
    /// process boundary). The hosting binary must call
    /// [`crate::socket::child_entry`] first thing in `main`.
    Socket,
    /// Recording pass + time-parallel interval verification over REF
    /// checkpoints: a worker pool re-verifies checkpoint-delimited
    /// slices of the stream independently (wall-clock).
    Intervals,
}

impl RunnerKind {
    /// All runners, in the order the runner matrix documents them.
    pub const ALL: [RunnerKind; 5] = [
        RunnerKind::Engine,
        RunnerKind::Threaded,
        RunnerKind::Sharded,
        RunnerKind::Socket,
        RunnerKind::Intervals,
    ];

    /// Stable lowercase name (matrix rows, bench scenario labels).
    pub fn name(self) -> &'static str {
        match self {
            RunnerKind::Engine => "engine",
            RunnerKind::Threaded => "threaded",
            RunnerKind::Sharded => "sharded",
            RunnerKind::Socket => "socket",
            RunnerKind::Intervals => "intervals",
        }
    }
}

impl fmt::Display for RunnerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// The report of [`run_runner`]: the runner's own report, `Deref`ing to
/// the shared [`RunCommon`] so dispatch call sites can read
/// `report.outcome` / `report.items` without matching.
// One report exists per co-simulation run, never in bulk — the size
// skew between variants costs nothing, while boxing would put an
// indirection in every `Deref` read.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunnerReport {
    /// Engine report (virtual-time speeds, LogGP overhead breakdown).
    Engine(crate::engine::RunReport),
    /// Threaded report (wall-clock throughput).
    Threaded(crate::threaded::ThreadedReport),
    /// Sharded report (per-worker throughput, pool stats).
    Sharded(crate::sharded::ShardedReport),
    /// Socket report (cross-process wall-clock throughput).
    Socket(crate::socket::SocketReport),
    /// Intervals report (checkpoint/interval accounting, worker pool
    /// high-water mark).
    Intervals(crate::intervals::IntervalsReport),
}

impl Deref for RunnerReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        match self {
            RunnerReport::Engine(r) => r,
            RunnerReport::Threaded(r) => r,
            RunnerReport::Sharded(r) => r,
            RunnerReport::Socket(r) => r,
            RunnerReport::Intervals(r) => r,
        }
    }
}

impl DerefMut for RunnerReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        match self {
            RunnerReport::Engine(r) => r,
            RunnerReport::Threaded(r) => r,
            RunnerReport::Sharded(r) => r,
            RunnerReport::Socket(r) => r,
            RunnerReport::Intervals(r) => r,
        }
    }
}

impl RunnerReport {
    /// Which substrate produced this report.
    pub fn kind(&self) -> RunnerKind {
        match self {
            RunnerReport::Engine(_) => RunnerKind::Engine,
            RunnerReport::Threaded(_) => RunnerKind::Threaded,
            RunnerReport::Sharded(_) => RunnerKind::Sharded,
            RunnerReport::Socket(_) => RunnerKind::Socket,
            RunnerReport::Intervals(_) => RunnerKind::Intervals,
        }
    }

    /// Host wall-clock seconds and DUT cycles per wall-clock second, for
    /// the runners that measure real time (`None` for the virtual-time
    /// engine, whose speeds are simulated — see
    /// [`RunReport`](crate::engine::RunReport)).
    pub fn wall(&self) -> Option<(f64, f64)> {
        match self {
            RunnerReport::Engine(_) => None,
            RunnerReport::Threaded(r) => Some((r.wall_s, r.cycles_per_sec)),
            RunnerReport::Sharded(r) => Some((r.wall_s, r.cycles_per_sec)),
            RunnerReport::Socket(r) => Some((r.wall_s, r.cycles_per_sec)),
            RunnerReport::Intervals(r) => Some((r.wall_s, r.cycles_per_sec)),
        }
    }
}

/// Runs one co-simulation on the chosen transport substrate — the
/// single dispatch entry point the examples use. All four runners drive
/// the identical session components, so the verdict is
/// substrate-independent; only the throughput story differs.
///
/// # Panics
///
/// Panics when `kind` is a parallel runner and `config` is blocking
/// (`Z`/`B`), mirroring the underlying runners.
#[allow(clippy::too_many_arguments)]
pub fn run_runner(
    kind: RunnerKind,
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> RunnerReport {
    match kind {
        RunnerKind::Engine => {
            let mut builder = crate::engine::CoSimulation::builder()
                .dut(dut_cfg)
                .config(config)
                .bugs(bugs)
                .max_cycles(max_cycles)
                .queue_depth(queue_depth);
            if let Some(plan) = fault {
                builder = builder.fault_plan(plan);
            }
            let mut sim = match builder.build(workload) {
                Ok(sim) => sim,
                Err(e) => unreachable!("default engine tuning is always valid: {e}"),
            };
            RunnerReport::Engine(sim.run())
        }
        RunnerKind::Threaded => RunnerReport::Threaded(crate::threaded::run_threaded_faulty(
            dut_cfg,
            config,
            workload,
            bugs,
            max_cycles,
            queue_depth,
            fault,
        )),
        RunnerKind::Sharded => RunnerReport::Sharded(crate::sharded::run_sharded_faulty(
            dut_cfg,
            config,
            workload,
            bugs,
            max_cycles,
            queue_depth,
            fault,
        )),
        RunnerKind::Socket => RunnerReport::Socket(crate::socket::run_socket_faulty(
            dut_cfg,
            config,
            workload,
            bugs,
            max_cycles,
            queue_depth,
            fault,
        )),
        RunnerKind::Intervals => RunnerReport::Intervals(crate::intervals::run_intervals_faulty(
            dut_cfg,
            config,
            workload,
            bugs,
            max_cycles,
            queue_depth,
            fault,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_builds_matching_components() {
        let w = Workload::microbench().seed(1).iterations(5).build();
        let s = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        );
        assert_eq!(s.cores(), 1);
        assert!(s.accel().squash_stats().is_some());
        assert!(s.sw_unit().expected_seq().is_some());
        let plain = Session::new(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        );
        assert!(plain.accel().squash_stats().is_none());
        assert!(plain.sw_unit().expected_seq().is_none());
    }

    #[test]
    fn per_core_links_derive_distinct_seeds() {
        let w = Workload::microbench().seed(1).iterations(5).build();
        let s = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            1_000,
            8,
            Some(FaultPlan::uniform(7, 10)),
        );
        let l0 = s.send_link_for_core(0, crate::link::QueueSink::default());
        let l1 = s.send_link_for_core(1, crate::link::QueueSink::default());
        let seed = |l: &SendLink<crate::link::QueueSink>| l.fault_link().map(|f| f.plan().seed);
        assert_eq!(seed(&l0), Some(7));
        assert_eq!(seed(&l1), Some(8));
    }

    #[test]
    fn diff_config_wire_round_trips() {
        for c in DiffConfig::ALL {
            assert_eq!(DiffConfig::from_wire(c.to_wire()), Some(c));
        }
        assert_eq!(DiffConfig::from_wire(9), None);
    }

    #[test]
    #[should_panic(expected = "non-blocking")]
    fn require_nonblock_rejects_blocking_configs() {
        let w = Workload::microbench().seed(1).iterations(5).build();
        Session::new(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
            None,
        )
        .require_nonblock("test");
    }
}
