//! Replay: instruction-level debugging after fusion (paper §4.4).
//!
//! Fusion discards per-instruction detail. To restore it without re-running
//! the whole DUT, the hardware buffers the *original, unfused* events in a
//! token-indexed ring; when the software detects a mismatch on the fused
//! stream it reverts the REF to the last checkpoint (compensation log, see
//! `difftest_ref::Journal`), requests retransmission of the token range
//! around the failure, and reprocesses the unfused events to localize the
//! exact instruction and event.

use std::collections::VecDeque;
use std::fmt;

use difftest_event::MonitoredEvent;

use crate::checker::Mismatch;

/// Packets the hardware side retains for link-level retransmission, in
/// addition to the event ring (which serves mismatch localization).
const DEFAULT_PACKET_RETENTION: usize = 512;

/// The result of an event-range retransmission request.
#[derive(Debug, Clone, PartialEq)]
pub struct Retransmission {
    /// The buffered events with tokens in the requested range, in
    /// arrival order.
    pub events: Vec<MonitoredEvent>,
    /// `false` when part of the requested range was already evicted
    /// from the ring, so `events` silently misses the oldest tokens.
    pub complete: bool,
}

/// The hardware-side token-indexed ring of original events.
#[derive(Debug, Default)]
pub struct ReplayBuffer {
    ring: VecDeque<MonitoredEvent>,
    capacity: usize,
    dropped: u64,
    /// Highest token evicted from the ring, per core — lets
    /// [`retransmit`](Self::retransmit) tell a genuinely empty range
    /// from one whose events were already overwritten.
    evicted_watermark: Vec<Option<u64>>,
    /// Pristine copies of the most recent packets (recorded before the
    /// link can damage them), indexed by consecutive sequence number.
    packet_ring: VecDeque<Vec<u8>>,
    packet_first_seq: u32,
    packet_capacity: usize,
    packets_evicted: u64,
}

impl ReplayBuffer {
    /// Creates a ring retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            ring: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity: capacity.max(1),
            dropped: 0,
            evicted_watermark: Vec::new(),
            packet_ring: VecDeque::new(),
            packet_first_seq: 0,
            packet_capacity: DEFAULT_PACKET_RETENTION,
            packets_evicted: 0,
        }
    }

    /// Buffers one captured event (before any optimization touches it).
    pub fn push(&mut self, ev: MonitoredEvent) {
        if self.ring.len() == self.capacity {
            if let Some(old) = self.ring.pop_front() {
                self.note_evicted(&old);
            }
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Buffers one cycle's captured events in bulk. Evictions for the
    /// whole batch are computed up front, so the per-event hot loop the
    /// engine's monitor phase runs every cycle is a clone + ring append
    /// with no capacity or watermark bookkeeping. Equivalent to calling
    /// [`push`](Self::push) once per event.
    pub fn push_slice(&mut self, events: &[MonitoredEvent]) {
        let overflow = (self.ring.len() + events.len()).saturating_sub(self.capacity);
        for _ in 0..overflow.min(self.ring.len()) {
            if let Some(old) = self.ring.pop_front() {
                self.note_evicted(&old);
                self.dropped += 1;
            }
        }
        // A batch larger than the ring evicts its own oldest events on
        // arrival.
        let skip = events.len().saturating_sub(self.capacity);
        for ev in &events[..skip] {
            self.note_evicted(ev);
            self.dropped += 1;
        }
        self.ring.extend(events[skip..].iter().cloned());
    }

    fn note_evicted(&mut self, ev: &MonitoredEvent) {
        let idx = ev.core as usize;
        if self.evicted_watermark.len() <= idx {
            self.evicted_watermark.resize(idx + 1, None);
        }
        let slot = &mut self.evicted_watermark[idx];
        *slot = Some(slot.map_or(ev.token.0, |w| w.max(ev.token.0)));
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring overflowed (the `replay.dropped`
    /// counter).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retransmits the buffered events with tokens in `[from, to]`, for one
    /// core, in token order. Tokens also filter out unrelated events that
    /// arrived between the failure and the replay request (paper §4.4).
    /// The result is marked incomplete when the requested range overlaps
    /// tokens already evicted from the ring — the caller must then treat
    /// any localization as partial rather than silently trusting a
    /// truncated replay.
    pub fn retransmit(&self, core: u8, from: u64, to: u64) -> Retransmission {
        let events: Vec<MonitoredEvent> = self
            .ring
            .iter()
            .filter(|e| e.core == core && (from..=to).contains(&e.token.0))
            .cloned()
            .collect();
        let complete = match self.evicted_watermark.get(core as usize).copied().flatten() {
            // Tokens up to the watermark are gone; if the range starts
            // at or below it, its oldest events may be missing.
            Some(watermark) => from > watermark,
            None => true,
        };
        Retransmission { events, complete }
    }

    /// Retains a pristine copy of an outgoing packet for link-level
    /// retransmission. Sequence numbers must be consecutive (they are —
    /// the packer stamps them); a discontinuity resets the ring.
    pub fn record_packet(&mut self, seq: u32, bytes: &[u8]) {
        let next = self
            .packet_first_seq
            .wrapping_add(self.packet_ring.len() as u32);
        if self.packet_ring.is_empty() || seq != next {
            self.packets_evicted += self.packet_ring.len() as u64;
            self.packet_ring.clear();
            self.packet_first_seq = seq;
        }
        if self.packet_ring.len() == self.packet_capacity {
            self.packet_ring.pop_front();
            self.packet_first_seq = self.packet_first_seq.wrapping_add(1);
            self.packets_evicted += 1;
        }
        self.packet_ring.push_back(bytes.to_vec());
    }

    /// The retained copy of packet `seq`, if it has not been evicted.
    pub fn retransmit_packet(&self, seq: u32) -> Option<&[u8]> {
        let offset = seq.wrapping_sub(self.packet_first_seq) as usize;
        self.packet_ring.get(offset).map(Vec::as_slice)
    }

    /// The sequence number after the newest retained packet — i.e. how
    /// far the sender's packet stream has advanced. At end of stream, a
    /// receiver expecting less than this has lost tail packets.
    pub fn next_packet_seq(&self) -> Option<u32> {
        if self.packet_ring.is_empty() {
            None
        } else {
            Some(
                self.packet_first_seq
                    .wrapping_add(self.packet_ring.len() as u32),
            )
        }
    }

    /// Packets no longer available for retransmission.
    pub fn packets_evicted(&self) -> u64 {
        self.packets_evicted
    }

    /// Packets currently retained for retransmission.
    pub fn packets_retained(&self) -> usize {
        self.packet_ring.len()
    }
}

/// The outcome of a Replay pass: the coarse (fused-stream) mismatch and the
/// precise instruction-level localization recovered from unfused events.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// The mismatch observed on the optimized stream.
    pub coarse: Mismatch,
    /// The precise mismatch found by reprocessing unfused events, when the
    /// replay pass reproduced one.
    pub precise: Option<Mismatch>,
    /// Token range retransmitted.
    pub token_range: (u64, u64),
    /// Number of unfused events reprocessed.
    pub replayed_events: usize,
    /// `true` when the requested token range overlapped events already
    /// evicted from the replay ring, so the localization ran on an
    /// incomplete event set (see `replay.dropped`).
    pub partial: bool,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "co-simulation mismatch (fused stream): {}", self.coarse)?;
        writeln!(
            f,
            "replayed {} unfused events over tokens [{}, {}]{}",
            self.replayed_events,
            self.token_range.0,
            self.token_range.1,
            if self.partial {
                " (PARTIAL: range overlaps evicted events)"
            } else {
                ""
            }
        )?;
        match &self.precise {
            Some(p) => write!(f, "instruction-level localization: {p}"),
            None => write!(f, "replay pass did not reproduce the mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{InstrCommit, OrderTag, Token};

    fn ev(core: u8, token: u64) -> MonitoredEvent {
        MonitoredEvent {
            core,
            cycle: token,
            order: OrderTag(token),
            token: Token(token),
            event: InstrCommit::default().into(),
        }
    }

    #[test]
    fn push_slice_matches_per_event_push() {
        // Batches straddling every eviction regime: empty ring, partial
        // overflow, and a batch larger than the whole ring.
        for (cap, batches) in [
            (4usize, vec![3usize, 3, 3]),
            (4, vec![6]),
            (2, vec![1, 5, 1]),
            (8, vec![2, 2, 2]),
        ] {
            let mut a = ReplayBuffer::new(cap);
            let mut b = ReplayBuffer::new(cap);
            let mut t = 0u64;
            for n in batches {
                let evs: Vec<MonitoredEvent> =
                    (0..n).map(|i| ev((i % 2) as u8, t + i as u64)).collect();
                t += n as u64;
                for e in &evs {
                    a.push(e.clone());
                }
                b.push_slice(&evs);
            }
            assert_eq!(a.len(), b.len(), "cap {cap}");
            assert_eq!(a.dropped(), b.dropped(), "cap {cap}");
            assert_eq!(a.evicted_watermark, b.evicted_watermark, "cap {cap}");
            assert!(a.ring.iter().eq(b.ring.iter()), "cap {cap}");
        }
    }

    #[test]
    fn retransmit_filters_by_core_and_token() {
        let mut rb = ReplayBuffer::new(100);
        for t in 0..20 {
            rb.push(ev((t % 2) as u8, t));
        }
        let got = rb.retransmit(0, 4, 12);
        assert!(got.complete);
        let tokens: Vec<u64> = got.events.iter().map(|e| e.token.0).collect();
        assert_eq!(tokens, vec![4, 6, 8, 10, 12]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut rb = ReplayBuffer::new(4);
        for t in 0..10 {
            rb.push(ev(0, t));
        }
        assert_eq!(rb.len(), 4);
        assert_eq!(rb.dropped(), 6);
        assert!(rb.retransmit(0, 0, 5).events.is_empty());
        assert_eq!(rb.retransmit(0, 6, 9).events.len(), 4);
    }

    #[test]
    fn retransmit_marks_evicted_overlap_partial() {
        let mut rb = ReplayBuffer::new(4);
        for t in 0..10 {
            rb.push(ev(0, t));
        }
        // Tokens 0..=5 were evicted; any range reaching into them is
        // partial even though it silently returns fewer events.
        assert!(!rb.retransmit(0, 0, 9).complete);
        assert!(!rb.retransmit(0, 5, 9).complete);
        // A range entirely above the watermark is complete.
        assert!(rb.retransmit(0, 6, 9).complete);
        // Eviction on core 0 does not taint core 1 requests.
        rb.push(ev(1, 100));
        assert!(rb.retransmit(1, 90, 110).complete);
    }

    #[test]
    fn packet_ring_retains_and_evicts() {
        let mut rb = ReplayBuffer::new(16);
        for seq in 0..5u32 {
            rb.record_packet(seq, &[seq as u8; 8]);
        }
        assert_eq!(rb.packets_retained(), 5);
        assert_eq!(rb.retransmit_packet(3), Some(&[3u8; 8][..]));
        assert_eq!(rb.retransmit_packet(5), None);
        // A sequence discontinuity defensively resets the ring.
        rb.record_packet(42, &[9; 4]);
        assert_eq!(rb.packets_retained(), 1);
        assert_eq!(rb.packets_evicted(), 5);
        assert_eq!(rb.retransmit_packet(42), Some(&[9u8; 4][..]));
        assert_eq!(rb.retransmit_packet(3), None);
    }
}
