//! Replay: instruction-level debugging after fusion (paper §4.4).
//!
//! Fusion discards per-instruction detail. To restore it without re-running
//! the whole DUT, the hardware buffers the *original, unfused* events in a
//! token-indexed ring; when the software detects a mismatch on the fused
//! stream it reverts the REF to the last checkpoint (compensation log, see
//! `difftest_ref::Journal`), requests retransmission of the token range
//! around the failure, and reprocesses the unfused events to localize the
//! exact instruction and event.

use std::collections::VecDeque;
use std::fmt;

use difftest_event::MonitoredEvent;

use crate::checker::Mismatch;

/// The hardware-side token-indexed ring of original events.
#[derive(Debug, Default)]
pub struct ReplayBuffer {
    ring: VecDeque<MonitoredEvent>,
    capacity: usize,
    dropped: u64,
}

impl ReplayBuffer {
    /// Creates a ring retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            ring: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Buffers one captured event (before any optimization touches it).
    pub fn push(&mut self, ev: MonitoredEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring overflowed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retransmits the buffered events with tokens in `[from, to]`, for one
    /// core, in token order. Tokens also filter out unrelated events that
    /// arrived between the failure and the replay request (paper §4.4).
    pub fn retransmit(&self, core: u8, from: u64, to: u64) -> Vec<MonitoredEvent> {
        self.ring
            .iter()
            .filter(|e| e.core == core && (from..=to).contains(&e.token.0))
            .cloned()
            .collect()
    }
}

/// The outcome of a Replay pass: the coarse (fused-stream) mismatch and the
/// precise instruction-level localization recovered from unfused events.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// The mismatch observed on the optimized stream.
    pub coarse: Mismatch,
    /// The precise mismatch found by reprocessing unfused events, when the
    /// replay pass reproduced one.
    pub precise: Option<Mismatch>,
    /// Token range retransmitted.
    pub token_range: (u64, u64),
    /// Number of unfused events reprocessed.
    pub replayed_events: usize,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "co-simulation mismatch (fused stream): {}", self.coarse)?;
        writeln!(
            f,
            "replayed {} unfused events over tokens [{}, {}]",
            self.replayed_events, self.token_range.0, self.token_range.1
        )?;
        match &self.precise {
            Some(p) => write!(f, "instruction-level localization: {p}"),
            None => write!(f, "replay pass did not reproduce the mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{InstrCommit, OrderTag, Token};

    fn ev(core: u8, token: u64) -> MonitoredEvent {
        MonitoredEvent {
            core,
            cycle: token,
            order: OrderTag(token),
            token: Token(token),
            event: InstrCommit::default().into(),
        }
    }

    #[test]
    fn retransmit_filters_by_core_and_token() {
        let mut rb = ReplayBuffer::new(100);
        for t in 0..20 {
            rb.push(ev((t % 2) as u8, t));
        }
        let got = rb.retransmit(0, 4, 12);
        let tokens: Vec<u64> = got.iter().map(|e| e.token.0).collect();
        assert_eq!(tokens, vec![4, 6, 8, 10, 12]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut rb = ReplayBuffer::new(4);
        for t in 0..10 {
            rb.push(ev(0, t));
        }
        assert_eq!(rb.len(), 4);
        assert_eq!(rb.dropped(), 6);
        assert!(rb.retransmit(0, 0, 5).is_empty());
        assert_eq!(rb.retransmit(0, 6, 9).len(), 4);
    }
}
