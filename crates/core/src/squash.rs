//! Squash: fusing verification events with a decoupled checking order
//! (paper §4.3).
//!
//! Squash reduces transmitted data three ways:
//!
//! 1. **Fusion** — runs of instruction commits become one [`FusedCommit`]
//!    carrying the final PC, the commit count and the collective register
//!    write-set. Port-level events whose content the fused record subsumes
//!    (writebacks, non-MMIO loads, redirects, runahead bookkeeping) are
//!    dropped from the wire entirely (they remain in the replay buffer).
//! 2. **Order decoupling** — non-deterministic events and order-sensitive
//!    checks are transmitted *ahead* with [`difftest_event::OrderTag`]s instead of breaking
//!    the fusion window; the software checker reorders them (paper Fig. 8).
//!    The order-coupled baseline (`order_coupled = true`) reproduces prior
//!    work: every NDE flushes the fusion window.
//! 3. **Differencing** — repetitive events (register/CSR state dumps, TLB
//!    fills) transmit only changed 64-bit words (implemented in
//!    [`crate::wire::DiffCache`]; Squash only classifies).

use difftest_event::wire::{CodecError, Reader, Writer};
use difftest_event::{commit_flags, Event, EventKind, MonitoredEvent};

use crate::wire::WireItem;

/// How Squash treats each event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashClass {
    /// Fused into the commit window.
    Fuse,
    /// Dropped from the wire: the fused commit subsumes its content.
    Subsume,
    /// Transmitted ahead with an order tag, full payload.
    TagFull,
    /// Transmitted with an order tag, differenced against the previous
    /// same-kind event.
    Diff,
}

/// Classifies an event under the Squash policy.
pub fn classify(event: &Event) -> SquashClass {
    use EventKind as K;
    match event.kind() {
        K::InstrCommit => SquashClass::Fuse,
        K::IntWriteback | K::FpWriteback | K::Redirect | K::RunaheadEvent => SquashClass::Subsume,
        K::LoadEvent => {
            if event.is_nde() {
                SquashClass::TagFull
            } else {
                SquashClass::Subsume
            }
        }
        // Repetitive state: differencing wins.
        K::ArchIntRegState
        | K::ArchFpRegState
        | K::CsrState
        | K::ArchVecRegState
        | K::VecCsrState
        | K::HypervisorCsrState
        | K::TriggerCsrState
        | K::DebugModeState
        | K::L1TlbEvent
        | K::L2TlbEvent
        | K::PtwEvent => SquashClass::Diff,
        // Order-sensitive or mostly-fresh payloads: ahead, full.
        _ => SquashClass::TagFull,
    }
}

/// A fused run of instruction commits (paper §4.3 "Fusion and Scheduling").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FusedCommit {
    /// Commit sequence of the first fused instruction.
    pub first_seq: u64,
    /// Number of fused instructions.
    pub count: u32,
    /// PC after the last fused instruction.
    pub final_pc: u64,
    /// Replay token of the first buffered event covered by this record.
    pub token_first: u64,
    /// Replay token of the last buffered event covered by this record.
    pub token_last: u64,
    /// Collective integer register write-set: last value per register.
    pub int_writes: Vec<(u8, u64)>,
    /// Collective floating-point register write-set.
    pub fp_writes: Vec<(u8, u64)>,
}

/// Bytes a LEB128 varint encoding of `v` occupies (1–10).
fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros()).max(1).div_ceil(7) as usize
}

fn write_varint(w: &mut Writer<'_>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.u8(byte);
            return;
        }
        w.u8(byte | 0x80);
    }
}

fn read_varint(r: &mut Reader<'_>) -> Result<u64, CodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = r.u8()?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(CodecError::Malformed("varint overruns 64 bits"))
}

impl FusedCommit {
    /// Encoded size in bytes.
    ///
    /// Scalar fields and write values are LEB128 varints: fused records
    /// dominate BNSD wire traffic, and sequence numbers, commit counts,
    /// and most register values occupy far fewer than 8 significant
    /// bytes, so variable-length encoding is where the squash stream's
    /// byte reduction comes from (paper §4.3 transmits "only modified"
    /// state — this squeezes the modified values themselves).
    pub fn encoded_len(&self) -> usize {
        varint_len(self.first_seq)
            + varint_len(u64::from(self.count))
            + varint_len(self.final_pc)
            + varint_len(self.token_first)
            + varint_len(self.token_last)
            + 1
            + 1
            + self
                .int_writes
                .iter()
                .chain(&self.fp_writes)
                .map(|(_, v)| 1 + varint_len(*v))
                .sum::<usize>()
    }

    /// Appends the self-describing binary layout.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::new(out);
        write_varint(&mut w, self.first_seq);
        write_varint(&mut w, u64::from(self.count));
        write_varint(&mut w, self.final_pc);
        write_varint(&mut w, self.token_first);
        write_varint(&mut w, self.token_last);
        w.u8(self.int_writes.len() as u8);
        w.u8(self.fp_writes.len() as u8);
        for (r, v) in self.int_writes.iter().chain(&self.fp_writes) {
            w.u8(*r);
            write_varint(&mut w, *v);
        }
    }

    /// Decodes a fused record from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated or malformed record.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<FusedCommit, CodecError> {
        let first_seq = read_varint(r)?;
        let count = u32::try_from(read_varint(r)?)
            .map_err(|_| CodecError::Malformed("fused count overruns 32 bits"))?;
        let final_pc = read_varint(r)?;
        let token_first = read_varint(r)?;
        let token_last = read_varint(r)?;
        let n_int = r.u8()? as usize;
        let n_fp = r.u8()? as usize;
        let mut int_writes = Vec::with_capacity(n_int);
        for _ in 0..n_int {
            let reg = r.u8()?;
            int_writes.push((reg, read_varint(r)?));
        }
        let mut fp_writes = Vec::with_capacity(n_fp);
        for _ in 0..n_fp {
            let reg = r.u8()?;
            fp_writes.push((reg, read_varint(r)?));
        }
        Ok(FusedCommit {
            first_seq,
            count,
            final_pc,
            token_first,
            token_last,
            int_writes,
            fp_writes,
        })
    }

    /// Advances the reader past one encoded record without materializing
    /// it — the packet-admission validation pass walks bodies with this
    /// so the later checking pass cannot hit a codec error mid-stream.
    ///
    /// # Errors
    ///
    /// Returns the same [`CodecError`]s as [`Self::decode_from`].
    pub fn skip_from(r: &mut Reader<'_>) -> Result<(), CodecError> {
        read_varint(r)?; // first_seq
        u32::try_from(read_varint(r)?)
            .map_err(|_| CodecError::Malformed("fused count overruns 32 bits"))?;
        read_varint(r)?; // final_pc
        read_varint(r)?; // token_first
        read_varint(r)?; // token_last
        let n_int = r.u8()? as usize;
        let n_fp = r.u8()? as usize;
        for _ in 0..n_int + n_fp {
            r.u8()?;
            read_varint(r)?;
        }
        Ok(())
    }
}

/// Counters the Squash unit maintains (paper §5: fusion ratios).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquashStats {
    /// Commits absorbed into fused records.
    pub commits_fused: u64,
    /// Fused records emitted.
    pub fused_records: u64,
    /// Events dropped as subsumed.
    pub subsumed: u64,
    /// Events transmitted ahead with tags.
    pub tagged: u64,
    /// Events classified for differencing.
    pub diffed: u64,
    /// Fusion windows broken by NDEs (order-coupled baseline only).
    pub nde_breaks: u64,
}

impl SquashStats {
    /// Mean commits per fused record.
    pub fn fusion_ratio(&self) -> f64 {
        if self.fused_records == 0 {
            0.0
        } else {
            self.commits_fused as f64 / self.fused_records as f64
        }
    }
}

#[derive(Debug, Default)]
struct WindowState {
    open: bool,
    first_seq: u64,
    count: u32,
    final_pc: u64,
    token_first: u64,
    token_last: u64,
    age: u32,
    int_writes: Vec<(u8, u64)>,
    fp_writes: Vec<(u8, u64)>,
}

impl WindowState {
    fn absorb(&mut self, ev: &MonitoredEvent, c: &difftest_event::InstrCommit) {
        if !self.open {
            self.open = true;
            self.first_seq = ev.order.0;
            self.count = 0;
            self.token_first = ev.token.0;
            self.age = 0;
            self.int_writes.clear();
            self.fp_writes.clear();
        }
        self.count += 1;
        self.token_last = ev.token.0;
        self.final_pc = next_pc_of(c);
        if c.wen != 0 {
            let set = if c.flags & commit_flags::FP_WEN != 0 {
                &mut self.fp_writes
            } else {
                &mut self.int_writes
            };
            match set.iter_mut().find(|(r, _)| *r == c.wdest) {
                Some(slot) => slot.1 = c.wdata,
                None => set.push((c.wdest, c.wdata)),
            }
        }
    }

    fn take(&mut self, core: u8) -> WireItem {
        self.open = false;
        WireItem::Fused {
            core,
            fused: FusedCommit {
                first_seq: self.first_seq,
                count: self.count,
                final_pc: self.final_pc,
                token_first: self.token_first,
                token_last: self.token_last,
                int_writes: std::mem::take(&mut self.int_writes),
                fp_writes: std::mem::take(&mut self.fp_writes),
            },
        }
    }
}

/// PC after a committed instruction: the branch/jump target when taken,
/// the fall-through otherwise. Taken control flow always ends a DUT commit
/// group, so within a fused window every instruction except the last falls
/// through — but the *last* one may redirect, and the hardware knows the
/// target from the next fetch. We reconstruct it the same way the RTL
/// monitor does: from the commit record itself.
fn next_pc_of(c: &difftest_event::InstrCommit) -> u64 {
    if c.flags & commit_flags::BRANCH_TAKEN != 0 || is_jump(c.instr) {
        // Taken control flow: the target is the next sequential fetch PC,
        // which the monitor records as the *link* for jal/jalr (wdata) or
        // recomputes from the immediate for branches/jumps.
        decode_target(c)
    } else {
        c.pc.wrapping_add(4)
    }
}

fn is_jump(raw: u32) -> bool {
    matches!(raw & 0x7f, 0x6f | 0x67) || raw == 0x3020_0073 // jal/jalr/mret
}

fn decode_target(c: &difftest_event::InstrCommit) -> u64 {
    use difftest_isa::{decode, Op};
    let insn = decode(c.instr);
    match insn.op {
        Op::Jal | Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
            c.pc.wrapping_add(insn.imm as u64)
        }
        // jalr/mret targets depend on register/CSR state the commit record
        // does not carry; the monitor marks them with a zero final PC and
        // the checker falls back to comparing the next commit's PC.
        _ => 0,
    }
}

/// The hardware-side Squash unit.
#[derive(Debug)]
pub struct SquashUnit {
    windows: Vec<WindowState>,
    window_limit: u32,
    max_age: u32,
    order_coupled: bool,
    differencing: bool,
    stats: SquashStats,
}

impl SquashUnit {
    /// Creates a unit for `cores` cores fusing up to `window_limit` commits.
    pub fn new(cores: usize, window_limit: u32) -> Self {
        SquashUnit {
            windows: (0..cores).map(|_| WindowState::default()).collect(),
            window_limit: window_limit.max(1),
            max_age: 64,
            order_coupled: false,
            differencing: true,
            stats: SquashStats::default(),
        }
    }

    /// Disables differencing (ablation): diff-class events are transmitted
    /// ahead with full payloads instead.
    pub fn set_differencing(&mut self, on: bool) {
        self.differencing = on;
    }

    /// Switches to the order-coupled baseline: NDEs break fusion windows
    /// and everything is transmitted in checking order (prior work's
    /// behaviour, paper Fig. 8 left).
    pub fn set_order_coupled(&mut self, coupled: bool) {
        self.order_coupled = coupled;
    }

    /// Fusion statistics so far.
    pub fn stats(&self) -> &SquashStats {
        &self.stats
    }

    /// Processes one monitored event, appending wire items.
    pub fn push(&mut self, ev: &MonitoredEvent, out: &mut Vec<WireItem>) {
        let core = ev.core as usize;
        let mut class = classify(&ev.event);
        if class == SquashClass::Diff && !self.differencing {
            class = SquashClass::TagFull;
        }
        match class {
            SquashClass::Fuse => {
                let Event::InstrCommit(c) = &ev.event else {
                    unreachable!("only commits fuse")
                };
                // A skipped (MMIO) commit is itself an NDE: its observed
                // value must reach the checker even on configurations whose
                // event coverage has no LoadEvent (e.g. NutShell). Schedule
                // it ahead with its order tag before fusing it.
                if ev.is_nde() {
                    self.stats.tagged += 1;
                    out.push(WireItem::Tagged {
                        core: ev.core,
                        tag: ev.order,
                        token: ev.token,
                        event: ev.event.clone(),
                    });
                }
                self.windows[core].absorb(ev, c);
                self.stats.commits_fused += 1;
                if self.windows[core].count >= self.window_limit {
                    self.flush_core(ev.core, out);
                }
            }
            SquashClass::Subsume => {
                self.stats.subsumed += 1;
            }
            SquashClass::TagFull => {
                if self.order_coupled && ev.is_nde() {
                    // Prior work: an NDE forces the fused window out first
                    // so transmission order equals checking order.
                    if self.windows[core].open {
                        self.stats.nde_breaks += 1;
                        self.flush_core(ev.core, out);
                    }
                }
                self.stats.tagged += 1;
                out.push(WireItem::Tagged {
                    core: ev.core,
                    tag: ev.order,
                    token: ev.token,
                    event: ev.event.clone(),
                });
            }
            SquashClass::Diff => {
                self.stats.diffed += 1;
                out.push(WireItem::Diff {
                    core: ev.core,
                    tag: ev.order,
                    token: ev.token,
                    event: ev.event.clone(),
                });
            }
        }
    }

    /// Ends one DUT cycle: ages open windows and flushes stale ones.
    pub fn on_cycle_end(&mut self, out: &mut Vec<WireItem>) {
        for core in 0..self.windows.len() {
            if self.windows[core].open {
                self.windows[core].age += 1;
                if self.windows[core].age >= self.max_age {
                    self.flush_core(core as u8, out);
                }
            }
        }
    }

    /// Flushes one core's open fusion window.
    pub fn flush_core(&mut self, core: u8, out: &mut Vec<WireItem>) {
        let w = &mut self.windows[core as usize];
        if w.open {
            self.stats.fused_records += 1;
            out.push(w.take(core));
        }
    }

    /// Flushes every open window (end of simulation, replay requests).
    pub fn flush_all(&mut self, out: &mut Vec<WireItem>) {
        for core in 0..self.windows.len() as u8 {
            self.flush_core(core, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{ArchEvent, InstrCommit, LoadEvent, OrderTag, Token};

    fn commit(seq: u64, token: u64, pc: u64, wdest: u8, wdata: u64) -> MonitoredEvent {
        MonitoredEvent {
            core: 0,
            cycle: seq,
            order: OrderTag(seq),
            token: Token(token),
            event: InstrCommit {
                pc,
                instr: 0x13,
                wen: 1,
                wdest,
                wdata,
                flags: 0,
                rob_idx: 0,
            }
            .into(),
        }
    }

    fn mmio_load(seq: u64, token: u64) -> MonitoredEvent {
        MonitoredEvent {
            core: 0,
            cycle: seq,
            order: OrderTag(seq),
            token: Token(token),
            event: LoadEvent {
                is_mmio: 1,
                ..Default::default()
            }
            .into(),
        }
    }

    #[test]
    fn fuses_up_to_window_limit() {
        let mut sq = SquashUnit::new(1, 4);
        let mut out = Vec::new();
        for i in 0..8 {
            sq.push(&commit(i, i, 0x8000_0000 + 4 * i, 10, i), &mut out);
        }
        assert_eq!(out.len(), 2);
        match &out[0] {
            WireItem::Fused { fused, .. } => {
                assert_eq!(fused.first_seq, 0);
                assert_eq!(fused.count, 4);
                assert_eq!(fused.final_pc, 0x8000_0010);
                // Last write wins in the write-set.
                assert_eq!(fused.int_writes, vec![(10, 3)]);
                assert_eq!((fused.token_first, fused.token_last), (0, 3));
            }
            other => panic!("expected fused, got {other:?}"),
        }
        assert!((sq.stats().fusion_ratio() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn decoupled_ndes_do_not_break_fusion() {
        let mut sq = SquashUnit::new(1, 8);
        let mut out = Vec::new();
        sq.push(&commit(0, 0, 0x8000_0000, 1, 1), &mut out);
        sq.push(&mmio_load(1, 1), &mut out);
        sq.push(&commit(1, 2, 0x8000_0004, 1, 2), &mut out);
        // Only the tagged NDE is out; the window is still open.
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], WireItem::Tagged { .. }));
        assert_eq!(sq.stats().nde_breaks, 0);
        sq.flush_all(&mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn coupled_ndes_break_fusion() {
        let mut sq = SquashUnit::new(1, 8);
        sq.set_order_coupled(true);
        let mut out = Vec::new();
        sq.push(&commit(0, 0, 0x8000_0000, 1, 1), &mut out);
        sq.push(&mmio_load(1, 1), &mut out);
        // The fused window is forced out *before* the NDE.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], WireItem::Fused { .. }));
        assert!(matches!(out[1], WireItem::Tagged { .. }));
        assert_eq!(sq.stats().nde_breaks, 1);
    }

    #[test]
    fn stale_windows_flush_by_age() {
        let mut sq = SquashUnit::new(1, 1000);
        let mut out = Vec::new();
        sq.push(&commit(0, 0, 0x8000_0000, 1, 1), &mut out);
        for _ in 0..63 {
            sq.on_cycle_end(&mut out);
        }
        assert!(out.is_empty());
        sq.on_cycle_end(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fused_commit_codec_round_trip() {
        let f = FusedCommit {
            first_seq: 100,
            count: 16,
            final_pc: 0x8000_1000,
            token_first: 7,
            token_last: 99,
            int_writes: vec![(1, 2), (3, 4)],
            fp_writes: vec![(5, 6)],
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        assert_eq!(buf.len(), f.encoded_len());
        let mut r = Reader::new(&buf);
        let back = FusedCommit::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn interrupts_are_tag_full() {
        let ev: Event = ArchEvent {
            is_interrupt: 1,
            ..Default::default()
        }
        .into();
        assert_eq!(classify(&ev), SquashClass::TagFull);
        let plain_load: Event = LoadEvent::default().into();
        assert_eq!(classify(&plain_load), SquashClass::Subsume);
    }
}
