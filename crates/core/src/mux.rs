//! Multiplex-ready sessions: one [`ProtoSession`] per client stream,
//! drivable incrementally from partial frames, and a [`SessionRegistry`]
//! that namespaces many of them behind one service.
//!
//! The one-shot socket consumer drives the shared pipeline with a
//! blocking reader ([`crate::consume::drive`]). A daemon cannot block on
//! any single connection, so this layer inverts control: bytes are
//! *pushed* into a session as they arrive ([`ProtoSession::feed`]), the
//! embedded [`FrameDecoder`] surfaces whole messages, and each message
//! advances the same `Consumer` state machine the blocking path uses.
//! The verdict-relevant semantics are identical by construction:
//!
//! - the kill knob fires *before* the n-th transfer is ingested,
//! - an early consumer stop ([`MuxStep::Decided`]) seals the result
//!   immediately (the caller half-closes its read side, mirroring the
//!   one-shot consumer's `shutdown(Read)`),
//! - a post-hello codec error is treated as end-of-stream — the
//!   one-shot consumer's reader returned `None` on a malformed frame,
//!   and the pipeline judges what the truncation means,
//! - EOF without an end frame finishes the stream with an unknown
//!   produced count (tail-loss attribution unchanged).

use std::collections::HashMap;
use std::sync::Arc;

use difftest_dut::DutConfig;
use difftest_ref::Memory;
use difftest_stats::span::DEFAULT_SPAN_CAPACITY;
use difftest_stats::{wall_epoch_ns, GaugeId, Metrics, MonotonicClock, SpanSink, PID_CONSUMER};

use crate::consume::{Consumer, ConsumerOutput, NoCharge, Step};
use crate::proto::{write_result, ClientMsg, FrameDecoder, Hello, ProtoError};
use crate::session::Session;

/// Where a session stands after a [`ProtoSession::feed`] / `eof` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxStep {
    /// Mid-stream: keep feeding bytes.
    Running,
    /// The consumer decided the run early (mismatch/trap/link error):
    /// the result is sealed — stop reading, deliver the blob, close.
    Decided,
    /// The stream completed (end frame or orderly EOF): result sealed.
    Finished,
    /// The hello's kill knob fired: abandon the connection abruptly —
    /// no result blob, no teardown (the tuning knob simulates consumer
    /// death mid-run).
    Killed,
    /// The stream ended before a handshake arrived: nothing to report.
    NoSession,
}

/// A sealed session's deliverables: the serialized `DTHR` blob to send
/// back, and the structured output for service-side accounting and
/// per-session observability export.
#[derive(Debug)]
pub struct SessionResult {
    /// The `DTHR` result blob, ready to write to the peer.
    pub blob: Vec<u8>,
    /// The consumer's structured output (items, verdict, metrics, …).
    pub output: ConsumerOutput,
}

/// The running half of a session, created when the hello decodes.
struct Running {
    consumer: Consumer,
    trace: bool,
    producer_epoch: u64,
    child_epoch: u64,
    kill_after: u32,
    delivered: u32,
}

/// One client stream's incremental state machine: decoder + consumer.
///
/// Feed bytes in any fragmentation; the returned [`MuxStep`] says when
/// the session has sealed a result (fetch it with
/// [`take_result`](Self::take_result)). After any terminal step
/// (`Decided`/`Finished`/`Killed`/`NoSession`) or error the session is
/// done and further feeds are inert.
pub struct ProtoSession {
    dec: FrameDecoder,
    run: Option<Running>,
    result: Option<SessionResult>,
    done: bool,
}

impl Default for ProtoSession {
    fn default() -> Self {
        ProtoSession::new()
    }
}

impl ProtoSession {
    /// A session expecting the start of a client stream.
    pub fn new() -> ProtoSession {
        ProtoSession {
            dec: FrameDecoder::new(),
            run: None,
            result: None,
            done: false,
        }
    }

    /// Whether the handshake has been decoded.
    pub fn hello_seen(&self) -> bool {
        self.dec.hello_seen()
    }

    /// Whether the session has reached a terminal state.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Pushes newly received bytes and advances the state machine.
    ///
    /// `Err` is only returned for a *pre-hello* protocol violation (bad
    /// magic/version/bounds): there is no session to report, the caller
    /// should drop the connection. Post-hello damage is folded into
    /// end-of-stream, matching the blocking consumer.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<MuxStep, ProtoError> {
        if self.done {
            return Ok(self.terminal_step());
        }
        self.dec.push(bytes);
        self.pump()
    }

    /// Signals end-of-stream (peer closed or read error): finishes the
    /// stream with whatever arrived.
    pub fn eof(&mut self) -> MuxStep {
        if self.done {
            return self.terminal_step();
        }
        if self.run.is_none() {
            self.done = true;
            return MuxStep::NoSession;
        }
        self.seal(None, false)
    }

    /// Takes the sealed result, once a terminal step reported one.
    pub fn take_result(&mut self) -> Option<SessionResult> {
        self.result.take()
    }

    /// The step to repeat once `done` (feeds after a terminal state).
    fn terminal_step(&self) -> MuxStep {
        if self.result.is_some() {
            MuxStep::Finished
        } else if self.run.is_none() && !self.dec.hello_seen() {
            MuxStep::NoSession
        } else {
            MuxStep::Killed
        }
    }

    fn pump(&mut self) -> Result<MuxStep, ProtoError> {
        loop {
            let msg = match self.dec.next_msg() {
                Ok(Some(m)) => m,
                Ok(None) => return Ok(MuxStep::Running),
                Err(e) => {
                    if self.run.is_none() {
                        self.done = true;
                        return Err(e);
                    }
                    // Post-hello codec damage: the blocking consumer's
                    // reader treated a malformed frame as end-of-stream
                    // and let the pipeline judge the truncation. Same
                    // here.
                    return Ok(self.seal(None, false));
                }
            };
            match msg {
                ClientMsg::Hello(h) => self.start(h),
                ClientMsg::Transfer(t) => {
                    let Some(r) = self.run.as_mut() else {
                        // Unreachable: the decoder only yields frames
                        // after the hello. Treat as stream damage.
                        return Ok(self.seal(None, false));
                    };
                    r.delivered += 1;
                    if r.kill_after != 0 && r.delivered >= r.kill_after {
                        // The knob kills *before* the n-th transfer is
                        // ingested, exactly like the one-shot consumer
                        // (which exited inside its reader).
                        self.done = true;
                        return Ok(MuxStep::Killed);
                    }
                    if r.consumer.ingest(&t, 0, &mut NoCharge) == Step::Stop {
                        return Ok(self.seal(None, true));
                    }
                }
                ClientMsg::End { produced } => {
                    return Ok(self.seal(Some(produced), false));
                }
            }
        }
    }

    /// Builds the per-session pipeline from a decoded hello. The
    /// consumer only needs what the receive side uses: core count and
    /// the memory image the reference models boot from. Bugs, cycle
    /// budget and fault plans live producer-side. Tracing config comes
    /// from the handshake, never this process's environment:
    /// `with_tracer(None)` keeps a consumer process (or daemon) from
    /// clobbering the producer's merged trace file.
    fn start(&mut self, h: Hello) {
        let mut dut_cfg = DutConfig::nutshell();
        dut_cfg.cores = h.cores;
        let mut image = Memory::new();
        image.load_words(Memory::RAM_BASE, &h.words);
        let session =
            Session::from_image(dut_cfg, h.config, image, Vec::new(), 0, 1, None).with_tracer(None);
        let mut consumer = session.consumer();
        let mut child_epoch = 0u64;
        if h.trace {
            // Own clock, origin now; the matching wall epoch lets the
            // spans be shifted onto the producer's timeline before
            // shipping.
            child_epoch = wall_epoch_ns();
            consumer = consumer.with_spans(SpanSink::on_track(
                Arc::new(MonotonicClock::default()),
                DEFAULT_SPAN_CAPACITY,
                PID_CONSUMER,
                0,
                "consumer",
                "consumer",
            ));
        }
        self.run = Some(Running {
            consumer,
            trace: h.trace,
            producer_epoch: h.epoch_wall_ns,
            child_epoch,
            kill_after: h.kill_after,
            delivered: 0,
        });
    }

    /// Seals the session: finish the stream (unless the consumer already
    /// stopped), serialize the result blob, record the terminal step.
    fn seal(&mut self, produced: Option<u32>, early: bool) -> MuxStep {
        let Some(mut r) = self.run.take() else {
            self.done = true;
            return MuxStep::NoSession;
        };
        self.done = true;
        if !r.consumer.stopped() {
            // EOF/end frame: the produced count (when it arrived)
            // exposes tail loss the sequence window cannot see.
            r.consumer.finish_stream(produced, 0, &mut NoCharge);
        }
        let mut out = r.consumer.finish();
        if r.trace {
            // Producer timeline = wall - producer_epoch; ours = wall -
            // child_epoch. Shifting by (child - producer) maps our
            // spans onto the producer's clock.
            out.spans
                .shift_ts(r.child_epoch as i64 - r.producer_epoch as i64);
        }
        let mut blob = Vec::new();
        if write_result(&mut blob, &out).is_err() {
            // Vec writes cannot fail; keep the typed path anyway.
            blob.clear();
        }
        self.result = Some(SessionResult { blob, output: out });
        if early {
            MuxStep::Decided
        } else {
            MuxStep::Finished
        }
    }
}

/// Why a session left the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Stream completed and the result blob was delivered.
    Finished,
    /// Consumer decided early; result delivered, read side dropped.
    EarlyStop,
    /// The hello's kill knob fired (diagnostic tooling).
    Killed,
    /// Pre-hello protocol violation; connection dropped.
    Rejected,
    /// No hello within the service's deadline; connection dropped.
    HelloTimeout,
    /// The peer vanished mid-stream (read or result-write failure).
    ProducerLost,
}

impl CloseReason {
    /// The `serve.sessions.*` counter this close increments.
    fn counter(self) -> &'static str {
        match self {
            CloseReason::Finished => "serve.sessions.finished",
            CloseReason::EarlyStop => "serve.sessions.early_stop",
            CloseReason::Killed => "serve.sessions.killed",
            CloseReason::Rejected => "serve.sessions.rejected",
            CloseReason::HelloTimeout => "serve.sessions.hello_timeout",
            CloseReason::ProducerLost => "serve.sessions.producer_lost",
        }
    }
}

/// Many concurrent [`ProtoSession`]s keyed by session id, plus the
/// service-level metrics registry (`serve.sessions.*` lifecycle
/// counters, the `serve.sessions.active` gauge and its high-water
/// mark). The service owns connection-level counters; everything
/// session-lifecycle lives here so in-process embedders (tests, the
/// example) and the daemon binary account identically.
pub struct SessionRegistry {
    next_id: u64,
    sessions: HashMap<u64, ProtoSession>,
    metrics: Metrics,
    g_active: GaugeId,
    g_active_max: GaugeId,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry with zeroed lifecycle metrics.
    pub fn new() -> SessionRegistry {
        let mut metrics = Metrics::new();
        let g_active = metrics.register_gauge("serve.sessions.active");
        let g_active_max = metrics.register_gauge("serve.sessions.active.max");
        SessionRegistry {
            next_id: 0,
            sessions: HashMap::new(),
            metrics,
            g_active,
            g_active_max,
        }
    }

    /// Opens a new session, returning its id (ids are unique for the
    /// registry's lifetime; they namespace per-session observability as
    /// `serve.s<id>`).
    pub fn open(&mut self) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.sessions.insert(id, ProtoSession::new());
        self.metrics.counters.add("serve.sessions.opened", 1);
        let active = self.sessions.len() as u64;
        self.metrics.set(self.g_active, active);
        self.metrics.set_max(self.g_active_max, active);
        id
    }

    /// The session with this id, while it is open.
    pub fn session(&mut self, id: u64) -> Option<&mut ProtoSession> {
        self.sessions.get_mut(&id)
    }

    /// Closes a session: updates lifecycle counters and the active
    /// gauge, folds the session's volume into the service totals, and
    /// hands back the sealed result (when the session produced one) so
    /// the caller can deliver the blob and export per-session metrics.
    pub fn close(&mut self, id: u64, reason: CloseReason) -> Option<SessionResult> {
        let mut sess = self.sessions.remove(&id)?;
        self.metrics.set(self.g_active, self.sessions.len() as u64);
        self.metrics.counters.add(reason.counter(), 1);
        let result = sess.take_result();
        if let Some(res) = &result {
            self.metrics.counters.add("serve.items", res.output.items);
        }
        result
    }

    /// Open sessions right now.
    pub fn active(&self) -> usize {
        self.sessions.len()
    }

    /// Session ids currently open (sorted, for deterministic polling).
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The service-level metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access for service-level counters (connection accepts,
    /// bytes read, drains).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::QueueSink;
    use crate::proto::{write_end_frame, write_hello, write_transfer_frame};
    use crate::session::DiffConfig;
    use crate::session::RunOutcome;
    use difftest_workload::Workload;

    /// Produces a full clean stream (hello + frames + end) for `seed`.
    fn stream_for(seed: u64) -> (Vec<u8>, u64) {
        let w = Workload::microbench().seed(seed).iterations(10).build();
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            200_000,
            8,
            None,
        );
        let mut dut = session.dut();
        let mut accel = session.accel();
        let mut link = session.send_link(QueueSink::default());
        let mut rec = difftest_stats::FlightRecorder::default();
        let mut transfers = Vec::new();
        let mut events = Vec::new();
        while dut.halted().is_none() && dut.cycles() < session.max_cycles() {
            events.clear();
            dut.tick_into(&mut events);
            accel.push_cycle(&events, &mut transfers);
            link.feed(&mut transfers, &mut rec, dut.cycles());
        }
        accel.flush(&mut transfers);
        link.feed(&mut transfers, &mut rec, dut.cycles());
        link.finish();
        let mut bytes = Vec::new();
        write_hello(&mut bytes, &Hello::from_session(&session, 0, w.words())).unwrap();
        let queued: Vec<_> = link.sink_mut().queue.drain(..).collect();
        for t in queued {
            write_transfer_frame(&mut bytes, &t).unwrap();
        }
        write_end_frame(&mut bytes, link.produced()).unwrap();
        (bytes, dut.cycles())
    }

    #[test]
    fn incremental_session_matches_engine_verdict() {
        let (bytes, _) = stream_for(7);
        let engine = crate::session::run_runner(
            crate::session::RunnerKind::Engine,
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &Workload::microbench().seed(7).iterations(10).build(),
            Vec::new(),
            200_000,
            8,
            None,
        );
        let mut sess = ProtoSession::new();
        // Ragged chunking across the whole stream.
        let mut step = MuxStep::Running;
        for chunk in bytes.chunks(193) {
            step = sess.feed(chunk).unwrap();
        }
        assert_eq!(step, MuxStep::Finished);
        let res = sess.take_result().unwrap();
        assert!(res.output.mismatch.is_none());
        assert!(res.output.link_error.is_none());
        assert_eq!(engine.outcome, RunOutcome::GoodTrap);
        assert_eq!(res.output.items, engine.items);
        assert!(!res.blob.is_empty());
    }

    #[test]
    fn registry_tracks_lifecycle_counters() {
        let mut reg = SessionRegistry::new();
        let a = reg.open();
        let b = reg.open();
        assert_eq!(reg.active(), 2);
        assert_eq!(reg.metrics().gauge("serve.sessions.active.max"), 2);

        let (bytes, _) = stream_for(3);
        let step = reg.session(a).unwrap().feed(&bytes).unwrap();
        assert_eq!(step, MuxStep::Finished);
        assert!(reg.close(a, CloseReason::Finished).is_some());
        assert!(reg.close(b, CloseReason::HelloTimeout).is_none());
        assert_eq!(reg.active(), 0);
        let m = reg.metrics();
        assert_eq!(m.counters.get("serve.sessions.opened"), 2);
        assert_eq!(m.counters.get("serve.sessions.finished"), 1);
        assert_eq!(m.counters.get("serve.sessions.hello_timeout"), 1);
        assert_eq!(m.gauge("serve.sessions.active"), 0);
        assert!(m.counters.get("serve.items") > 0);
    }

    #[test]
    fn kill_knob_fires_before_nth_transfer() {
        let w = Workload::microbench().seed(5).iterations(10).build();
        let session = Session::new(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            200_000,
            8,
            None,
        );
        let mut bytes = Vec::new();
        // kill_after = 1: the knob must fire before even the first
        // transfer is ingested (the payloads below would otherwise
        // trip CRC admission and stop the run early).
        write_hello(&mut bytes, &Hello::from_session(&session, 1, w.words())).unwrap();
        for i in 0..4u8 {
            let t = crate::transport::Transfer {
                bytes: crate::pool::PooledBuf::detached(vec![i; 8]),
                core: 0,
                invokes: 1,
                items: 1,
            };
            write_transfer_frame(&mut bytes, &t).unwrap();
        }
        let mut sess = ProtoSession::new();
        assert_eq!(sess.feed(&bytes).unwrap(), MuxStep::Killed);
        assert!(sess.done());
        assert!(sess.take_result().is_none());
    }

    #[test]
    fn eof_before_hello_is_no_session() {
        let mut sess = ProtoSession::new();
        assert_eq!(sess.feed(b"DT").unwrap(), MuxStep::Running);
        assert_eq!(sess.eof(), MuxStep::NoSession);
        assert!(sess.take_result().is_none());
    }
}
