//! Batch: tight packing of structurally diverse events (paper §4.2).
//!
//! Batch minimizes communication startup frequency by packing many
//! variable-length wire items into fixed-capacity transmission packets:
//!
//! - **Type level** — valid events of one type within a cycle are compacted
//!   with a prefix-count mux-tree ([`type_level_pack`], paper Fig. 7).
//! - **Cycle level** — different event types of a cycle are laid out
//!   back-to-back, each run described by a [`MetaEntry`] (type, count);
//!   offsets are the running sum of preceding lengths (paper Fig. 5/6).
//! - **Transmission level** — cycle groups fill fixed-size packets, split
//!   at item boundaries so no capacity is wasted (paper §4.2.2 (3)).
//!
//! The software side ([`Unpacker`]) walks the metadata, computes each run's
//! offset from the accumulated lengths, and reconstructs the original
//! structures — including differenced payloads via the mirrored
//! [`DiffCache`].
//!
//! The module also provides the **fixed-offset baseline** of prior work
//! ([`FixedOffsetPacker`]): every provisioned slot occupies packet space
//! whether valid or not, producing the >60% bubbles of paper §4.2.1.

use difftest_dut::SlotTable;
use difftest_event::wire::{
    append_crc_frame, verify_crc_frame, CodecError, Reader, Writer, CRC_TRAILER_BYTES,
};
use difftest_event::{Event, EventKind, MonitoredEvent};

use crate::pool::{BufferPool, PooledBuf};
use crate::wire::{
    decode_item_ref_body, encode_item_body, validate_item_body, DiffCache, WireItem, WireItemRef,
    WireKind,
};

/// One metadata record: `count` items of `wire_kind` from `core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaEntry {
    /// Source core of the run.
    pub core: u8,
    /// Wire kind of the run.
    pub wire_kind: u8,
    /// Number of items in the run.
    pub count: u16,
}

/// Size of one encoded [`MetaEntry`].
pub const META_ENTRY_BYTES: usize = 4;

/// A fully assembled transmission packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The encoded packet: `[seq:u32][n_meta:u16][meta…][payload…][crc:u32]`.
    ///
    /// The sequence number lets the receiver restore packet order under
    /// the out-of-order delivery non-blocking links can exhibit
    /// (paper §4.5 "ordered parsing"), and the CRC32 trailer covers
    /// everything before it so in-flight corruption or truncation is
    /// *detected* rather than misdecoded. The buffer is pooled: once every
    /// owner is done (typically after the consumer decodes it), it
    /// returns to the packer's [`BufferPool`] for the next packet.
    pub bytes: PooledBuf,
    /// Number of wire items inside.
    pub items: u32,
}

impl Packet {
    /// Total encoded length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` for a packet with no items (never produced).
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }
}

/// Type-level packing (paper Fig. 7): compacts the valid entries of one
/// event type's hardware slots into `packed`. The K-th output is the K-th
/// valid input — in RTL this is a prefix-counter mux-tree; here the
/// semantics are the same selection function. `packed` is cleared first
/// and is meant to be reused across cycles so the steady state never
/// reallocates.
pub fn type_level_pack<T: Clone>(slots: &[Option<T>], packed: &mut Vec<T>) {
    packed.clear();
    for (i, slot) in slots.iter().enumerate() {
        // prefix_valids(i) == packed.len() by induction: entry i lands at
        // output index equal to the number of valid entries before it.
        debug_assert!(packed.len() <= i);
        if let Some(v) = slot {
            packed.push(v.clone());
        }
    }
}

/// Running statistics of a packer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PackStats {
    /// Packets emitted.
    pub packets: u64,
    /// Total packet bytes emitted.
    pub bytes: u64,
    /// Total payload (non-meta, non-padding) bytes.
    pub payload_bytes: u64,
    /// Items packed.
    pub items: u64,
    /// Differenced items dropped because nothing changed (paper §4.3:
    /// unchanged fields are never transmitted).
    pub diff_dropped: u64,
}

impl PackStats {
    /// Mean packet fill (payload / total).
    pub fn utilization(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.bytes as f64
        }
    }
}

/// Idle packet buffers a packer's default pool retains. Sized to cover a
/// deep in-flight queue (producer → channel → consumer) with headroom so
/// the steady state never allocates.
pub const DEFAULT_POOL_SLOTS: usize = 64;

/// The hardware-side tight packer (cycle + transmission levels).
#[derive(Debug)]
pub struct BatchUnit {
    capacity: usize,
    diff: DiffCache,
    meta: Vec<MetaEntry>,
    payload: Vec<u8>,
    /// Scratch for one item's encoded body, reused across items.
    body: Vec<u8>,
    items: u32,
    next_seq: u32,
    stats: PackStats,
    pool: BufferPool,
}

impl BatchUnit {
    /// Creates a packer emitting packets of at most `capacity` bytes,
    /// recycling buffers through a private pool.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` cannot hold one maximal item (≤ 1 KiB).
    pub fn new(cores: usize, capacity: usize) -> Self {
        Self::with_pool(cores, capacity, BufferPool::new(DEFAULT_POOL_SLOTS))
    }

    /// Creates a packer drawing packet buffers from a caller-supplied
    /// (possibly shared) pool.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` cannot hold one maximal item (≤ 1 KiB).
    pub fn with_pool(cores: usize, capacity: usize, pool: BufferPool) -> Self {
        assert!(capacity >= 1024, "packet capacity too small: {capacity}");
        BatchUnit {
            capacity,
            diff: DiffCache::new(cores),
            meta: Vec::new(),
            payload: Vec::new(),
            body: Vec::new(),
            items: 0,
            next_seq: 0,
            stats: PackStats::default(),
            pool,
        }
    }

    /// Packer statistics.
    pub fn stats(&self) -> &PackStats {
        &self.stats
    }

    /// The buffer pool packets are drawn from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn current_len(&self) -> usize {
        4 + 2 + self.meta.len() * META_ENTRY_BYTES + self.payload.len() + CRC_TRAILER_BYTES
    }

    /// Packs one cycle's wire items, emitting any packets that filled.
    pub fn push_cycle(&mut self, items: &[WireItem], out: &mut Vec<Packet>) {
        for item in items {
            self.body.clear();
            // NOTE: diff encoding mutates the cache, so the item must be
            // committed to the current packet (or dropped) once encoded.
            if !encode_item_body(item, &mut self.diff, &mut self.body) {
                // Vacuous diff: byte-identical to the previous same-kind
                // event; the hardware transmits nothing.
                self.stats.diff_dropped += 1;
                continue;
            }
            let kind = item.wire_kind().to_u8();
            let core = item.core();

            // Transmission level: flush when this item cannot fit.
            let extends_run = matches!(
                self.meta.last(),
                Some(m) if m.wire_kind == kind && m.core == core && m.count < u16::MAX
            );
            let needed = self.body.len() + if extends_run { 0 } else { META_ENTRY_BYTES };
            if self.current_len() + needed > self.capacity && self.items > 0 {
                self.flush_packet(out);
            }

            match self.meta.last_mut() {
                Some(m) if m.wire_kind == kind && m.core == core && m.count < u16::MAX => {
                    m.count += 1;
                }
                _ => self.meta.push(MetaEntry {
                    core,
                    wire_kind: kind,
                    count: 1,
                }),
            }
            self.payload.extend_from_slice(&self.body);
            self.items += 1;
        }
    }

    /// Packs one Plain event straight into the packet's payload buffer —
    /// the producer-side zero-materialization fast path. The fixed layout
    /// means the item's size is known *before* encoding, so the flush
    /// check runs first and the bytes are then written in place: no
    /// [`WireItem`] is built, no per-item body scratch is filled and
    /// copied.
    #[inline]
    pub fn push_plain(&mut self, core: u8, event: &Event, out: &mut Vec<Packet>) {
        let kind = WireKind::Plain(event.kind()).to_u8();
        let extends_run = matches!(
            self.meta.last(),
            Some(m) if m.wire_kind == kind && m.core == core && m.count < u16::MAX
        );
        let needed = event.encoded_len() + if extends_run { 0 } else { META_ENTRY_BYTES };
        if self.current_len() + needed > self.capacity && self.items > 0 {
            self.flush_packet(out);
        }
        match self.meta.last_mut() {
            Some(m) if m.wire_kind == kind && m.core == core && m.count < u16::MAX => {
                m.count += 1;
            }
            _ => self.meta.push(MetaEntry {
                core,
                wire_kind: kind,
                count: 1,
            }),
        }
        event.encode_into(&mut self.payload);
        self.items += 1;
    }

    /// Flushes the partially filled packet, if any.
    pub fn flush(&mut self, out: &mut Vec<Packet>) {
        if self.items > 0 {
            self.flush_packet(out);
        }
    }

    fn flush_packet(&mut self, out: &mut Vec<Packet>) {
        let mut bytes = self.pool.acquire();
        bytes.reserve(self.current_len());
        let mut w = Writer::new(&mut bytes);
        w.u32(self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(1);
        w.u16(self.meta.len() as u16);
        for m in &self.meta {
            w.u8(m.core);
            w.u8(m.wire_kind);
            w.u16(m.count);
        }
        bytes.extend_from_slice(&self.payload);
        append_crc_frame(&mut bytes);

        self.stats.packets += 1;
        self.stats.bytes += bytes.len() as u64;
        self.stats.payload_bytes += self.payload.len() as u64;
        self.stats.items += self.items as u64;

        out.push(Packet {
            bytes,
            items: self.items,
        });
        self.meta.clear();
        self.payload.clear();
        self.items = 0;
    }
}

/// Best-effort read of a packed frame's sequence number (its first four
/// little-endian bytes), without CRC verification. Link recovery uses
/// this to guess which packet a damaged frame was; the value comes from
/// unverified bytes, so callers must validate it (e.g. by retention-ring
/// lookup) before acting on it.
pub fn peek_packet_seq(bytes: &[u8]) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

/// The software-side meta-guided dynamic unpacker (paper §4.2.2), with
/// sequence-based reassembly of out-of-order packets (paper §4.5).
#[derive(Debug)]
pub struct Unpacker {
    diff: DiffCache,
    expected_seq: u32,
    /// Early arrivals waiting for the sequence gap to fill.
    reorder: std::collections::BTreeMap<u32, Vec<u8>>,
}

impl Unpacker {
    /// Creates an unpacker mirroring `cores` diff caches.
    pub fn new(cores: usize) -> Self {
        Unpacker {
            diff: DiffCache::new(cores),
            expected_seq: 0,
            reorder: std::collections::BTreeMap::new(),
        }
    }

    /// Packets received ahead of a sequence gap, not yet deliverable.
    pub fn buffered_packets(&self) -> usize {
        self.reorder.len()
    }

    /// The sequence number the unpacker delivers next. When
    /// [`buffered_packets`](Self::buffered_packets) is non-zero, this is
    /// the missing packet a recovery layer should request retransmission
    /// of.
    pub fn expected_seq(&self) -> u32 {
        self.expected_seq
    }

    /// Decodes one packet back into wire items.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed metadata or payload.
    pub fn unpack(&mut self, packet: &Packet) -> Result<Vec<WireItem>, CodecError> {
        self.unpack_bytes(&packet.bytes)
    }

    /// Accepts a packet in arrival order, which may differ from send order
    /// on a non-blocking link. In-order packets decode immediately
    /// (together with any buffered successors they unblock); early packets
    /// are buffered and yield an empty batch.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed packets or on a stale/duplicate
    /// sequence number (the link never replays old packets).
    pub fn unpack_bytes(&mut self, bytes: &[u8]) -> Result<Vec<WireItem>, CodecError> {
        let mut items = Vec::new();
        self.unpack_bytes_into(bytes, &mut items)?;
        Ok(items)
    }

    /// Allocation-free variant of [`unpack_bytes`](Self::unpack_bytes):
    /// appends decoded items to `out` (which the caller clears and
    /// reuses) and returns how many were appended.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed packets or on a
    /// stale/duplicate sequence number. Packets are validated on
    /// admission, so `out` never holds a partial batch after an error.
    pub fn unpack_bytes_into(
        &mut self,
        bytes: &[u8],
        out: &mut Vec<WireItem>,
    ) -> Result<usize, CodecError> {
        let before = out.len();
        if let Some(body) = self.admit(bytes)? {
            self.visit_admitted(body, &mut |item: WireItemRef<'_>| {
                out.push(item.into_item());
                true
            })?;
        }
        Ok(out.len() - before)
    }

    /// Admits one packet frame: CRC verification, stale/duplicate
    /// sequence rejection, reorder buffering, and a structural
    /// validation walk of the body — everything that can *fail*, with no
    /// checker-visible side effects (the diff mirror is untouched).
    ///
    /// Returns the in-order body (after the sequence word), ready for
    /// [`visit_admitted`](Self::visit_admitted), or `None` when the
    /// packet arrived early and was buffered (early packets are
    /// validated before buffering, so draining them cannot fail).
    ///
    /// The CRC trailer is verified *before* any state (sequence window,
    /// diff caches) is touched, so a corrupted or truncated packet is
    /// rejected without desynchronizing the unpacker: a later clean
    /// retransmission of the same packet decodes normally.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on corrupt, malformed, or stale packets.
    pub fn admit<'a>(&mut self, bytes: &'a [u8]) -> Result<Option<&'a [u8]>, CodecError> {
        let body = verify_crc_frame(bytes)?;
        let mut r = Reader::new(body);
        let seq = r.u32()?;
        if seq.wrapping_sub(self.expected_seq) > u32::MAX / 2 {
            // Sequence numerically behind the expectation: a duplicate or
            // a replayed packet.
            return Err(CodecError::StaleSequence {
                expected: self.expected_seq,
                got: seq,
            });
        }
        Self::validate_body(&body[4..])?;
        if seq != self.expected_seq {
            // Bound the reassembly window: a gap that outlives this many
            // packets means the link lost one, which must surface rather
            // than buffer forever.
            const REORDER_WINDOW: usize = 1024;
            if self.reorder.len() >= REORDER_WINDOW {
                return Err(CodecError::ReorderOverflow {
                    missing: self.expected_seq,
                });
            }
            self.reorder.insert(seq, body.to_vec());
            return Ok(None);
        }
        Ok(Some(&body[4..]))
    }

    /// Streams the items of an admitted in-order body — plus any buffered
    /// successors it unblocks — through `visit` as borrowed
    /// [`WireItemRef`] views, decoding straight out of the packet bytes.
    /// `body` must be the slice [`admit`](Self::admit) just returned.
    /// Returns the number of items visited; `visit` returns `false` to
    /// stop early (remaining items of the stream are dropped, as a halt
    /// verdict ends the run).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed bodies — unreachable for
    /// bodies that passed admission validation.
    pub fn visit_admitted<F>(&mut self, body: &[u8], visit: &mut F) -> Result<usize, CodecError>
    where
        F: FnMut(WireItemRef<'_>) -> bool,
    {
        let mut n = 0usize;
        let mut stopped = self.visit_body(body, visit, &mut n)?;
        self.expected_seq = self.expected_seq.wrapping_add(1);
        while !stopped {
            let Some(next) = self.reorder.remove(&self.expected_seq) else {
                break;
            };
            stopped = self.visit_body(&next[4..], visit, &mut n)?;
            self.expected_seq = self.expected_seq.wrapping_add(1);
        }
        Ok(n)
    }

    /// Validates one packet body structurally (meta table plus every
    /// item's byte extent) without materializing anything or touching
    /// the diff mirror. Fixed-layout runs are skipped in O(1) per run —
    /// this is all the per-byte work the admission path does beyond the
    /// CRC.
    fn validate_body(bytes: &[u8]) -> Result<(), CodecError> {
        let mut r = Reader::new(bytes);
        let n_meta = r.u16()? as usize;
        let payload_at = 2 + n_meta * META_ENTRY_BYTES;
        let mut pr = Reader::new(bytes.get(payload_at..).unwrap_or_default());
        for _ in 0..n_meta {
            let _core = r.u8()?;
            let wire_kind = r.u8()?;
            let count = r.u16()? as usize;
            match WireKind::from_u8(wire_kind)? {
                // Fixed layouts: the whole run's extent in one step.
                WireKind::Plain(k) => {
                    pr.bytes_dyn(count * k.encoded_len())?;
                }
                WireKind::Tagged(k) => {
                    pr.bytes_dyn(count * (16 + k.encoded_len()))?;
                }
                // Self-describing bodies must be walked item by item.
                kind => {
                    for _ in 0..count {
                        validate_item_body(kind, &mut pr)?;
                    }
                }
            }
        }
        pr.finish()
    }

    /// Decodes one validated body, streaming each item through `visit`.
    /// Returns `true` when `visit` stopped the stream.
    fn visit_body<F>(
        &mut self,
        bytes: &[u8],
        visit: &mut F,
        n: &mut usize,
    ) -> Result<bool, CodecError>
    where
        F: FnMut(WireItemRef<'_>) -> bool,
    {
        let mut mr = Reader::new(bytes);
        let n_meta = mr.u16()? as usize;
        let payload_at = 2 + n_meta * META_ENTRY_BYTES;
        let mut pr = Reader::new(bytes.get(payload_at..).unwrap_or_default());
        for _ in 0..n_meta {
            let core = mr.u8()?;
            let wire_kind = mr.u8()?;
            let count = mr.u16()?;
            let kind = WireKind::from_u8(wire_kind)?;
            for _ in 0..count {
                let item = decode_item_ref_body(kind, core, &mut self.diff, &mut pr)?;
                *n += 1;
                if !visit(item) {
                    return Ok(true);
                }
            }
        }
        pr.finish()?;
        Ok(false)
    }
}

/// The fixed-offset baseline packer of prior work (paper Fig. 5 top):
/// every provisioned slot of the slot table occupies packet space each
/// cycle, valid or not.
#[derive(Debug)]
pub struct FixedOffsetPacker {
    slots: SlotTable,
    cores: u32,
    /// Valid payload bytes seen (for the bubble-ratio statistic).
    pub valid_bytes: u64,
    /// Total layout bytes emitted.
    pub layout_bytes: u64,
}

impl FixedOffsetPacker {
    /// Creates a fixed-offset packer over a DUT's slot provisioning.
    pub fn new(slots: SlotTable, cores: u32) -> Self {
        FixedOffsetPacker {
            slots,
            cores,
            valid_bytes: 0,
            layout_bytes: 0,
        }
    }

    /// Bytes of one per-cycle layout (all cores).
    pub fn cycle_layout_bytes(&self) -> usize {
        self.slots.fixed_layout_bytes() * self.cores as usize
    }

    /// Encodes one cycle: every slot is emitted, bubbles as zeroes.
    /// Returns the encoded layout.
    ///
    /// Events beyond a kind's slot count are dropped (hardware would have
    /// back-pressured; the DUT model already respects the budget).
    pub fn pack_cycle(&mut self, events: &[MonitoredEvent]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.cycle_layout_bytes());
        let pairs: Vec<(EventKind, u8)> = self.slots.iter().collect();
        for core in 0..self.cores as u8 {
            for (kind, slots) in pairs.iter().copied() {
                let mut filled = 0u8;
                for ev in events
                    .iter()
                    .filter(|e| e.core == core && e.event.kind() == kind)
                {
                    if filled >= slots {
                        break;
                    }
                    bytes.push(1);
                    ev.event.encode_into(&mut bytes);
                    self.valid_bytes += 1 + kind.encoded_len() as u64;
                    filled += 1;
                }
                for _ in filled..slots {
                    bytes.push(0);
                    bytes.resize(bytes.len() + kind.encoded_len(), 0);
                }
            }
        }
        self.layout_bytes += bytes.len() as u64;
        bytes
    }

    /// Decodes a fixed layout back into `(core, event)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation.
    pub fn unpack_cycle(&self, bytes: &[u8]) -> Result<Vec<(u8, Event)>, CodecError> {
        let mut r = Reader::new(bytes);
        let mut out = Vec::new();
        for core in 0..self.cores as u8 {
            for (kind, slots) in self.slots.iter() {
                for _ in 0..slots {
                    let valid = r.u8()?;
                    let payload = r.bytes_dyn(kind.encoded_len())?;
                    if valid != 0 {
                        out.push((core, Event::decode(kind, payload)?));
                    }
                }
            }
        }
        r.finish()?;
        Ok(out)
    }

    /// Fraction of emitted layout bytes that were bubbles.
    pub fn bubble_ratio(&self) -> f64 {
        if self.layout_bytes == 0 {
            0.0
        } else {
            1.0 - self.valid_bytes as f64 / self.layout_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_event::{InstrCommit, IntWriteback, OrderTag, StoreEvent, Token};

    fn plain(core: u8, event: Event) -> WireItem {
        WireItem::Plain { core, event }
    }

    fn commit(pc: u64) -> Event {
        InstrCommit {
            pc,
            ..Default::default()
        }
        .into()
    }

    #[test]
    fn type_level_pack_selects_kth_valid() {
        let mut packed = Vec::new();
        let slots = [Some(1), None, Some(2), None, Some(3), None];
        type_level_pack(&slots, &mut packed);
        assert_eq!(packed, vec![1, 2, 3]);
        // The scratch is reused — cleared each cycle, capacity retained.
        let cap = packed.capacity();
        let empty: [Option<i32>; 4] = [None; 4];
        type_level_pack(&empty, &mut packed);
        assert!(packed.is_empty());
        assert_eq!(packed.capacity(), cap);
    }

    #[test]
    fn pack_unpack_identity() {
        let mut packer = BatchUnit::new(1, 4096);
        let mut unpacker = Unpacker::new(1);
        let items: Vec<WireItem> = (0..10)
            .map(|i| plain(0, commit(0x8000_0000 + 4 * i)))
            .chain((0..3).map(|i| {
                plain(
                    0,
                    StoreEvent {
                        addr: 0x8000_1000 + i,
                        data: i,
                        mask: 0xff,
                    }
                    .into(),
                )
            }))
            .collect();
        let mut out = Vec::new();
        packer.push_cycle(&items, &mut out);
        packer.flush(&mut out);
        assert_eq!(out.len(), 1);
        let back = unpacker.unpack(&out[0]).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn runs_share_meta_entries() {
        let mut packer = BatchUnit::new(1, 4096);
        let items: Vec<WireItem> = (0..5).map(|i| plain(0, commit(i))).collect();
        let mut out = Vec::new();
        packer.push_cycle(&items, &mut out);
        packer.flush(&mut out);
        // Sequence (4B) + u16 meta count + one meta entry + 5 commits +
        // CRC trailer.
        let expected =
            4 + 2 + META_ENTRY_BYTES + 5 * EventKind::InstrCommit.encoded_len() + CRC_TRAILER_BYTES;
        assert_eq!(out[0].len(), expected);
    }

    #[test]
    fn packets_split_when_full() {
        let mut packer = BatchUnit::new(1, 1024);
        let mut unpacker = Unpacker::new(1);
        let items: Vec<WireItem> = (0..200).map(|i| plain(0, commit(i))).collect();
        let mut out = Vec::new();
        packer.push_cycle(&items, &mut out);
        packer.flush(&mut out);
        assert!(out.len() > 1, "must split across packets");
        for p in &out {
            assert!(p.len() <= 1024, "packet overflow: {}", p.len());
        }
        let back: Vec<WireItem> = out
            .iter()
            .flat_map(|p| unpacker.unpack(p).unwrap())
            .collect();
        assert_eq!(back, items);
        assert!(packer.stats().utilization() > 0.9);
    }

    #[test]
    fn out_of_order_packets_reassemble() {
        let mut packer = BatchUnit::new(1, 1024);
        let mut unpacker = Unpacker::new(1);
        let items: Vec<WireItem> = (0..200).map(|i| plain(0, commit(i))).collect();
        let mut packets = Vec::new();
        packer.push_cycle(&items, &mut packets);
        packer.flush(&mut packets);
        assert!(packets.len() >= 4, "need several packets to shuffle");
        packets.swap(1, 3);
        packets.swap(0, 2);
        let mut decoded = Vec::new();
        for p in &packets {
            decoded.extend(unpacker.unpack(p).unwrap());
        }
        assert_eq!(
            decoded, items,
            "arrival order differs, delivery order holds"
        );
        assert_eq!(unpacker.buffered_packets(), 0);
    }

    #[test]
    fn duplicate_packet_is_a_stale_sequence_error() {
        let mut packer = BatchUnit::new(1, 4096);
        let mut unpacker = Unpacker::new(1);
        let items: Vec<WireItem> = (0..3).map(|i| plain(0, commit(i))).collect();
        let mut packets = Vec::new();
        packer.push_cycle(&items, &mut packets);
        packer.flush(&mut packets);
        unpacker.unpack(&packets[0]).unwrap();
        let err = unpacker.unpack(&packets[0]).unwrap_err();
        assert!(matches!(
            err,
            CodecError::StaleSequence {
                expected: 1,
                got: 0
            }
        ));
    }

    #[test]
    fn diff_items_survive_packet_boundaries() {
        // Diff caches on both sides must stay in sync even when diffs land
        // in different packets.
        let mut packer = BatchUnit::new(1, 1024);
        let mut unpacker = Unpacker::new(1);
        let mut items = Vec::new();
        let mut regs = [0u64; 32];
        for i in 0..40u64 {
            regs[(i % 32) as usize] = i;
            items.push(WireItem::Diff {
                core: 0,
                tag: OrderTag(i),
                token: Token(i),
                event: difftest_event::ArchIntRegState { regs }.into(),
            });
        }
        let mut out = Vec::new();
        packer.push_cycle(&items, &mut out);
        packer.flush(&mut out);
        assert!(out.len() > 1);
        let back: Vec<WireItem> = out
            .iter()
            .flat_map(|p| unpacker.unpack(p).unwrap())
            .collect();
        assert_eq!(back, items);
    }

    #[test]
    fn fixed_offset_round_trip_and_bubbles() {
        let slots =
            SlotTable::from_pairs(&[(EventKind::InstrCommit, 4), (EventKind::IntWriteback, 4)]);
        let mut p = FixedOffsetPacker::new(slots, 1);
        let events = vec![
            MonitoredEvent {
                core: 0,
                cycle: 0,
                order: OrderTag(0),
                token: Token(0),
                event: commit(0x8000_0000),
            },
            MonitoredEvent {
                core: 0,
                cycle: 0,
                order: OrderTag(0),
                token: Token(1),
                event: IntWriteback { idx: 3, data: 9 }.into(),
            },
        ];
        let layout = p.pack_cycle(&events);
        assert_eq!(layout.len(), p.cycle_layout_bytes());
        let back = p.unpack_cycle(&layout).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].1, events[0].event);
        // 2 of 8 slots valid: bubbles dominate.
        assert!(p.bubble_ratio() > 0.5, "bubbles {}", p.bubble_ratio());
    }
}
