//! Snapshot-based debugging: the prior-work baseline Replay replaces
//! (paper §4.4, Fig. 10).
//!
//! Before DiffTest-H, recovering instruction-level detail after a fused
//! mismatch meant snapshotting the *entire DUT* periodically and
//! re-executing it from the nearest checkpoint. This module implements that
//! strategy faithfully so its costs can be compared against Replay:
//!
//! - snapshots clone the whole DUT and the checker's REF states, which
//!   requires *quiescing* the acceleration pipeline (flushing fusion
//!   windows and partial packets) at every snapshot point;
//! - on a mismatch, the DUT is restored and re-executed cycle by cycle,
//!   regenerating the full unfused event stream until the failure
//!   reproduces.
//!
//! Replay instead buffers original events in a token ring and retransmits
//! only the failing range — no DUT re-execution, no multi-megabyte
//! snapshots, no quiesce-induced fusion breaks.

use difftest_dut::{BugSpec, Dut, DutConfig};
use difftest_ref::{Memory, RefModel};
use difftest_workload::Workload;

use crate::checker::{Checker, Mismatch, Verdict};
use crate::engine::RunOutcome;
use crate::transport::{AccelUnit, SwUnit, Transfer};
use crate::wire::WireItem;

/// Outcome and cost accounting of a snapshot-debugged run.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// The mismatch detected on the fused stream, if any.
    pub coarse: Option<Mismatch>,
    /// The instruction-level mismatch recovered by re-execution, if any.
    pub precise: Option<Mismatch>,
    /// DUT cycles simulated in the main run.
    pub cycles: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Bytes held by one snapshot (DUT footprint; the dominant cost).
    pub snapshot_bytes: u64,
    /// Cycles re-executed from the restored snapshot to reproduce the bug.
    pub reexecuted_cycles: u64,
    /// Unfused events regenerated during re-execution.
    pub regenerated_events: u64,
}

/// A decode failure on the in-process perfect link is host-side corruption:
/// it surfaces as a mismatch at the checker's *current* sequence for the
/// transfer's routing core — not `seq: 0`, which would incorrectly outrank
/// every real mismatch under the lowest-(seq, core) aggregation rule.
fn decode_failure(checker: &Checker, core: u8, err: &str) -> Mismatch {
    Mismatch {
        core,
        seq: checker.seq(core),
        check: "wire.decode".into(),
        expected: "well-formed transfer".into(),
        actual: err.to_owned(),
    }
}

/// Runs a squash-fused co-simulation debugged by periodic whole-DUT
/// snapshots (interval in cycles), reproducing the prior-work flow of
/// paper Fig. 10 for comparison against Replay.
///
/// `snapshot_interval == 0` is clamped to 1 (snapshot every cycle) rather
/// than silently disabling snapshots, which would make `precise`
/// localization return `None` with no signal.
pub fn snapshot_debug_run(
    dut_cfg: DutConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    snapshot_interval: u64,
    max_cycles: u64,
) -> SnapshotReport {
    let snapshot_interval = snapshot_interval.max(1);
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());
    let cores = dut_cfg.cores as usize;

    // Kept for the debug flow: a mismatch before the first periodic
    // snapshot re-executes from reset instead of a snapshot.
    let re_cfg = dut_cfg.clone();
    let re_bugs = bugs.clone();

    let mut dut = Dut::new(dut_cfg, &image, bugs);
    let mut accel = AccelUnit::squash_batch(cores, 4096, 32, false);
    let mut sw = SwUnit::packed(cores);
    let refs: Vec<RefModel> = (0..cores).map(|_| RefModel::new(image.clone())).collect();
    let mut checker = Checker::new(refs, false);

    let mut snapshot: Option<(Dut, Vec<(RefModel, u64)>)> = None;
    let mut snapshots_taken = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut transfers: Vec<Transfer> = Vec::new();
    let mut events_buf = Vec::new();
    let mut coarse = None;
    let mut halt = None;

    let process = |sw: &mut SwUnit,
                   checker: &mut Checker,
                   transfers: &mut Vec<Transfer>|
     -> Result<Option<Verdict>, Mismatch> {
        for t in transfers.drain(..) {
            // The snapshot baseline runs in-process over a perfect link;
            // a decode failure here means host-side corruption, which
            // surfaces as a (non-localizable) mismatch on the transfer's
            // routing core rather than a panic.
            let items = sw
                .decode(&t)
                .map_err(|e| decode_failure(checker, t.core, &e.to_string()))?;
            for item in items {
                match checker.process(item)? {
                    Verdict::Continue => {}
                    v @ Verdict::Halt { .. } => return Ok(Some(v)),
                }
            }
        }
        Ok(None)
    };

    'run: while dut.halted().is_none() && dut.cycles() < max_cycles {
        // Periodic snapshot: quiesce the pipeline first (flush fusion
        // windows and partial packets, check everything) — the structural
        // cost snapshotting imposes on fusion. Cycle 0 is skipped: a
        // snapshot before any execution is the reset state, which the
        // debug flow can rebuild for free.
        if dut.cycles() > 0 && dut.cycles().is_multiple_of(snapshot_interval) {
            accel.flush(&mut transfers);
            match process(&mut sw, &mut checker, &mut transfers) {
                Ok(Some(v)) => {
                    halt = Some(v);
                    break 'run;
                }
                Ok(None) => {}
                Err(m) => {
                    coarse = Some(m);
                    break 'run;
                }
            }
            match checker.finalize() {
                Ok(Verdict::Continue) => {}
                Ok(v) => {
                    halt = Some(v);
                    break 'run;
                }
                Err(m) => {
                    coarse = Some(m);
                    break 'run;
                }
            }
            // `snapshot_refs` hands out borrows; the snapshot strategy is
            // the one place that genuinely pays for owned copies.
            let refs: Vec<_> = checker
                .snapshot_refs()
                .into_iter()
                .map(|(r, s)| (r.clone(), s))
                .collect();
            snapshot = Some((dut.clone(), refs));
            snapshots_taken += 1;
            snapshot_bytes = dut.snapshot_footprint();
        }

        events_buf.clear();
        dut.tick_into(&mut events_buf);
        accel.push_cycle(&events_buf, &mut transfers);
        match process(&mut sw, &mut checker, &mut transfers) {
            Ok(Some(v)) => {
                halt = Some(v);
                break 'run;
            }
            Ok(None) => {}
            Err(m) => {
                coarse = Some(m);
                break 'run;
            }
        }
    }

    if coarse.is_none() && halt.is_none() {
        accel.flush(&mut transfers);
        match process(&mut sw, &mut checker, &mut transfers) {
            Ok(v) => {
                halt = v;
                if halt.is_none() {
                    match checker.finalize() {
                        Ok(v) => halt = Some(v),
                        Err(m) => coarse = Some(m),
                    }
                }
            }
            Err(m) => coarse = Some(m),
        }
    }

    // Debug flow: restore the nearest snapshot and re-execute the whole DUT
    // to regenerate unfused events until the failure reproduces.
    let mut precise = None;
    let mut reexecuted_cycles = 0u64;
    let mut regenerated_events = 0u64;
    if coarse.is_some() {
        // A mismatch before the first periodic snapshot falls back to the
        // reset state (a fresh DUT and fresh REFs), so localization still
        // works without the wasted cycle-0 whole-DUT copy.
        let (mut re_dut, refs) = snapshot.take().unwrap_or_else(|| {
            let refs = (0..cores)
                .map(|_| (RefModel::new(image.clone()), 0u64))
                .collect();
            (Dut::new(re_cfg, &image, re_bugs), refs)
        });
        {
            let mut re_checker = Checker::resume(refs, false);
            'replay: while re_dut.halted().is_none() && re_dut.cycles() < max_cycles {
                let out = re_dut.tick();
                reexecuted_cycles += 1;
                for ev in out.events {
                    regenerated_events += 1;
                    let item = WireItem::Plain {
                        core: ev.core,
                        event: ev.event,
                    };
                    match re_checker.process(item) {
                        Ok(_) => {}
                        Err(m) => {
                            precise = Some(m);
                            break 'replay;
                        }
                    }
                }
            }
        }
    }

    let outcome = if coarse.is_some() {
        RunOutcome::Mismatch
    } else {
        match halt {
            Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
            Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
            _ => RunOutcome::MaxCycles,
        }
    };

    SnapshotReport {
        outcome,
        coarse,
        precise,
        cycles: dut.cycles(),
        snapshots: snapshots_taken,
        snapshot_bytes,
        reexecuted_cycles,
        regenerated_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_dut::BugKind;

    #[test]
    fn snapshot_flow_localizes_a_bug() {
        let w = Workload::linux_boot().seed(41).iterations(300).build();
        let r = snapshot_debug_run(
            DutConfig::xiangshan_minimal(),
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 6_000)],
            2_000,
            200_000,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        let precise = r.precise.expect("re-execution reproduces the bug");
        assert!(precise.check.contains("commit"), "{precise}");
        assert!(r.snapshots > 1);
        assert!(r.reexecuted_cycles > 0);
        assert!(r.snapshot_bytes > 10_000, "snapshots copy the DUT state");
    }

    #[test]
    fn snapshot_flow_passes_clean_runs() {
        let w = Workload::microbench().seed(41).iterations(40).build();
        let r = snapshot_debug_run(DutConfig::nutshell(), &w, Vec::new(), 5_000, 400_000);
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert!(r.precise.is_none());
    }

    /// Regression: cycle 0 used to satisfy `is_multiple_of(interval)` and
    /// clone the whole DUT before a single cycle had executed. With an
    /// interval longer than the run, no snapshot should ever be taken.
    #[test]
    fn no_wasted_snapshot_at_cycle_zero() {
        let w = Workload::microbench().seed(41).iterations(40).build();
        let r = snapshot_debug_run(DutConfig::nutshell(), &w, Vec::new(), 1_000_000, 400_000);
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert_eq!(r.snapshots, 0, "interval > run length must snapshot never");
    }

    /// A mismatch that fires before the first periodic snapshot still gets
    /// precise localization: the debug flow re-executes from reset.
    #[test]
    fn bug_before_first_snapshot_localizes_from_reset() {
        let w = Workload::linux_boot().seed(41).iterations(300).build();
        let r = snapshot_debug_run(
            DutConfig::xiangshan_minimal(),
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 6_000)],
            50_000,
            200_000,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert_eq!(r.snapshots, 0, "bug fires before the first snapshot");
        let precise = r.precise.expect("reset re-execution reproduces the bug");
        assert!(precise.check.contains("commit"), "{precise}");
        assert!(r.reexecuted_cycles > 0);
    }

    /// Regression: `snapshot_interval == 0` used to silently disable
    /// snapshots (nothing is a multiple of 0), so `precise` came back
    /// `None` with no signal. It now clamps to snapshot-every-cycle and
    /// localization works.
    #[test]
    fn interval_zero_clamps_instead_of_disabling() {
        let w = Workload::linux_boot().seed(41).iterations(300).build();
        let r = snapshot_debug_run(
            DutConfig::xiangshan_minimal(),
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 500)],
            0,
            100_000,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.snapshots > 0, "interval 0 must not disable snapshots");
        assert!(r.precise.is_some(), "localization must still work");
    }
}
