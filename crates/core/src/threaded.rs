//! A real-threads pipelined runner: hardware/software parallelism with
//! actual concurrency instead of virtual clocks.
//!
//! The engine in [`crate::engine`] *models* non-blocking transmission
//! (paper §4.5) with overlapped virtual timelines. This module demonstrates
//! the same architecture with OS threads: a producer thread runs the DUT
//! and the acceleration unit, a consumer thread runs the shared
//! [`Consumer`](crate::consume::Consumer) pipeline, and a bounded channel
//! between them ([`ChannelSink`]/[`ChannelSource`]) provides the
//! backpressure of the paper's sending/receiving queues. It reports
//! wall-clock throughput rather than simulated KHz.
//
// Seam rule: runner modules build on `session`/`link`/`consume` only —
// never on another runner's internals (enforced by `make ci`'s grep).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel;
use difftest_dut::{BugSpec, DutConfig};
use difftest_stats::{
    export_to_env, FlightRecorder, Phase, PhaseTimer, SpanBuf, PID_CONSUMER, PID_PRODUCER,
};
use difftest_workload::Workload;

use crate::consume::{drive, NoCharge};
use crate::fault::FaultPlan;
use crate::link::{ChannelSink, ChannelSource, FusionWatch};
use crate::session::{DiffConfig, RunCommon, RunOutcome, Session};

/// Result of a threaded run: the shared [`RunCommon`] core plus
/// wall-clock throughput.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// The report core shared by every runner (verdict, volume, link
    /// health, observability).
    pub common: RunCommon,
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

impl Deref for ThreadedReport {
    type Target = RunCommon;

    fn deref(&self) -> &RunCommon {
        &self.common
    }
}

impl DerefMut for ThreadedReport {
    fn deref_mut(&mut self) -> &mut RunCommon {
        &mut self.common
    }
}

/// Runs a co-simulation with the hardware and software sides on separate
/// OS threads, connected by a bounded transfer queue of `queue_depth`.
///
/// Only the packed configurations make sense here ([`DiffConfig::BN`] /
/// [`DiffConfig::BNSD`]); the blocking semantics of `Z`/`B` would serialize
/// the threads anyway.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour.
pub fn run_threaded(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> ThreadedReport {
    run_threaded_faulty(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
    )
}

/// [`run_threaded`] with an optional fault-injecting link between the
/// producer and consumer threads (see [`FaultPlan`]). Decode failures
/// surface as [`RunOutcome::LinkError`] — stale duplicates are dropped
/// and counted; a gap left at end of stream (lost packet, including a
/// tail drop the sequence window alone cannot see) is reported as a
/// [`crate::fault::LinkErrorKind::Gap`]. This runner has no retention
/// ring, so it reports rather than recovers.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_threaded_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> ThreadedReport {
    run_threaded_session(Session::new(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        fault,
    ))
}

/// [`run_threaded_faulty`] on a pre-built [`Session`] — the entry point
/// tests use to inject a [`Tracer`](difftest_stats::Tracer) (via
/// [`Session::with_tracer`]) without touching process environment.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_threaded_session(session: Session) -> ThreadedReport {
    session.require_nonblock("threaded");
    let max_cycles = session.max_cycles();

    let (tx, rx) = channel::bounded(session.queue_depth());
    // Consumer -> producer stop signal (mismatch or trap seen early). An
    // atomic flag cannot race or fill up the way a 1-slot channel could:
    // a second stop reason published while the first is still unread is
    // simply idempotent.
    let stop = Arc::new(AtomicBool::new(false));
    // The shared send path counts packets produced before fault
    // injection; the consumer compares its expected sequence against
    // this after the channel closes to detect drops the reorder window
    // never sees (tail loss).
    let mut link = session
        .send_link(ChannelSink(tx))
        .with_spans(session.span_sink(PID_PRODUCER, 0, "producer", "dut"));
    let produced = link.produced_handle();

    let start = Instant::now();

    let producer = {
        let session = session.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut dut = session.dut();
            let mut accel = session.accel();
            let mut fusion = FusionWatch::default();
            let mut timer = PhaseTimer::monotonic();
            let mut rec = FlightRecorder::default();
            let mut transfers = Vec::new();
            let mut events = Vec::new();
            while dut.halted().is_none() && dut.cycles() < max_cycles {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let t0 = timer.start();
                events.clear();
                dut.tick_into(&mut events);
                timer.stop(Phase::Tick, t0);
                let t0 = timer.start();
                accel.push_cycle(&events, &mut transfers);
                timer.stop(Phase::Pack, t0);
                fusion.observe(&accel, !transfers.is_empty(), 0, dut.cycles(), &mut rec);
                let t0 = timer.start();
                let alive = link.feed(&mut transfers, &mut rec, dut.cycles());
                timer.stop(Phase::Transport, t0);
                if !alive {
                    // Receiver gone: it already decided the run.
                    break;
                }
            }
            let t0 = timer.start();
            accel.flush(&mut transfers);
            timer.stop(Phase::Pack, t0);
            let t0 = timer.start();
            if link.feed(&mut transfers, &mut rec, dut.cycles()) {
                // Release transfers still held for reordering.
                link.finish();
            }
            timer.stop(Phase::Transport, t0);
            let fault_stats = link.fault_stats();
            let spans = link.take_spans();
            drop(link); // closes the channel: end of stream
            (
                dut.cycles(),
                dut.total_commits(),
                fault_stats,
                timer.times(),
                rec.snapshot(),
                spans,
            )
        })
    };

    let consumer = {
        let session = session.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut source = ChannelSource(rx);
            let mut consumer = session.consumer().with_spans(session.span_sink(
                PID_CONSUMER,
                0,
                "consumer",
                "consumer",
            ));
            let exhausted = drive(&mut source, &mut consumer, || {
                stop.store(true, Ordering::Release);
            });
            if exhausted {
                // The channel closed, so `produced` is final: any packet
                // the receiver still waits on was lost on the link.
                let sent = produced.load(Ordering::Acquire);
                consumer.finish_stream(Some(sent), 0, &mut NoCharge);
            }
            consumer.finish()
        })
    };

    let (cycles, instructions, fault_stats, producer_times, producer_flight, producer_spans) =
        match producer.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        };
    let out = match consumer.join() {
        Ok(v) => v,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    let wall_s = start.elapsed().as_secs_f64();

    let outcome = if out.mismatch.is_some() {
        RunOutcome::Mismatch
    } else if let Some((kind, seq, core)) = out.link_error {
        RunOutcome::LinkError { kind, seq, core }
    } else {
        match out.verdict {
            Some(crate::checker::Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
            Some(crate::checker::Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
            _ => RunOutcome::MaxCycles,
        }
    };

    let mut metrics = out.metrics;
    metrics.phases.merge(&producer_times);
    metrics.counters.set("hw.cycles", cycles);
    metrics.counters.set("hw.instructions", instructions);
    let bufs: Vec<SpanBuf> = [producer_spans, out.spans]
        .into_iter()
        .filter(|b| !b.is_empty())
        .collect();
    crate::session::export_trace(session.tracer(), &bufs, &mut metrics);
    let flight = match outcome {
        RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
            // Producer-side context (sends, fusion) first, then the
            // failing consumer's view of arrivals and the verdict.
            let mut snap = producer_flight;
            snap.append(&out.flight);
            Some(snap)
        }
        _ => None,
    };
    if let Err(e) = export_to_env("threaded", &metrics, flight.as_ref()) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }

    ThreadedReport {
        common: RunCommon {
            outcome,
            mismatch: out.mismatch,
            cycles,
            instructions,
            items: out.items,
            link: out.link,
            fault: fault_stats,
            metrics,
            flight,
        },
        wall_s,
        cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_dut::BugKind;

    #[test]
    fn threaded_run_reaches_good_trap() {
        let w = Workload::microbench().seed(2).iterations(50).build();
        let r = run_threaded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert!(r.items > 0);
        assert!(r.cycles_per_sec > 0.0);
    }

    #[test]
    fn threaded_run_detects_bugs() {
        let w = Workload::linux_boot().seed(2).iterations(300).build();
        let r = run_threaded(
            DutConfig::xiangshan_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    #[should_panic(expected = "non-blocking")]
    fn threaded_run_rejects_blocking_configs() {
        let w = Workload::microbench().seed(2).iterations(5).build();
        let _ = run_threaded(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
        );
    }
}
