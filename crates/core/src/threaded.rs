//! A real-threads pipelined runner: hardware/software parallelism with
//! actual concurrency instead of virtual clocks.
//!
//! The engine in [`crate::engine`] *models* non-blocking transmission
//! (paper §4.5) with overlapped virtual timelines. This module demonstrates
//! the same architecture with OS threads: a producer thread runs the DUT
//! and the acceleration unit, a consumer thread runs the decoder and the
//! ISA checker, and a bounded channel between them provides the
//! backpressure of the paper's sending/receiving queues. It reports
//! wall-clock throughput rather than simulated KHz.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel;
use difftest_dut::{BugSpec, Dut, DutConfig};
use difftest_ref::{Memory, RefModel};
use difftest_stats::{
    export_to_env, FlightKind, FlightRecord, FlightRecorder, FlightSnapshot, Metrics, Phase,
    PhaseTimer,
};
use difftest_workload::Workload;

use crate::batch::peek_packet_seq;
use crate::checker::{Checker, Mismatch, Verdict};
use crate::engine::{DiffConfig, RunOutcome};
use crate::fault::{FaultPlan, FaultStats, FaultyLink, LinkErrorKind, LinkStats};
use crate::transport::{AccelUnit, SwUnit, Transfer};

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// The mismatch, if one was detected.
    pub mismatch: Option<Mismatch>,
    /// DUT cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Wire items checked.
    pub items: u64,
    /// Host wall-clock seconds.
    pub wall_s: f64,
    /// Host-side throughput in DUT cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Link failure counters accumulated by the consumer.
    pub link: LinkStats,
    /// Faults the injected link model applied (`None` on a clean link).
    pub fault: Option<FaultStats>,
    /// The run's observability registry: producer + consumer phase
    /// timing, packet histograms and `obs.*` counters. Exported as JSONL
    /// when `DIFFTEST_OBS=<path>` is set.
    pub metrics: Metrics,
    /// Flight-recorder snapshot (producer records, then consumer
    /// records) attached on [`RunOutcome::Mismatch`] and
    /// [`RunOutcome::LinkError`], `None` on clean runs.
    pub flight: Option<FlightSnapshot>,
}

/// Pushes produced transfers through the (possibly faulty) link and the
/// bounded channel, counting every packet *produced* so the consumer can
/// detect tail loss. Returns `false` once the receiver is gone (`wire`
/// may then still hold unsent transfers — the caller clears it).
pub(crate) fn feed_link(
    link: &mut Option<FaultyLink>,
    produced: &AtomicU32,
    transfers: &mut Vec<Transfer>,
    wire: &mut Vec<Transfer>,
    tx: &channel::Sender<Transfer>,
    rec: &mut FlightRecorder,
    cycle: u64,
) -> bool {
    produced.fetch_add(transfers.len() as u32, Ordering::AcqRel);
    for t in transfers.iter() {
        rec.record(FlightRecord {
            kind: FlightKind::PacketSent,
            core: t.core,
            seq: peek_packet_seq(&t.bytes).unwrap_or(0),
            cycle,
            value: t.bytes.len() as u64,
        });
    }
    match link {
        Some(l) => {
            for t in transfers.drain(..) {
                l.transmit(t, wire);
            }
        }
        None => wire.append(transfers),
    }
    for t in wire.drain(..) {
        // Blocking send: the bounded channel is the paper's sending
        // queue with backpressure.
        if tx.send(t).is_err() {
            return false;
        }
    }
    true
}

/// Runs a co-simulation with the hardware and software sides on separate
/// OS threads, connected by a bounded transfer queue of `queue_depth`.
///
/// Only the packed configurations make sense here ([`DiffConfig::BN`] /
/// [`DiffConfig::BNSD`]); the blocking semantics of `Z`/`B` would serialize
/// the threads anyway.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour.
pub fn run_threaded(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
) -> ThreadedReport {
    run_threaded_faulty(
        dut_cfg,
        config,
        workload,
        bugs,
        max_cycles,
        queue_depth,
        None,
    )
}

/// [`run_threaded`] with an optional fault-injecting link between the
/// producer and consumer threads (see [`FaultPlan`]). Decode failures
/// surface as [`RunOutcome::LinkError`] — stale duplicates are dropped
/// and counted; a gap left at end of stream (lost packet, including a
/// tail drop the sequence window alone cannot see) is reported as a
/// [`LinkErrorKind::Gap`]. This runner has no retention ring, so it
/// reports rather than recovers.
///
/// # Panics
///
/// Panics if a thread dies (a poisoned internal invariant), never on
/// workload behaviour or link faults.
pub fn run_threaded_faulty(
    dut_cfg: DutConfig,
    config: DiffConfig,
    workload: &Workload,
    bugs: Vec<BugSpec>,
    max_cycles: u64,
    queue_depth: usize,
    fault: Option<FaultPlan>,
) -> ThreadedReport {
    assert!(
        config.nonblock(),
        "threaded runner requires a non-blocking configuration"
    );
    let mut image = Memory::new();
    image.load_words(Memory::RAM_BASE, workload.words());
    let cores = dut_cfg.cores as usize;

    let (tx, rx) = channel::bounded::<Transfer>(queue_depth.max(1));
    // Consumer -> producer stop signal (mismatch or trap seen early). An
    // atomic flag cannot race or fill up the way a 1-slot channel could:
    // a second stop reason published while the first is still unread is
    // simply idempotent.
    let stop = Arc::new(AtomicBool::new(false));
    // Packets produced before fault injection: the consumer compares its
    // expected sequence against this after the channel closes to detect
    // drops the reorder window never sees (tail loss).
    let produced = Arc::new(AtomicU32::new(0));

    let start = Instant::now();

    let producer = {
        let image = image.clone();
        let dut_cfg = dut_cfg.clone();
        let stop = Arc::clone(&stop);
        let produced = Arc::clone(&produced);
        thread::spawn(move || {
            let mut dut = Dut::new(dut_cfg, &image, bugs);
            let mut accel = match config {
                DiffConfig::BNSD => AccelUnit::squash_batch(cores, 4096, 32, false),
                _ => AccelUnit::batch(cores, 4096),
            };
            let mut link = fault.map(FaultyLink::new);
            let mut timer = PhaseTimer::monotonic();
            let mut rec = FlightRecorder::default();
            let mut last_fused = 0u64;
            let mut transfers = Vec::new();
            let mut wire = Vec::new();
            let mut events = Vec::new();
            while dut.halted().is_none() && dut.cycles() < max_cycles {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let t0 = timer.start();
                events.clear();
                dut.tick_into(&mut events);
                timer.stop(Phase::Tick, t0);
                let t0 = timer.start();
                accel.push_cycle(&events, &mut transfers);
                timer.stop(Phase::Pack, t0);
                if let Some(s) = accel.squash_stats() {
                    if s.fused_records > last_fused && !transfers.is_empty() {
                        last_fused = s.fused_records;
                        rec.record(FlightRecord {
                            kind: FlightKind::Fusion,
                            core: 0,
                            seq: 0,
                            cycle: dut.cycles(),
                            value: s.fused_records,
                        });
                    }
                }
                let t0 = timer.start();
                let alive = feed_link(
                    &mut link,
                    &produced,
                    &mut transfers,
                    &mut wire,
                    &tx,
                    &mut rec,
                    dut.cycles(),
                );
                timer.stop(Phase::Transport, t0);
                if !alive {
                    return (
                        dut.cycles(),
                        dut.total_commits(),
                        link.map(|l| l.stats()),
                        timer.times(),
                        rec.snapshot(),
                    );
                }
            }
            let t0 = timer.start();
            accel.flush(&mut transfers);
            timer.stop(Phase::Pack, t0);
            let t0 = timer.start();
            let receiver_alive = feed_link(
                &mut link,
                &produced,
                &mut transfers,
                &mut wire,
                &tx,
                &mut rec,
                dut.cycles(),
            );
            if let Some(l) = &mut link {
                // Release transfers still held for reordering.
                l.flush(&mut wire);
                if receiver_alive {
                    for t in wire.drain(..) {
                        if tx.send(t).is_err() {
                            break;
                        }
                    }
                }
            }
            timer.stop(Phase::Transport, t0);
            drop(tx);
            (
                dut.cycles(),
                dut.total_commits(),
                link.map(|l| l.stats()),
                timer.times(),
                rec.snapshot(),
            )
        })
    };

    let consumer = {
        let produced = Arc::clone(&produced);
        thread::spawn(move || {
            let mut sw = SwUnit::packed(cores);
            let refs: Vec<RefModel> = (0..cores).map(|_| RefModel::new(image.clone())).collect();
            let mut checker = Checker::new(refs, false);
            let mut metrics = Metrics::new();
            let h_bytes = metrics.register_histogram("packet.bytes");
            let h_items = metrics.register_histogram("packet.items");
            let g_reorder = metrics.register_gauge("reorder.buffered.max");
            let g_pending = metrics.register_gauge("checker.pending.max");
            let mut timer = PhaseTimer::monotonic();
            let mut rec = FlightRecorder::default();
            let mut item_buf = Vec::new();
            let mut items = 0u64;
            let mut verdict = None;
            let mut mismatch = None;
            let mut link_stats = LinkStats::default();
            let mut link_error = None;
            'recv: for t in rx.iter() {
                let seq = peek_packet_seq(&t.bytes).unwrap_or(0);
                rec.record(FlightRecord {
                    kind: FlightKind::PacketReceived,
                    core: t.core,
                    seq,
                    cycle: 0,
                    value: t.bytes.len() as u64,
                });
                metrics.record(h_bytes, t.bytes.len() as u64);
                metrics.record(h_items, u64::from(t.items));
                metrics.counters.inc("obs.transfers");
                metrics.counters.add("obs.bytes", t.bytes.len() as u64);
                item_buf.clear();
                let t0 = timer.start();
                let decode = sw.decode_into(&t, &mut item_buf);
                timer.stop(Phase::Unpack, t0);
                if let Err(e) = decode {
                    let kind = LinkErrorKind::classify(&e);
                    link_stats.note(kind);
                    if kind == LinkErrorKind::Stale {
                        // A duplicate of a delivered packet: harmless.
                        link_stats.stale_dropped += 1;
                        continue;
                    }
                    let expected = sw.expected_seq().unwrap_or(0);
                    rec.record(FlightRecord {
                        kind: FlightKind::LinkError,
                        core: t.core,
                        seq: expected,
                        cycle: 0,
                        value: kind as u64,
                    });
                    link_error = Some((kind, expected, t.core));
                    stop.store(true, Ordering::Release);
                    break 'recv;
                }
                let t0 = timer.start();
                for item in item_buf.drain(..) {
                    items += 1;
                    match checker.process(item) {
                        Ok(Verdict::Continue) => {}
                        Ok(v @ Verdict::Halt { good, .. }) => {
                            rec.record(FlightRecord {
                                kind: FlightKind::Verdict,
                                core: t.core,
                                seq,
                                cycle: 0,
                                value: u64::from(good),
                            });
                            verdict = Some(v);
                            stop.store(true, Ordering::Release);
                            break;
                        }
                        Err(m) => {
                            rec.record(FlightRecord {
                                kind: FlightKind::Mismatch,
                                core: m.core,
                                seq,
                                cycle: 0,
                                value: m.seq,
                            });
                            mismatch = Some(m);
                            stop.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                timer.stop(Phase::Check, t0);
                // Occupancy high-water marks via GaugeId handles — one
                // indexed store per transfer, no name lookup.
                metrics.set_max(g_reorder, sw.buffered_packets() as u64);
                metrics.set_max(g_pending, checker.pending_items() as u64);
                if verdict.is_some() || mismatch.is_some() {
                    break 'recv;
                }
            }
            if verdict.is_none() && mismatch.is_none() && link_error.is_none() {
                // The channel closed, so `produced` is final: any packet
                // the receiver still waits on was lost on the link.
                let sent = produced.load(Ordering::Acquire);
                let expected = sw.expected_seq().unwrap_or(sent);
                if sw.buffered_packets() > 0 || expected != sent {
                    link_stats.note(LinkErrorKind::Gap);
                    rec.record(FlightRecord {
                        kind: FlightKind::LinkError,
                        core: 0,
                        seq: expected,
                        cycle: 0,
                        value: LinkErrorKind::Gap as u64,
                    });
                    link_error = Some((LinkErrorKind::Gap, expected, 0));
                } else {
                    let t0 = timer.start();
                    let fin = checker.finalize();
                    timer.stop(Phase::Check, t0);
                    match fin {
                        Ok(v @ Verdict::Halt { .. }) => verdict = Some(v),
                        Ok(Verdict::Continue) => {}
                        Err(m) => mismatch = Some(m),
                    }
                }
            }
            metrics.counters.add("obs.items", items);
            metrics.phases.merge(&timer.times());
            (
                items,
                verdict,
                mismatch,
                link_error,
                link_stats,
                metrics,
                rec.snapshot(),
            )
        })
    };

    let (cycles, instructions, fault_stats, producer_times, producer_flight) = match producer.join()
    {
        Ok(v) => v,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    let (items, verdict, mismatch, link_error, link_stats, mut metrics, consumer_flight) =
        match consumer.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        };
    let wall_s = start.elapsed().as_secs_f64();

    let outcome = if mismatch.is_some() {
        RunOutcome::Mismatch
    } else if let Some((kind, seq, core)) = link_error {
        RunOutcome::LinkError { kind, seq, core }
    } else {
        match verdict {
            Some(Verdict::Halt { good: true, .. }) => RunOutcome::GoodTrap,
            Some(Verdict::Halt { good: false, .. }) => RunOutcome::BadTrap,
            _ => RunOutcome::MaxCycles,
        }
    };

    metrics.phases.merge(&producer_times);
    metrics.counters.set("hw.cycles", cycles);
    metrics.counters.set("hw.instructions", instructions);
    let flight = match outcome {
        RunOutcome::Mismatch | RunOutcome::LinkError { .. } => {
            // Producer-side context (sends, fusion) first, then the
            // failing consumer's view of arrivals and the verdict.
            let mut snap = producer_flight;
            snap.append(&consumer_flight);
            Some(snap)
        }
        _ => None,
    };
    if let Err(e) = export_to_env("threaded", &metrics, flight.as_ref()) {
        eprintln!("difftest: {} export failed: {e}", difftest_stats::OBS_ENV);
    }

    ThreadedReport {
        outcome,
        mismatch,
        cycles,
        instructions,
        items,
        wall_s,
        cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
        link: link_stats,
        fault: fault_stats,
        metrics,
        flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftest_dut::BugKind;

    #[test]
    fn threaded_run_reaches_good_trap() {
        let w = Workload::microbench().seed(2).iterations(50).build();
        let r = run_threaded(
            DutConfig::nutshell(),
            DiffConfig::BNSD,
            &w,
            Vec::new(),
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::GoodTrap);
        assert!(r.items > 0);
        assert!(r.cycles_per_sec > 0.0);
    }

    #[test]
    fn threaded_run_detects_bugs() {
        let w = Workload::linux_boot().seed(2).iterations(300).build();
        let r = run_threaded(
            DutConfig::xiangshan_minimal(),
            DiffConfig::BNSD,
            &w,
            vec![BugSpec::new(BugKind::RegWriteCorruption, 5_000)],
            500_000,
            8,
        );
        assert_eq!(r.outcome, RunOutcome::Mismatch);
        assert!(r.mismatch.is_some());
    }

    #[test]
    #[should_panic(expected = "non-blocking")]
    fn threaded_run_rejects_blocking_configs() {
        let w = Workload::microbench().seed(2).iterations(5).build();
        let _ = run_threaded(
            DutConfig::nutshell(),
            DiffConfig::Z,
            &w,
            Vec::new(),
            1_000,
            8,
        );
    }
}
