//! Property tests: every event kind's codec is total over exact-length
//! inputs, encode∘decode is the identity on the byte level, and the
//! borrowed [`EventRef`] view family agrees with the materializing
//! decode path — field reads, matching, and error behavior alike.

use difftest_event::{Event, EventKind, EventRef};
use proptest::prelude::*;

/// Deterministic pseudo-random payload of the kind's exact length.
fn payload(kind: EventKind, seed: u64) -> Vec<u8> {
    (0..kind.encoded_len())
        .map(|i| {
            (seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(i as u32)
                >> 32) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_encode_is_identity_on_bytes(
        kind_idx in 0usize..EventKind::COUNT,
        seed in any::<u64>(),
    ) {
        let kind = EventKind::ALL[kind_idx];
        let bytes = payload(kind, seed);
        let event = Event::decode(kind, &bytes).expect("exact length decodes");
        let mut back = Vec::new();
        event.encode_into(&mut back);
        prop_assert_eq!(back, bytes);
    }

    #[test]
    fn decode_rejects_wrong_lengths(
        kind_idx in 0usize..EventKind::COUNT,
        delta in prop_oneof![Just(-1i64), Just(1i64), Just(7i64)],
    ) {
        let kind = EventKind::ALL[kind_idx];
        let len = (kind.encoded_len() as i64 + delta).max(0) as usize;
        prop_assume!(len != kind.encoded_len());
        let bytes = vec![0u8; len];
        prop_assert!(Event::decode(kind, &bytes).is_err());
    }

    #[test]
    fn view_agrees_with_materializing_decode(
        kind_idx in 0usize..EventKind::COUNT,
        seed in any::<u64>(),
    ) {
        let kind = EventKind::ALL[kind_idx];
        let bytes = payload(kind, seed);
        let event = Event::decode(kind, &bytes).expect("exact length decodes");
        let view = EventRef::parse(kind, &bytes).expect("exact length parses");
        prop_assert_eq!(view.kind(), kind);
        prop_assert_eq!(view.wire_bytes(), bytes.as_slice());
        // View-based checking agrees with the owned event, in both the
        // matching and the fully materializing direction.
        prop_assert!(view.fields_match(&event));
        prop_assert_eq!(view.to_event(), event.clone());
        prop_assert_eq!(view.is_nde(), event.is_nde());
    }

    #[test]
    fn view_detects_any_corrupted_byte(
        kind_idx in 0usize..EventKind::COUNT,
        seed in any::<u64>(),
        flip_pos in any::<u64>(),
        flip_bit in 0u32..8,
    ) {
        let kind = EventKind::ALL[kind_idx];
        let bytes = payload(kind, seed);
        let event = Event::decode(kind, &bytes).expect("exact length decodes");
        let mut corrupt = bytes.clone();
        let pos = (flip_pos % corrupt.len() as u64) as usize;
        corrupt[pos] ^= 1 << flip_bit;
        // The codec is byte-injective (see identity test above), so a
        // flipped bit must break the view/owned agreement — and the view
        // of the corrupted bytes must still match its own decode.
        let view = EventRef::parse(kind, &corrupt).expect("exact length parses");
        prop_assert!(!view.fields_match(&event));
        let reread = Event::decode(kind, &corrupt).expect("exact length decodes");
        prop_assert!(view.fields_match(&reread));
        prop_assert_eq!(view.to_event(), reread);
    }

    #[test]
    fn view_and_decode_return_identical_errors(
        kind_idx in 0usize..EventKind::COUNT,
        delta in prop_oneof![Just(-17i64), Just(-1i64), Just(1i64), Just(7i64)],
    ) {
        let kind = EventKind::ALL[kind_idx];
        let len = (kind.encoded_len() as i64 + delta).max(0) as usize;
        prop_assume!(len != kind.encoded_len());
        let bytes = vec![0u8; len];
        let owned = Event::decode(kind, &bytes).expect_err("wrong length rejected");
        let view = EventRef::parse(kind, &bytes).expect_err("wrong length rejected");
        prop_assert_eq!(view, owned);
    }
}
