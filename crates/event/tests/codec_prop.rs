//! Property tests: every event kind's codec is total over exact-length
//! inputs and encode∘decode is the identity on the byte level.

use difftest_event::{Event, EventKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_encode_is_identity_on_bytes(
        kind_idx in 0usize..EventKind::COUNT,
        seed in any::<u64>(),
    ) {
        let kind = EventKind::ALL[kind_idx];
        // Deterministic pseudo-random payload of the exact length.
        let bytes: Vec<u8> = (0..kind.encoded_len())
            .map(|i| (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(i as u32) >> 32) as u8)
            .collect();
        let event = Event::decode(kind, &bytes).expect("exact length decodes");
        let mut back = Vec::new();
        event.encode_into(&mut back);
        prop_assert_eq!(back, bytes);
    }

    #[test]
    fn decode_rejects_wrong_lengths(
        kind_idx in 0usize..EventKind::COUNT,
        delta in prop_oneof![Just(-1i64), Just(1i64), Just(7i64)],
    ) {
        let kind = EventKind::ALL[kind_idx];
        let len = (kind.encoded_len() as i64 + delta).max(0) as usize;
        prop_assume!(len != kind.encoded_len());
        let bytes = vec![0u8; len];
        prop_assert!(Event::decode(kind, &bytes).is_err());
    }
}
