//! Verification events: the vocabulary of the co-simulation framework.
//!
//! A co-simulation framework extracts *verification events* from the design
//! under test — instruction commits, register updates, memory operations,
//! cache and TLB activity, extension state — and checks them against a
//! golden reference model. This crate defines the 32-type event catalog of
//! the paper's Table 1 together with its binary codecs:
//!
//! - [`Event`] / [`EventKind`] / [`Category`]: the catalog itself, with
//!   encoded sizes spanning 3 B – 512 B (the 170× structural diversity that
//!   motivates semantic-aware packing),
//! - [`MonitoredEvent`] / [`OrderTag`] / [`Token`]: monitor-side stamps for
//!   order-decoupled fusion (Squash) and range-selected replay,
//! - [`wire`]: the little-endian fixed-layout codec primitives.
//!
//! # Examples
//!
//! ```
//! use difftest_event::{Event, EventKind, InstrCommit};
//!
//! let commit = InstrCommit { pc: 0x8000_0000, wen: 1, wdest: 10, wdata: 42,
//!                            ..Default::default() };
//! let ev: Event = commit.into();
//! let mut bytes = Vec::new();
//! ev.encode_into(&mut bytes);
//! assert_eq!(bytes.len(), EventKind::InstrCommit.encoded_len());
//! assert_eq!(Event::decode(EventKind::InstrCommit, &bytes)?, ev);
//! # Ok::<(), difftest_event::CodecError>(())
//! ```

#![warn(missing_docs)]

mod catalog;
mod field;
mod monitor;
pub mod wire;

pub use catalog::{
    commit_flags, ArchEvent, ArchEventRef, ArchFpRegState, ArchFpRegStateRef, ArchIntRegState,
    ArchIntRegStateRef, ArchVecRegState, ArchVecRegStateRef, AtomicEvent, AtomicEventRef, Category,
    CsrState, CsrStateRef, DebugModeState, DebugModeStateRef, Event, EventKind, EventRef,
    FpCsrUpdate, FpCsrUpdateRef, FpWriteback, FpWritebackRef, GuestPageFault, GuestPageFaultRef,
    HCsrUpdate, HCsrUpdateRef, HypervisorCsrState, HypervisorCsrStateRef, InstrCommit,
    InstrCommitRef, IntWriteback, IntWritebackRef, L1TlbEvent, L1TlbEventRef, L2TlbEvent,
    L2TlbEventRef, LoadEvent, LoadEventRef, LrScEvent, LrScEventRef, PtwEvent, PtwEventRef,
    Redirect, RedirectRef, RefillEvent, RefillEventRef, RunaheadEvent, RunaheadEventRef,
    SbufferEvent, SbufferEventRef, StoreEvent, StoreEventRef, TrapEvent, TrapEventRef,
    TriggerCsrState, TriggerCsrStateRef, VecConfig, VecConfigRef, VecCsrState, VecCsrStateRef,
    VecLoad, VecLoadRef, VecStore, VecStoreRef, VecWriteback, VecWritebackRef, VirtualInterrupt,
    VirtualInterruptRef,
};
pub use field::{U64ArrayView, WireField};
pub use monitor::{MonitoredEvent, OrderTag, Token};
pub use wire::CodecError;
