//! Little-endian fixed-layout binary codec primitives.
//!
//! Every verification event encodes to a fixed number of bytes determined by
//! its type — the *structural semantics* the Batch mechanism exploits. The
//! [`Writer`] and [`Reader`] here are deliberately minimal: no framing, no
//! lengths, no tags. All framing lives in the packing layers above.

use std::fmt;

/// Error returned when decoding runs out of bytes or sees an invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the fixed layout was fully read.
    UnexpectedEnd {
        /// Bytes still required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// An event-kind discriminant was out of range.
    BadKind(u8),
    /// Trailing bytes remained after a payload decode that must be exact.
    TrailingBytes(usize),
    /// A transport sequence number was older than the receive window (a
    /// duplicated or replayed packet).
    StaleSequence {
        /// Next sequence number the receiver expects.
        expected: u32,
        /// The stale number that arrived.
        got: u32,
    },
    /// The reorder buffer overflowed: a sequence gap never filled (packet
    /// loss on the link).
    ReorderOverflow {
        /// Sequence number the receiver is still waiting for.
        missing: u32,
    },
    /// The frame's CRC32 trailer did not match its contents: the transfer
    /// was corrupted (or truncated) in flight.
    CrcMismatch {
        /// CRC computed over the received contents.
        expected: u32,
        /// CRC carried in the trailer.
        got: u32,
    },
    /// A structurally invalid field (e.g. an overlong varint).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, available } => write!(
                f,
                "unexpected end of buffer: needed {needed} bytes, {available} available"
            ),
            CodecError::BadKind(k) => write!(f, "invalid event kind discriminant {k}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::StaleSequence { expected, got } => {
                write!(f, "stale packet sequence {got} (expected {expected})")
            }
            CodecError::ReorderOverflow { missing } => {
                write!(f, "reorder buffer overflow: packet {missing} never arrived")
            }
            CodecError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch: computed {expected:#010x}, trailer {got:#010x}"
                )
            }
            CodecError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends fixed-layout little-endian fields to a byte vector.
#[derive(Debug)]
pub struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    /// Wraps `buf` for appending.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Writes a `u8`.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` little-endian.
    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a fixed array of `u64` values.
    #[inline]
    pub fn u64_array(&mut self, vs: &[u64]) {
        for v in vs {
            self.u64(*v);
        }
    }

    /// Writes a fixed array of raw bytes.
    #[inline]
    pub fn bytes(&mut self, vs: &[u8]) {
        self.buf.extend_from_slice(vs);
    }
}

/// Reads fixed-layout little-endian fields from a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` little-endian.
    #[inline]
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32` little-endian.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` little-endian.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `N` `u64` values.
    #[inline]
    pub fn u64_array<const N: usize>(&mut self) -> Result<[u64; N], CodecError> {
        let mut out = [0u64; N];
        for slot in &mut out {
            *slot = self.u64()?;
        }
        Ok(out)
    }

    /// Reads `N` raw bytes.
    #[inline]
    pub fn bytes<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Reads `n` raw bytes with a run-time length.
    #[inline]
    pub fn bytes_dyn(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Fails unless the reader consumed the buffer exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }
}

/// Bytes a CRC32 frame trailer adds to a transfer.
pub const CRC_TRAILER_BYTES: usize = 4;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
/// Slice-by-8 lookup tables: `TABLES[j][b]` is the CRC contribution of
/// byte `b` positioned `j` bytes before the end of an 8-byte group.
/// `TABLES[0]` is the classic byte-at-a-time table (used for the tail).
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = t[0][(t[j - 1][i] & 0xFF) as usize] ^ (t[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    t
};

/// CRC-32 (IEEE 802.3) of `bytes`.
///
/// Slice-by-8: each iteration folds 8 input bytes through 8 independent
/// table lookups, so the serial dependency chain advances once per 8
/// bytes instead of once per byte. Packet payloads dominate the link's
/// byte volume, and this checksum runs over every one of them on both
/// sides, so it sits squarely on the pack/unpack critical path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC32_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends a little-endian CRC32 trailer covering everything currently in
/// `buf`. The matching check is [`verify_crc_frame`].
pub fn append_crc_frame(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Verifies and strips the CRC32 trailer of a frame, returning the covered
/// contents.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEnd`] when the frame is shorter than
/// the trailer itself and [`CodecError::CrcMismatch`] when the trailer
/// does not match the contents (corruption or truncation in flight).
pub fn verify_crc_frame(frame: &[u8]) -> Result<&[u8], CodecError> {
    let Some(body_len) = frame.len().checked_sub(CRC_TRAILER_BYTES) else {
        return Err(CodecError::UnexpectedEnd {
            needed: CRC_TRAILER_BYTES,
            available: frame.len(),
        });
    };
    let (body, trailer) = frame.split_at(body_len);
    let mut raw = [0u8; CRC_TRAILER_BYTES];
    raw.copy_from_slice(trailer);
    let got = u32::from_le_bytes(raw);
    let expected = crc32(body);
    if expected != got {
        return Err(CodecError::CrcMismatch { expected, got });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        r.finish().unwrap();
    }

    #[test]
    fn short_buffer_errors() {
        let buf = [0u8; 3];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEnd { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [0u8; 4];
        let mut r = Reader::new(&buf);
        r.u16().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(2)));
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_frame_round_trip_and_rejection() {
        let mut frame = vec![1, 2, 3, 4, 5];
        append_crc_frame(&mut frame);
        assert_eq!(frame.len(), 5 + CRC_TRAILER_BYTES);
        assert_eq!(verify_crc_frame(&frame).unwrap(), &[1, 2, 3, 4, 5]);

        // Any single bit flip — contents or trailer — is detected.
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                matches!(verify_crc_frame(&bad), Err(CodecError::CrcMismatch { .. })),
                "flip of bit {bit} went undetected"
            );
        }

        // Truncation below the trailer is an UnexpectedEnd, above it a
        // CRC mismatch.
        assert!(matches!(
            verify_crc_frame(&frame[..2]),
            Err(CodecError::UnexpectedEnd { .. })
        ));
        assert!(matches!(
            verify_crc_frame(&frame[..frame.len() - 1]),
            Err(CodecError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn arrays_round_trip() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u64_array(&[1, 2, 3]);
        w.bytes(&[9, 8]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64_array::<3>().unwrap(), [1, 2, 3]);
        assert_eq!(r.bytes::<2>().unwrap(), [9, 8]);
    }
}
