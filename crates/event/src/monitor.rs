//! Monitored-event wrappers: order tags and replay tokens.
//!
//! The DUT-side monitor stamps every captured event with
//!
//! - an [`OrderTag`]: the global commit sequence number the event binds to,
//!   which the Squash mechanism uses to decouple transmission order from
//!   checking order (paper §4.3), and
//! - a [`Token`]: a monotone identifier over the replay buffer, which the
//!   Replay mechanism uses to select the exact retransmission range after a
//!   mismatch (paper §4.4).

use std::fmt;

use crate::catalog::Event;

/// The commit sequence number an event is ordered against.
///
/// An event tagged `OrderTag(n)` must be checked after the instruction with
/// commit sequence `n - 1` and before the instruction with sequence `n`
/// (for interrupt-style events), or belongs to instruction `n` itself (for
/// per-instruction events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OrderTag(pub u64);

impl fmt::Display for OrderTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A monotone token naming an entry of the hardware replay buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Token(pub u64);

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tok{}", self.0)
    }
}

/// An event as captured by the DUT-side monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoredEvent {
    /// Core the event came from.
    pub core: u8,
    /// DUT cycle at capture.
    pub cycle: u64,
    /// Commit-order binding.
    pub order: OrderTag,
    /// Replay-buffer token.
    pub token: Token,
    /// The event payload.
    pub event: Event,
}

impl MonitoredEvent {
    /// Encoded payload size of the wrapped event.
    pub fn encoded_len(&self) -> usize {
        self.event.encoded_len()
    }

    /// Whether the wrapped event is a non-deterministic event.
    pub fn is_nde(&self) -> bool {
        self.event.is_nde()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ArchEvent, StoreEvent};

    #[test]
    fn order_tags_sort() {
        let mut tags = [OrderTag(3), OrderTag(1), OrderTag(2)];
        tags.sort();
        assert_eq!(tags, [OrderTag(1), OrderTag(2), OrderTag(3)]);
        assert_eq!(OrderTag(7).to_string(), "#7");
        assert_eq!(Token(7).to_string(), "tok7");
    }

    #[test]
    fn monitored_event_delegates() {
        let m = MonitoredEvent {
            core: 0,
            cycle: 10,
            order: OrderTag(5),
            token: Token(1),
            event: ArchEvent {
                is_interrupt: 1,
                ..Default::default()
            }
            .into(),
        };
        assert!(m.is_nde());
        assert_eq!(m.encoded_len(), 25);

        let m2 = MonitoredEvent {
            event: StoreEvent::default().into(),
            ..m
        };
        assert!(!m2.is_nde());
    }
}
