//! The verification event catalog: 32 structurally diverse event types.
//!
//! This mirrors Table 1 of the paper: five categories (control flow,
//! register updates, memory access, memory hierarchy, RISC-V extensions)
//! covering 32 event types whose encoded sizes differ by up to 170×
//! (3 bytes for [`RunaheadEvent`] up to 512 bytes for [`ArchVecRegState`]).
//! The variable lengths and distinct layouts are exactly the *structural
//! semantics* that the Batch packing mechanism exploits.

use crate::field::WireField;
use crate::wire::{CodecError, Reader, Writer};

/// The five verification-event categories of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Exceptions, interrupts, commits, traps, redirects.
    ControlFlow,
    /// CSRs, general-purpose/floating-point/vector register files.
    RegisterUpdate,
    /// Load/store/atomic operations.
    MemoryAccess,
    /// Caches, TLBs, store buffers, page-table walks.
    MemoryHierarchy,
    /// Vector/hypervisor extension state.
    Extension,
}

impl Category {
    /// All categories in catalog order.
    pub const ALL: [Category; 5] = [
        Category::ControlFlow,
        Category::RegisterUpdate,
        Category::MemoryAccess,
        Category::MemoryHierarchy,
        Category::Extension,
    ];

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Category::ControlFlow => "Control Flow",
            Category::RegisterUpdate => "Register Updates",
            Category::MemoryAccess => "Memory Access",
            Category::MemoryHierarchy => "Memory Hierarchy",
            Category::Extension => "RISC-V Extensions",
        }
    }
}

/// Generates compile-time-offset field accessors for one borrowed view
/// struct: a token muncher that accumulates each preceding field's
/// `WireField::LEN` into the next accessor's offset, so every read is a
/// direct indexed load from the wire bytes with no runtime cursor.
macro_rules! view_accessors {
    ($refname:ident, $off:expr,) => {};
    ($refname:ident, $off:expr, $field:ident : $ty:ty, $($rest:tt)*) => {
        impl<'a> $refname<'a> {
            #[doc = concat!("Reads the `", stringify!($field),
                "` field straight from the wire bytes.")]
            #[inline]
            pub fn $field(&self) -> <$ty as WireField>::View<'a> {
                <$ty as WireField>::view_at(self.bytes, $off)
            }
        }
        view_accessors!($refname, $off + <$ty as WireField>::LEN, $($rest)*);
    };
}

macro_rules! catalog {
    ($(
        $(#[$meta:meta])*
        ($category:ident) struct $name:ident view $refname:ident {
            $( $(#[$fmeta:meta])* pub $field:ident : $ty:ty, )*
        }
    )*) => {
        $(
            $(#[$meta])*
            #[derive(Debug, Clone, PartialEq)]
            pub struct $name {
                $( $(#[$fmeta])* pub $field: $ty, )*
            }

            impl $name {
                /// Encoded size in bytes of this payload.
                pub const ENCODED_LEN: usize = 0 $(+ <$ty as WireField>::LEN)*;

                /// Appends the fixed binary layout to `buf`.
                pub fn encode_into(&self, buf: &mut Vec<u8>) {
                    let mut w = Writer::new(buf);
                    $( WireField::write(&self.$field, &mut w); )*
                }

                /// Decodes from an exact-length byte slice.
                ///
                /// # Errors
                ///
                /// Returns [`CodecError`] when `bytes` is shorter or longer
                /// than [`Self::ENCODED_LEN`].
                pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
                    let mut r = Reader::new(bytes);
                    let v = Self { $( $field: <$ty as WireField>::read(&mut r)?, )* };
                    r.finish()?;
                    Ok(v)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self { $( $field: <$ty as WireField>::ZERO, )* }
                }
            }

            #[doc = concat!("A borrowed view of a [`", stringify!($name),
                "`] payload, reading fields directly from validated wire \
                 bytes without materializing the struct.")]
            #[derive(Debug, Clone, Copy)]
            pub struct $refname<'a> {
                /// Exactly [`ENCODED_LEN`](Self::ENCODED_LEN) wire bytes.
                bytes: &'a [u8],
            }

            impl<'a> $refname<'a> {
                #[doc = concat!("Encoded size in bytes, equal to [`",
                    stringify!($name), "::ENCODED_LEN`].")]
                pub const ENCODED_LEN: usize = $name::ENCODED_LEN;

                #[doc = concat!("Wraps an exact-length payload slice \
                    without copying.\n\n# Errors\n\nReturns the same \
                    [`CodecError`] as [`", stringify!($name),
                    "::decode`] when `bytes` is not exactly `ENCODED_LEN` \
                    long.")]
                #[inline]
                pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
                    if bytes.len() == $name::ENCODED_LEN {
                        Ok($refname { bytes })
                    } else {
                        // Cold path: the field-wise decoder reports the
                        // exact error the materializing path would.
                        match $name::decode(bytes) {
                            Err(e) => Err(e),
                            Ok(_) => unreachable!("length mismatch must fail decode"),
                        }
                    }
                }

                /// The raw wire bytes backing this view.
                #[inline]
                pub fn wire_bytes(&self) -> &'a [u8] {
                    self.bytes
                }

                /// Materializes the owned payload struct.
                #[inline]
                pub fn to_owned(self) -> $name {
                    match $name::decode(self.bytes) {
                        Ok(v) => v,
                        Err(_) => unreachable!("length was validated at construction"),
                    }
                }

                /// Whether every field view equals the corresponding
                /// field of `owned` — pins the generated accessors to the
                /// materializing decoder in property tests.
                pub fn fields_match(&self, owned: &$name) -> bool {
                    true $(&& <$ty as WireField>::view_matches(self.$field(), &owned.$field))*
                }
            }

            impl PartialEq<$name> for $refname<'_> {
                fn eq(&self, other: &$name) -> bool {
                    self.fields_match(other)
                }
            }

            view_accessors!($refname, 0usize, $( $field : $ty, )*);
        )*

        /// Discriminant identifying one of the 32 verification event types.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum EventKind { $( $name, )* }

        impl EventKind {
            /// Number of event kinds.
            pub const COUNT: usize = 0 $( + { stringify!($name); 1 } )*;

            /// All kinds in discriminant order.
            pub const ALL: [EventKind; Self::COUNT] = [ $( EventKind::$name, )* ];

            /// The encoded payload size of this kind, in bytes.
            pub const fn encoded_len(self) -> usize {
                match self { $( EventKind::$name => $name::ENCODED_LEN, )* }
            }

            /// The catalog category of this kind.
            pub const fn category(self) -> Category {
                match self { $( EventKind::$name => Category::$category, )* }
            }

            /// The type name of this kind.
            pub const fn name(self) -> &'static str {
                match self { $( EventKind::$name => stringify!($name), )* }
            }

            /// Reconstructs a kind from its `u8` discriminant.
            ///
            /// # Errors
            ///
            /// Returns [`CodecError::BadKind`] for out-of-range values.
            pub fn from_u8(v: u8) -> Result<EventKind, CodecError> {
                Self::ALL.get(v as usize).copied().ok_or(CodecError::BadKind(v))
            }
        }

        /// A verification event: one of the 32 catalog types with payload.
        ///
        /// Variant sizes intentionally span 3–512 bytes: events are moved
        /// in bulk buffers on the hot path, where boxing the large
        /// register-state dumps would cost an allocation per event.
        #[derive(Debug, Clone, PartialEq)]
        #[allow(clippy::large_enum_variant)]
        pub enum Event {
            $(
                #[doc = concat!("A [`", stringify!($name), "`] event.")]
                $name($name),
            )*
        }

        impl Event {
            /// The kind discriminant of this event.
            pub const fn kind(&self) -> EventKind {
                match self { $( Event::$name(_) => EventKind::$name, )* }
            }

            /// The encoded payload size in bytes.
            pub const fn encoded_len(&self) -> usize {
                self.kind().encoded_len()
            }

            /// Appends the payload's fixed binary layout to `buf`.
            pub fn encode_into(&self, buf: &mut Vec<u8>) {
                match self { $( Event::$name(p) => p.encode_into(buf), )* }
            }

            /// Decodes a payload of the given kind from an exact-length
            /// slice.
            ///
            /// # Errors
            ///
            /// Returns [`CodecError`] on a length mismatch.
            pub fn decode(kind: EventKind, bytes: &[u8]) -> Result<Event, CodecError> {
                Ok(match kind {
                    $( EventKind::$name => Event::$name($name::decode(bytes)?), )*
                })
            }
        }

        $(
            impl From<$name> for Event {
                fn from(p: $name) -> Event { Event::$name(p) }
            }
        )*

        /// A borrowed verification event: one of the 32 catalog views
        /// over validated wire bytes.
        ///
        /// This is the consumer-side zero-materialization type: checking
        /// reads fields through it directly from the packet buffer, and
        /// the owned [`Event`] is only built on the cold paths (mismatch
        /// reporting, order-decoupled queuing, replay).
        #[derive(Debug, Clone, Copy)]
        pub enum EventRef<'a> {
            $(
                #[doc = concat!("A borrowed [`", stringify!($name), "`] payload.")]
                $name($refname<'a>),
            )*
        }

        impl<'a> EventRef<'a> {
            /// Wraps an exact-length payload slice of the given kind
            /// without copying or materializing.
            ///
            /// # Errors
            ///
            /// Returns the same [`CodecError`] as [`Event::decode`] on a
            /// length mismatch.
            #[inline]
            pub fn parse(kind: EventKind, bytes: &'a [u8]) -> Result<EventRef<'a>, CodecError> {
                Ok(match kind {
                    $( EventKind::$name => EventRef::$name($refname::new(bytes)?), )*
                })
            }

            /// The kind discriminant of this event.
            pub const fn kind(&self) -> EventKind {
                match self { $( EventRef::$name(_) => EventKind::$name, )* }
            }

            /// The raw wire bytes backing this view.
            pub fn wire_bytes(&self) -> &'a [u8] {
                match self { $( EventRef::$name(v) => v.wire_bytes(), )* }
            }

            /// Materializes the owned [`Event`].
            pub fn to_event(&self) -> Event {
                match self { $( EventRef::$name(v) => Event::$name((*v).to_owned()), )* }
            }

            /// Whether this view's field reads all equal the fields of an
            /// owned event of the same kind.
            pub fn fields_match(&self, owned: &Event) -> bool {
                match (self, owned) {
                    $( (EventRef::$name(v), Event::$name(o)) => v.fields_match(o), )*
                    _ => false,
                }
            }
        }
    };
}

catalog! {
    // ------------------------------------------------------------------
    // Control flow (5 types)
    // ------------------------------------------------------------------

    /// One committed instruction: the fundamental verification event.
    (ControlFlow) struct InstrCommit view InstrCommitRef {
        /// PC of the committed instruction.
        pub pc: u64,
        /// Raw instruction word.
        pub instr: u32,
        /// Non-zero when the instruction wrote an integer register.
        pub wen: u8,
        /// Destination register index.
        pub wdest: u8,
        /// Value written to the destination register.
        pub wdata: u64,
        /// Flag bits, see [`commit_flags`].
        pub flags: u8,
        /// Reorder-buffer index at commit (microarchitectural context).
        pub rob_idx: u16,
    }

    /// Simulation-terminating trap (good/bad trap in DiffTest terms).
    (ControlFlow) struct TrapEvent view TrapEventRef {
        /// PC of the trapping instruction.
        pub pc: u64,
        /// Trap code: 0 = good trap (`ebreak` with a0 == 0), else bad.
        pub code: u8,
        /// Non-zero when the trap is valid.
        pub has_trap: u8,
        /// DUT cycle at which the trap fired.
        pub cycle: u64,
    }

    /// Exception or interrupt entry. Interrupt entries are
    /// non-deterministic events that must be synchronized to the REF.
    (ControlFlow) struct ArchEvent view ArchEventRef {
        /// PC at trap entry.
        pub pc: u64,
        /// `mcause` value (interrupt bit included).
        pub cause: u64,
        /// `mtval` value.
        pub tval: u64,
        /// Non-zero for interrupts (asynchronous, NDE).
        pub is_interrupt: u8,
    }

    /// Front-end redirect (taken branch / jump) for control-flow tracing.
    (ControlFlow) struct Redirect view RedirectRef {
        /// PC of the redirecting instruction.
        pub pc: u64,
        /// Redirect target.
        pub target: u64,
        /// Non-zero when the redirect was a taken conditional branch.
        pub taken: u8,
        /// Branch type discriminant (microarchitectural).
        pub branch_type: u8,
    }

    /// Runahead checkpoint bookkeeping: the smallest event of the catalog
    /// (3 bytes, giving the catalog its 170× size spread).
    (ControlFlow) struct RunaheadEvent view RunaheadEventRef {
        /// Non-zero when a checkpoint is live.
        pub valid: u8,
        /// Checkpoint identifier.
        pub checkpoint_id: u16,
    }

    // ------------------------------------------------------------------
    // Register updates (9 types)
    // ------------------------------------------------------------------

    /// Full integer architectural register file.
    (RegisterUpdate) struct ArchIntRegState view ArchIntRegStateRef {
        /// `x0..x31`.
        pub regs: [u64; 32],
    }

    /// Full floating-point architectural register file.
    (RegisterUpdate) struct ArchFpRegState view ArchFpRegStateRef {
        /// `f0..f31` raw bits.
        pub regs: [u64; 32],
    }

    /// The dense tracked-CSR file (indexed by `difftest_isa::csr::CsrIndex`).
    (RegisterUpdate) struct CsrState view CsrStateRef {
        /// All 24 tracked CSRs.
        pub csrs: [u64; 24],
    }

    /// A single integer register writeback (port-level event).
    (RegisterUpdate) struct IntWriteback view IntWritebackRef {
        /// Destination register index.
        pub idx: u8,
        /// Value written.
        pub data: u64,
    }

    /// A single floating-point register writeback (port-level event).
    (RegisterUpdate) struct FpWriteback view FpWritebackRef {
        /// Destination register index.
        pub idx: u8,
        /// Raw bits written.
        pub data: u64,
    }

    /// Debug-mode register state.
    (RegisterUpdate) struct DebugModeState view DebugModeStateRef {
        /// Non-zero when the hart is in debug mode.
        pub debug_mode: u8,
        /// `dcsr`.
        pub dcsr: u64,
        /// `dpc`.
        pub dpc: u64,
        /// `dscratch0`.
        pub dscratch0: u64,
        /// `dscratch1`.
        pub dscratch1: u64,
    }

    /// Hardware trigger (Sdtrig) CSR state.
    (RegisterUpdate) struct TriggerCsrState view TriggerCsrStateRef {
        /// `tselect`.
        pub tselect: u64,
        /// `tdata1` for four triggers.
        pub tdata1: [u64; 4],
        /// `tdata2` for three triggers.
        pub tdata2: [u64; 3],
        /// `tinfo`.
        pub tinfo: u16,
    }

    /// Hypervisor CSR state.
    (RegisterUpdate) struct HypervisorCsrState view HypervisorCsrStateRef {
        /// `hstatus, hedeleg, hideleg, hvip, hip, hie, htval, htinst,
        /// hgatp, vsstatus, vsatp`.
        pub csrs: [u64; 11],
        /// Non-zero when running in virtualized (VS/VU) mode.
        pub virt_mode: u8,
    }

    /// Vector CSR state.
    (RegisterUpdate) struct VecCsrState view VecCsrStateRef {
        /// `vstart`.
        pub vstart: u64,
        /// `vl`.
        pub vl: u64,
        /// `vtype`.
        pub vtype: u64,
        /// `vcsr`.
        pub vcsr: u64,
        /// `vlenb`.
        pub vlenb: u64,
        /// Non-zero when `vtype.vill` is set.
        pub vill: u8,
    }

    // ------------------------------------------------------------------
    // Memory access (3 types)
    // ------------------------------------------------------------------

    /// A load operation. MMIO loads are non-deterministic events whose
    /// observed value must be synchronized to the REF (skip mechanism).
    (MemoryAccess) struct LoadEvent view LoadEventRef {
        /// PC of the load.
        pub pc: u64,
        /// Effective address.
        pub addr: u64,
        /// Loaded value (after extension).
        pub data: u64,
        /// Access width in bytes.
        pub len: u8,
        /// Non-zero when the access hit the MMIO hole (NDE).
        pub is_mmio: u8,
        /// Functional-unit type (microarchitectural context).
        pub fu_type: u8,
        /// Operation sub-type.
        pub op_type: u8,
    }

    /// A store operation leaving the store queue.
    (MemoryAccess) struct StoreEvent view StoreEventRef {
        /// Effective address (8-byte aligned base).
        pub addr: u64,
        /// Store data (little-endian, masked).
        pub data: u64,
        /// Byte-enable mask.
        pub mask: u8,
    }

    /// An atomic memory operation (AMO or LR/SC pair completion).
    (MemoryAccess) struct AtomicEvent view AtomicEventRef {
        /// Effective address.
        pub addr: u64,
        /// Operand data.
        pub data: u64,
        /// Byte-enable mask.
        pub mask: u8,
        /// Old memory value returned to the destination register.
        pub out: u64,
        /// Functional-unit operation code.
        pub fu_op: u8,
    }

    // ------------------------------------------------------------------
    // Memory hierarchy (6 types)
    // ------------------------------------------------------------------

    /// A store-buffer (sbuffer) flush of one 64-byte cache line.
    (MemoryHierarchy) struct SbufferEvent view SbufferEventRef {
        /// Line-aligned address.
        pub addr: u64,
        /// Line data.
        pub data: [u8; 64],
        /// Byte-enable mask for the line.
        pub mask: u64,
    }

    /// A cache refill of one 64-byte line (d-cache or i-cache).
    (MemoryHierarchy) struct RefillEvent view RefillEventRef {
        /// Line-aligned address.
        pub addr: u64,
        /// Line data as eight 64-bit beats.
        pub data: [u64; 8],
        /// 0 = d-cache, 1 = i-cache, 2 = prefetch.
        pub refill_type: u8,
    }

    /// An L1 TLB fill.
    (MemoryHierarchy) struct L1TlbEvent view L1TlbEventRef {
        /// `satp` at the time of the fill.
        pub satp: u64,
        /// Virtual page number.
        pub vpn: u64,
        /// Physical page number.
        pub ppn: u64,
        /// Non-zero when the fill is valid.
        pub valid: u8,
    }

    /// An L2 TLB fill (covers multiple PTEs per fill).
    (MemoryHierarchy) struct L2TlbEvent view L2TlbEventRef {
        /// Non-zero when the fill is valid.
        pub valid: u8,
        /// Base virtual page number.
        pub vpn: u64,
        /// Index of the valid PTE within the fill group.
        pub pte_idx: u8,
        /// Up to six physical page numbers.
        pub ppns: [u64; 6],
        /// Permission bits.
        pub perm: u8,
    }

    /// LR/SC reservation tracking.
    (MemoryHierarchy) struct LrScEvent view LrScEventRef {
        /// Non-zero when the event is valid.
        pub valid: u8,
        /// Non-zero when the SC succeeded.
        pub success: u8,
        /// Reservation address.
        pub addr: u64,
        /// SC store data.
        pub data: u64,
    }

    /// A page-table-walk completion.
    (MemoryHierarchy) struct PtwEvent view PtwEventRef {
        /// Virtual page number walked.
        pub vpn: u64,
        /// PTEs fetched at each of four levels.
        pub levels: [u64; 4],
        /// Non-zero when the walk page-faulted.
        pub pf: u8,
        /// Requestor (0 = load, 1 = store, 2 = fetch).
        pub source: u8,
    }

    // ------------------------------------------------------------------
    // RISC-V extensions (9 types)
    // ------------------------------------------------------------------

    /// Full vector architectural register file (32 × VLEN=128 as 2 × u64
    /// halves): the largest event of the catalog (512 bytes).
    (Extension) struct ArchVecRegState view ArchVecRegStateRef {
        /// `v0..v31`, two 64-bit halves each.
        pub regs: [u64; 64],
    }

    /// A single vector register writeback.
    (Extension) struct VecWriteback view VecWritebackRef {
        /// Destination vector register index.
        pub idx: u8,
        /// The 128-bit value as two 64-bit halves.
        pub data: [u64; 2],
    }

    /// A hypervisor CSR update.
    (Extension) struct HCsrUpdate view HCsrUpdateRef {
        /// CSR address.
        pub addr: u16,
        /// New value.
        pub data: u64,
        /// Non-zero when performed from virtualized mode.
        pub virt: u8,
    }

    /// A virtual interrupt injection.
    (Extension) struct VirtualInterrupt view VirtualInterruptRef {
        /// Interrupt cause.
        pub cause: u64,
        /// PC at injection.
        pub pc: u64,
        /// Non-zero when valid.
        pub valid: u8,
    }

    /// A guest page fault (two-stage translation).
    (Extension) struct GuestPageFault view GuestPageFaultRef {
        /// Guest physical address.
        pub gpaddr: u64,
        /// Guest virtual address.
        pub gva: u64,
        /// PC of the faulting access.
        pub pc: u64,
        /// Fault type discriminant.
        pub fault_type: u8,
    }

    /// A vector unit-stride load.
    (Extension) struct VecLoad view VecLoadRef {
        /// PC of the load.
        pub pc: u64,
        /// Effective address.
        pub addr: u64,
        /// The 128-bit loaded value.
        pub data: [u64; 2],
        /// Effective vector length.
        pub vl: u8,
        /// Element mask.
        pub mask: u8,
    }

    /// A vector unit-stride store.
    (Extension) struct VecStore view VecStoreRef {
        /// PC of the store.
        pub pc: u64,
        /// Effective address.
        pub addr: u64,
        /// The 128-bit stored value.
        pub data: [u64; 2],
        /// Element mask.
        pub mask: u8,
    }

    /// A floating-point CSR (fflags/frm) update.
    (Extension) struct FpCsrUpdate view FpCsrUpdateRef {
        /// Accumulated exception flags.
        pub fflags: u8,
        /// Rounding mode.
        pub frm: u8,
        /// Full `fcsr` value.
        pub data: u64,
    }

    /// A `vsetvl`-style vector configuration change.
    (Extension) struct VecConfig view VecConfigRef {
        /// New `vl`.
        pub vl: u64,
        /// New `vtype`.
        pub vtype: u64,
        /// 0 = vsetvli, 1 = vsetivli, 2 = vsetvl.
        pub set_by: u8,
    }
}

/// Flag bits of [`InstrCommit::flags`].
pub mod commit_flags {
    /// The instruction was skipped (MMIO access; NDE).
    pub const SKIP: u8 = 1 << 0;
    /// The instruction was a load.
    pub const LOAD: u8 = 1 << 1;
    /// The instruction was a store.
    pub const STORE: u8 = 1 << 2;
    /// The instruction was a taken branch.
    pub const BRANCH_TAKEN: u8 = 1 << 3;
    /// The destination register is floating-point.
    pub const FP_WEN: u8 = 1 << 4;
}

impl Event {
    /// Returns `true` for non-deterministic events: DUT-specific behaviour
    /// (interrupt entries, MMIO accesses) that must be synchronized to the
    /// REF at a precise instruction boundary (paper §2.1, §4.3).
    pub fn is_nde(&self) -> bool {
        match self {
            Event::ArchEvent(e) => e.is_interrupt != 0,
            Event::LoadEvent(e) => e.is_mmio != 0,
            Event::InstrCommit(c) => c.flags & commit_flags::SKIP != 0,
            Event::VirtualInterrupt(v) => v.valid != 0,
            _ => false,
        }
    }
}

impl EventRef<'_> {
    /// Mirror of [`Event::is_nde`] over the borrowed view: reads only the
    /// discriminating field from the wire bytes.
    pub fn is_nde(&self) -> bool {
        match self {
            EventRef::ArchEvent(e) => e.is_interrupt() != 0,
            EventRef::LoadEvent(e) => e.is_mmio() != 0,
            EventRef::InstrCommit(c) => c.flags() & commit_flags::SKIP != 0,
            EventRef::VirtualInterrupt(v) => v.valid() != 0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_two_kinds() {
        assert_eq!(EventKind::COUNT, 32);
        assert_eq!(EventKind::ALL.len(), 32);
    }

    #[test]
    fn size_spread_is_170x() {
        let min = EventKind::ALL
            .iter()
            .map(|k| k.encoded_len())
            .min()
            .unwrap();
        let max = EventKind::ALL
            .iter()
            .map(|k| k.encoded_len())
            .max()
            .unwrap();
        assert_eq!(min, RunaheadEvent::ENCODED_LEN);
        assert_eq!(min, 3);
        assert_eq!(max, ArchVecRegState::ENCODED_LEN);
        assert_eq!(max, 512);
        assert!(max / min >= 170, "spread {}x", max / min);
    }

    #[test]
    fn category_counts_match_table1() {
        let count = |c: Category| EventKind::ALL.iter().filter(|k| k.category() == c).count();
        assert_eq!(count(Category::ControlFlow), 5);
        assert_eq!(count(Category::RegisterUpdate), 9);
        assert_eq!(count(Category::MemoryAccess), 3);
        assert_eq!(count(Category::MemoryHierarchy), 6);
        assert_eq!(count(Category::Extension), 9);
    }

    #[test]
    fn kind_u8_round_trip() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(EventKind::from_u8(i as u8).unwrap(), *k);
        }
        assert!(EventKind::from_u8(32).is_err());
    }

    #[test]
    fn encode_decode_round_trip_every_kind() {
        // Default payloads encode to the advertised length and decode back.
        for kind in EventKind::ALL {
            let ev = Event::decode(kind, &vec![0u8; kind.encoded_len()]).unwrap();
            let mut buf = Vec::new();
            ev.encode_into(&mut buf);
            assert_eq!(buf.len(), kind.encoded_len(), "{}", kind.name());
            let back = Event::decode(kind, &buf).unwrap();
            assert_eq!(back, ev, "{}", kind.name());
        }
    }

    #[test]
    fn commit_round_trip_with_values() {
        let c = InstrCommit {
            pc: 0x8000_0042,
            instr: 0x13,
            wen: 1,
            wdest: 10,
            wdata: 0xdead_beef,
            flags: commit_flags::LOAD | commit_flags::SKIP,
            rob_idx: 99,
        };
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        assert_eq!(buf.len(), InstrCommit::ENCODED_LEN);
        assert_eq!(InstrCommit::decode(&buf).unwrap(), c);
    }

    #[test]
    fn decode_wrong_length_fails() {
        assert!(InstrCommit::decode(&[0u8; 3]).is_err());
        let too_long = vec![0u8; InstrCommit::ENCODED_LEN + 1];
        assert!(matches!(
            InstrCommit::decode(&too_long),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn nde_classification() {
        assert!(Event::ArchEvent(ArchEvent {
            is_interrupt: 1,
            ..Default::default()
        })
        .is_nde());
        assert!(!Event::ArchEvent(ArchEvent::default()).is_nde());
        assert!(Event::LoadEvent(LoadEvent {
            is_mmio: 1,
            ..Default::default()
        })
        .is_nde());
        assert!(!Event::StoreEvent(StoreEvent::default()).is_nde());
    }

    #[test]
    fn from_payload_into_event() {
        let e: Event = StoreEvent {
            addr: 8,
            data: 9,
            mask: 0xff,
        }
        .into();
        assert_eq!(e.kind(), EventKind::StoreEvent);
    }
}
